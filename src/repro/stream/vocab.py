"""Vocabulary models for the synthetic micro-blog stream.

The generator needs three lexical resources, all deterministic under a
seeded :class:`random.Random`:

* a **background vocabulary** of common English words sampled with a
  Zipfian distribution (word frequencies in tweets are famously heavy
  tailed),
* **topic word banks** grouped by theme, from which each synthetic event
  draws its characteristic words and hashtags,
* a **short-URL factory** producing ``bit.ly/ab12x``-style links, the
  canonical URL indicant of the paper's Fig. 3.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "COMMON_WORDS",
    "TOPIC_BANKS",
    "EMOTIONAL_FRAGMENTS",
    "ZipfSampler",
    "Vocabulary",
    "ShortUrlFactory",
]

# ---------------------------------------------------------------------------
# Word banks
# ---------------------------------------------------------------------------

COMMON_WORDS: tuple[str, ...] = tuple("""
time people day work life home night week today tomorrow morning thing
world friend house city year hour game show news story phone photo video
music movie song book coffee lunch dinner food drink weather rain sun
train traffic office school class party weekend beach park street road
team player fan crowd ticket seat line wait watch look feel think know
want need love hate like start stop play run walk talk read write post
share check call text meet plan hope wish miss find lose win keep make
take give get come leave stay turn open close break fix buy sell pay
cheap free great good nice cool fun crazy weird funny sad happy angry
tired busy late early real fake true big small long short new old hot
cold fast slow hard easy high low right wrong best worst first last
next back down over under around between during before after still
""".split())

# Thematic banks: each entry is (theme, topic words, hashtag stems).
TOPIC_BANKS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "baseball": (
        ("yankees", "redsox", "stadium", "inning", "pitcher", "lester",
         "homerun", "playoffs", "dugout", "umpire", "bullpen", "clinch",
         "series", "batting", "mound", "ovation"),
        ("redsox", "yankees", "mlb", "baseball"),
    ),
    "tech_conference": (
        ("ibm", "cics", "partner", "conference", "keynote", "mainframe",
         "session", "booth", "demo", "enterprise", "transaction", "release",
         "announcement", "roadmap", "attendee", "workshop"),
        ("cics", "ibm", "tech", "impact09"),
    ),
    "tsunami": (
        ("tsunami", "samoa", "sumatra", "earthquake", "quake", "warning",
         "coast", "waves", "evacuation", "relief", "donate", "victims",
         "rescue", "aftershock", "magnitude", "pacific"),
        ("tsunami", "samoa", "prayforsamoa", "quake"),
    ),
    "election": (
        ("election", "vote", "ballot", "candidate", "debate", "poll",
         "senate", "campaign", "speech", "turnout", "results", "district",
         "governor", "mayor", "recount", "swing"),
        ("election", "vote", "politics", "debate"),
    ),
    "music_awards": (
        ("awards", "stage", "performance", "album", "single", "artist",
         "grammy", "nominee", "redcarpet", "encore", "tour", "concert",
         "setlist", "vocals", "guitar", "drummer"),
        ("vmas", "music", "awards", "concert"),
    ),
    "flu_outbreak": (
        ("flu", "h1n1", "vaccine", "outbreak", "symptoms", "pandemic",
         "clinic", "health", "fever", "hospital", "quarantine", "cases",
         "swine", "doctors", "mask", "immunity"),
        ("h1n1", "swineflu", "health", "flu"),
    ),
    "phone_launch": (
        ("iphone", "launch", "android", "device", "screen", "battery",
         "camera", "update", "firmware", "carrier", "unboxing", "preorder",
         "specs", "storage", "gadget", "review"),
        ("iphone", "android", "gadgets", "mobile"),
    ),
    "football": (
        ("touchdown", "quarterback", "patriots", "steelers", "fumble",
         "interception", "kickoff", "defense", "offense", "field", "coach",
         "roster", "draft", "tailgate", "overtime", "referee"),
        ("nfl", "football", "patriots", "steelers"),
    ),
    "finance": (
        ("market", "stocks", "rally", "earnings", "shares", "dow",
         "nasdaq", "bailout", "recession", "bonds", "trading", "investors",
         "quarterly", "forecast", "dividend", "futures"),
        ("stocks", "market", "finance", "economy"),
    ),
    "wildfire": (
        ("wildfire", "blaze", "firefighters", "evacuate", "acres",
         "containment", "smoke", "flames", "drought", "canyon", "winds",
         "shelter", "embers", "helicopter", "perimeter", "alert"),
        ("wildfire", "fire", "california", "breaking"),
    ),
}

# Short noisy messages the paper calls "emotional phrases and short noise".
EMOTIONAL_FRAGMENTS: tuple[str, ...] = (
    "ugh", "argh!", "sigh!", "unbelievable!!", "wow", "omg", "glee !",
    "so tired", "can't believe it", "this again...", "love it", "hate this",
    "best day ever", "worst day ever", "meh", "yesss", "nooo", "finally",
    "whatever", "seriously?", "no way", "haha", "lol ok", "why though",
    "so good", "so bad", "what a night", "what a game", "here we go",
)


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


class ZipfSampler:
    """Draws items from a fixed sequence with Zipf(s) rank frequencies.

    Item at rank ``r`` (0-based) has weight ``1 / (r + 1)^s``.  Sampling is
    O(log n) via a precomputed cumulative table.
    """

    def __init__(self, items: Sequence[str], *, s: float = 1.1) -> None:
        if not items:
            raise ValueError("ZipfSampler needs at least one item")
        if s < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {s}")
        self.items = tuple(items)
        weights = [1.0 / (rank + 1) ** s for rank in range(len(self.items))]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> str:
        """Draw one item."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        return self.items[min(index, len(self.items) - 1)]

    def sample_many(self, rng: random.Random, count: int) -> list[str]:
        """Draw ``count`` items independently."""
        return [self.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class Vocabulary:
    """The generator's lexical resources bundled together."""

    background: ZipfSampler
    themes: tuple[str, ...]

    @classmethod
    def default(cls) -> "Vocabulary":
        """The built-in English background + all topic banks."""
        return cls(
            background=ZipfSampler(COMMON_WORDS, s=1.05),
            themes=tuple(TOPIC_BANKS),
        )

    def topic_bank(self, theme: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """``(topic words, hashtag stems)`` for one theme."""
        return TOPIC_BANKS[theme]

    def background_words(self, rng: random.Random, count: int) -> list[str]:
        """Zipf-sampled filler words."""
        return self.background.sample_many(rng, count)


class ShortUrlFactory:
    """Deterministic ``bit.ly/ab12x`` style short-link generator."""

    _HOSTS = ("bit.ly", "ow.ly", "is.gd", "tinyurl.com", "twitpic.com")
    _ALPHABET = "abcdefghijkmnpqrstuvwxyz23456789"

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._issued: set[str] = set()

    def new_url(self) -> str:
        """Mint a fresh short URL unique within this factory."""
        while True:
            host = self._rng.choice(self._HOSTS)
            slug = "".join(self._rng.choice(self._ALPHABET) for _ in range(5))
            url = f"{host}/{slug}"
            if url not in self._issued:
                self._issued.add(url)
                return url

    def new_pool(self, size: int) -> list[str]:
        """Mint ``size`` distinct URLs (an event's link pool)."""
        return [self.new_url() for _ in range(size)]
