"""Stream replay with simulated clock and checkpoints (Section VI-A).

The paper's experiments "import the micro-blog messages into the system in
a temporally ordered sequence; the latest message's date is simulated as
the system's current date" and sample series "at each date check point".
:func:`replay` drives one or more indexers through a stream and invokes a
callback every ``checkpoint_every`` messages — the sampling spine of
Figs. 7, 8, 11, 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.engine import ProvenanceIndexer
from repro.core.message import Message

__all__ = ["Checkpoint", "replay", "replay_many"]


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """State sample taken after ``messages_seen`` messages."""

    messages_seen: int
    current_date: float
    bundle_count: int
    message_count_in_memory: int
    memory_bytes: int
    edge_count: int
    total_time: float
    match_time: float
    placement_time: float
    index_update_time: float
    refinement_time: float


def _snapshot(indexer: ProvenanceIndexer, seen: int) -> Checkpoint:
    memory = indexer.snapshot()
    timers = indexer.timers
    return Checkpoint(
        messages_seen=seen,
        current_date=indexer.current_date,
        bundle_count=memory.bundle_count,
        message_count_in_memory=memory.message_count,
        memory_bytes=memory.total_bytes,
        edge_count=len(indexer.edge_pairs()),
        total_time=timers.total,
        match_time=timers.bundle_match,
        placement_time=timers.message_placement,
        index_update_time=timers.index_update,
        refinement_time=timers.memory_refinement,
    )


def replay(
    messages: Iterable[Message],
    indexer: ProvenanceIndexer,
    *,
    checkpoint_every: int = 10_000,
    on_checkpoint: Callable[[Checkpoint], None] | None = None,
) -> list[Checkpoint]:
    """Feed ``messages`` (date-ordered) into one indexer.

    Returns the list of checkpoints, always including a final one at the
    end of the stream.
    """
    checkpoints: list[Checkpoint] = []
    seen = 0
    for message in messages:
        indexer.ingest(message)
        seen += 1
        if checkpoint_every > 0 and seen % checkpoint_every == 0:
            point = _snapshot(indexer, seen)
            checkpoints.append(point)
            if on_checkpoint is not None:
                on_checkpoint(point)
    if not checkpoints or checkpoints[-1].messages_seen != seen:
        point = _snapshot(indexer, seen)
        checkpoints.append(point)
        if on_checkpoint is not None:
            on_checkpoint(point)
    return checkpoints


def replay_many(
    messages: Sequence[Message] | Iterable[Message],
    indexers: Mapping[str, ProvenanceIndexer],
    *,
    checkpoint_every: int = 10_000,
) -> dict[str, list[Checkpoint]]:
    """Feed the same stream into several indexers in lockstep.

    Lockstep matters for the comparative figures: every indexer sees the
    identical message sequence and is checkpointed at identical positions,
    so the series are directly comparable (and the stream is only
    materialised once even when it is a generator).
    """
    results: dict[str, list[Checkpoint]] = {name: [] for name in indexers}
    seen = 0
    for message in messages:
        seen += 1
        for name, indexer in indexers.items():
            indexer.ingest(message)
        if checkpoint_every > 0 and seen % checkpoint_every == 0:
            for name, indexer in indexers.items():
                results[name].append(_snapshot(indexer, seen))
    for name, indexer in indexers.items():
        series = results[name]
        if not series or series[-1].messages_seen != seen:
            series.append(_snapshot(indexer, seen))
    return results
