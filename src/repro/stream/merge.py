"""Merging multiple message sources into one ordered stream.

Real deployments ingest from several crawlers/regions at once.  This
module provides the k-way merge that feeds them to the indexer as the
single date-ordered sequence Definition 1 requires:

* :func:`merge_streams` — heap-based k-way merge by ``(date, msg_id)``,
* :func:`deduplicate_stream` — drop repeated message ids (sources often
  overlap),
* :func:`renumber_stream` — reassign dense arrival-ordered ids when
  sources used clashing id spaces.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Iterable, Iterator

from repro.core.errors import StreamError
from repro.core.message import Message

__all__ = ["merge_streams", "deduplicate_stream", "renumber_stream"]


def merge_streams(*sources: Iterable[Message]) -> Iterator[Message]:
    """K-way merge of date-ordered sources into one ordered stream.

    Each source must already be ordered by ``Message.sort_key()``; the
    merge is verified and a :class:`StreamError` names the offending
    source if not.  Lazily consumes the sources (works on unbounded
    iterators).
    """
    def checked(index: int, source: Iterable[Message]) -> Iterator[
            tuple[tuple[float, int], Message]]:
        previous: tuple[float, int] | None = None
        for message in source:
            key = message.sort_key()
            if previous is not None and key < previous:
                raise StreamError(
                    f"source {index} is not date-ordered at message "
                    f"{message.msg_id}")
            previous = key
            yield key, message

    merged = heapq.merge(*(checked(i, s) for i, s in enumerate(sources)),
                         key=lambda pair: pair[0])
    for _, message in merged:
        yield message


def deduplicate_stream(messages: Iterable[Message]) -> Iterator[Message]:
    """Drop messages whose id was already seen (first occurrence wins)."""
    seen: set[int] = set()
    for message in messages:
        if message.msg_id in seen:
            continue
        seen.add(message.msg_id)
        yield message


def renumber_stream(messages: Iterable[Message]) -> Iterator[Message]:
    """Reassign dense ids 0..n-1 in arrival order, fixing parent links.

    Needed when merged sources used overlapping id spaces: the indexer
    requires unique ids, and evaluation requires ``parent_id`` to refer
    to the *new* id of the same message.  Parents that never appeared
    upstream (dangling references) are dropped to ``None``.
    """
    mapping: dict[int, int] = {}
    for new_id, message in enumerate(messages):
        mapping[message.msg_id] = new_id
        parent = (mapping.get(message.parent_id)
                  if message.parent_id is not None else None)
        yield replace(message, msg_id=new_id, parent_id=parent)
