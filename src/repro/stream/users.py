"""Synthetic user population with heavy-tailed activity.

Twitter activity is famously skewed: a small core of prolific accounts
produces a large share of messages, and those same accounts attract most
re-shares.  :class:`UserPool` models both with a single Zipf rank order —
rank doubles as posting weight and as re-share attractiveness, which is the
empirical pattern Wu et al. ("Who says what to whom on Twitter", WWW'11,
the paper's [16]) report.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.stream.vocab import ZipfSampler

__all__ = ["UserPool", "generate_handles"]

_SYLLABLES = (
    "al", "an", "ar", "ba", "be", "bo", "ca", "co", "da", "de", "di",
    "el", "en", "fa", "fi", "ga", "go", "ha", "jo", "ka", "ki", "la",
    "le", "lo", "ma", "me", "mi", "mo", "na", "ne", "ni", "no", "pa",
    "ra", "re", "ri", "ro", "sa", "se", "si", "so", "ta", "te", "ti",
    "to", "va", "vi", "wa", "we", "za", "zo",
)
_SUFFIXES = ("", "", "", "_", "x", "99", "23", "7", "09", "_nyc", "_uk")


def generate_handles(count: int, rng: random.Random) -> list[str]:
    """Create ``count`` distinct plausible screen names."""
    handles: list[str] = []
    seen: set[str] = set()
    while len(handles) < count:
        parts = rng.randint(2, 4)
        base = "".join(rng.choice(_SYLLABLES) for _ in range(parts))
        handle = base + rng.choice(_SUFFIXES)
        if handle not in seen:
            seen.add(handle)
            handles.append(handle)
    return handles


class UserPool:
    """A fixed population with Zipfian posting/attention weights."""

    def __init__(self, handles: Sequence[str], *, s: float = 0.8) -> None:
        if not handles:
            raise ValueError("UserPool needs at least one handle")
        self.handles = tuple(handles)
        self._sampler = ZipfSampler(self.handles, s=s)

    @classmethod
    def generate(cls, count: int, rng: random.Random, *,
                 s: float = 0.8) -> "UserPool":
        """Build a pool of ``count`` synthetic handles."""
        return cls(generate_handles(count, rng), s=s)

    def __len__(self) -> int:
        return len(self.handles)

    def sample_author(self, rng: random.Random) -> str:
        """Draw a message author (prolific users drawn more often)."""
        return self._sampler.sample(rng)

    def sample_distinct(self, rng: random.Random, count: int) -> list[str]:
        """Draw up to ``count`` distinct users (e.g. an event's core
        participants)."""
        count = min(count, len(self.handles))
        picked: list[str] = []
        seen: set[str] = set()
        # Rejection sampling keeps the Zipf skew among the distinct picks;
        # bail out to uniform fill if the pool is nearly exhausted.
        attempts = 0
        while len(picked) < count and attempts < 50 * count:
            handle = self._sampler.sample(rng)
            attempts += 1
            if handle not in seen:
                seen.add(handle)
                picked.append(handle)
        for handle in self.handles:
            if len(picked) >= count:
                break
            if handle not in seen:
                seen.add(handle)
                picked.append(handle)
        return picked
