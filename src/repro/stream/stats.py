"""Descriptive statistics of a message stream.

Used by the examples and the Fig. 6-style analyses to check that the
synthetic stream shows the distributions the paper's dataset had: daily
volumes, retweet share, indicant coverage, and heavy-tailed hashtag use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.core.message import Message

__all__ = ["StreamStats", "describe_stream", "histogram"]

_DAY = 86400.0


@dataclass(frozen=True, slots=True)
class StreamStats:
    """Aggregate properties of one stream."""

    message_count: int
    user_count: int
    first_date: float
    last_date: float
    retweet_fraction: float
    hashtag_fraction: float
    url_fraction: float
    labelled_fraction: float
    distinct_hashtags: int
    distinct_urls: int
    top_hashtags: tuple[tuple[str, int], ...]

    @property
    def span_days(self) -> float:
        """Stream duration in days."""
        if self.message_count == 0:
            return 0.0
        return (self.last_date - self.first_date) / _DAY

    @property
    def messages_per_day(self) -> float:
        """Mean daily volume."""
        days = self.span_days
        if days <= 0:
            return float(self.message_count)
        return self.message_count / days


def describe_stream(messages: Iterable[Message], *,
                    top_n: int = 10) -> StreamStats:
    """Single-pass summary of a message stream."""
    count = 0
    users: set[str] = set()
    first = float("inf")
    last = float("-inf")
    retweets = 0
    with_tags = 0
    with_urls = 0
    labelled = 0
    tag_counts: Counter[str] = Counter()
    urls: set[str] = set()
    for message in messages:
        count += 1
        users.add(message.user)
        first = min(first, message.date)
        last = max(last, message.date)
        if message.is_retweet:
            retweets += 1
        if message.hashtags:
            with_tags += 1
            tag_counts.update(message.hashtags)
        if message.urls:
            with_urls += 1
            urls.update(message.urls)
        if message.event_id is not None:
            labelled += 1
    if count == 0:
        return StreamStats(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0, ())
    return StreamStats(
        message_count=count,
        user_count=len(users),
        first_date=first,
        last_date=last,
        retweet_fraction=retweets / count,
        hashtag_fraction=with_tags / count,
        url_fraction=with_urls / count,
        labelled_fraction=labelled / count,
        distinct_hashtags=len(tag_counts),
        distinct_urls=len(urls),
        top_hashtags=tuple(tag_counts.most_common(top_n)),
    )


def histogram(values: Iterable[float],
              edges: "list[float]") -> list[int]:
    """Counts per bin for ``edges`` ``[e0, e1, ..., en]`` (n bins).

    Values below ``e0`` fall into the first bin, values at or above
    ``en`` into the last — convenient for the long-tailed distributions
    of Fig. 6 where the final bin is "everything larger".
    """
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    counts = [0] * (len(edges) - 1)
    for value in values:
        placed = len(counts) - 1
        for index in range(len(counts)):
            if value < edges[index + 1]:
                placed = index
                break
        counts[placed] += 1
    return counts
