"""JSONL crawler-format adapter.

The paper's dataset was collected "through Twitter's API"; crawler output
is one JSON object per line.  This module reads and writes that shape so
real crawls (or crawl-shaped exports) can feed the indexer directly:

Accepted record fields (per line):

``id`` / ``id_str``           message id (int or numeric string)
``user`` / ``screen_name``    author (``user`` may be an object with a
                              ``screen_name`` key, as the API returns)
``created_at`` / ``timestamp`` POSIX seconds, or an integer string
``text``                      the message body (entities re-extracted)
``event_id`` / ``parent_id``  optional ground-truth labels

Unknown fields are ignored; malformed lines raise
:class:`~repro.core.errors.StreamError` with the line number.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.core.errors import StreamError
from repro.core.message import Message, parse_message

__all__ = ["save_jsonl", "iter_jsonl", "load_jsonl", "record_to_message"]


def record_to_message(record: "dict[str, Any]", *,
                      line_no: int | None = None) -> Message:
    """Build a message from one crawler JSON record."""
    where = f" at line {line_no}" if line_no is not None else ""
    try:
        raw_id = record.get("id", record.get("id_str"))
        if raw_id is None:
            raise KeyError("id")
        msg_id = int(raw_id)

        user: Any = record.get("user", record.get("screen_name"))
        if isinstance(user, dict):
            user = user.get("screen_name")
        if not user:
            raise KeyError("user")

        raw_date = record.get("created_at", record.get("timestamp"))
        if raw_date is None:
            raise KeyError("created_at")
        date = float(raw_date)

        text = record.get("text")
        if text is None:
            raise KeyError("text")

        return parse_message(
            msg_id, str(user), date, str(text),
            event_id=record.get("event_id"),
            parent_id=record.get("parent_id"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StreamError(f"malformed JSONL record{where}: {exc}") from exc


def save_jsonl(messages: Iterable[Message],
               path: "str | os.PathLike[str]") -> int:
    """Write messages as crawler-shaped JSONL; returns the count.

    Atomic (temp file + rename), like the TSV writer.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    count = 0
    with tmp.open("w", encoding="utf-8") as handle:
        for message in messages:
            record: dict[str, Any] = {
                "id": message.msg_id,
                "user": {"screen_name": message.user},
                "created_at": message.date,
                "text": message.text,
            }
            if message.event_id is not None:
                record["event_id"] = message.event_id
            if message.parent_id is not None:
                record["parent_id"] = message.parent_id
            handle.write(json.dumps(record, separators=(",", ":"),
                                    sort_keys=True) + "\n")
            count += 1
    tmp.replace(target)
    return count


def iter_jsonl(path: "str | os.PathLike[str]") -> Iterator[Message]:
    """Stream messages from a JSONL file in file order."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(
                    f"{source}:{line_no}: invalid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise StreamError(
                    f"{source}:{line_no}: record must be an object")
            yield record_to_message(record, line_no=line_no)


def load_jsonl(path: "str | os.PathLike[str]") -> list[Message]:
    """Load a whole JSONL dataset into memory."""
    return list(iter_jsonl(path))
