"""Sliding-window rate statistics and burst alarms over the live stream.

Operational companion to the indexer: tracks message rate in simulated
stream time (the replay clock, not wall clock), per-hashtag momentum, and
raises burst alarms when a tag's short-window rate exceeds a multiple of
its long-window baseline — the "breaking events … are popular and users
monitor them by repeated searches" phenomenon the paper opens with.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.core.message import Message

__all__ = ["BurstAlarm", "SlidingWindowMonitor"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class BurstAlarm:
    """A hashtag whose short-window rate exceeds its baseline."""

    hashtag: str
    date: float
    short_count: int
    long_count: int
    ratio: float


class SlidingWindowMonitor:
    """Two-window (short/long) rate tracking with hashtag burst alarms.

    Parameters
    ----------
    short_window / long_window:
        Window lengths in seconds of simulated stream time; the short
        window must be strictly smaller.
    burst_ratio:
        Alarm when ``short_rate > burst_ratio × long_rate`` (rates
        normalised per window length) and the short count is at least
        ``min_count``.
    """

    def __init__(self, *, short_window: float = 0.5 * _HOUR,
                 long_window: float = 6 * _HOUR,
                 burst_ratio: float = 3.0, min_count: int = 5) -> None:
        if short_window <= 0 or long_window <= short_window:
            raise ValueError(
                "need 0 < short_window < long_window, got "
                f"{short_window} / {long_window}")
        if burst_ratio <= 1.0:
            raise ValueError(f"burst_ratio must be > 1, got {burst_ratio}")
        if min_count <= 0:
            raise ValueError(f"min_count must be positive, got {min_count}")
        self.short_window = short_window
        self.long_window = long_window
        self.burst_ratio = burst_ratio
        self.min_count = min_count
        self._events: deque[tuple[float, frozenset[str]]] = deque()
        self._short_events: deque[tuple[float, frozenset[str]]] = deque()
        self._short_tags: Counter[str] = Counter()
        self._long_tags: Counter[str] = Counter()
        self._alarmed: set[str] = set()
        self.current_date = float("-inf")

    def __len__(self) -> int:
        """Messages inside the long window."""
        return len(self._events)

    def observe(self, message: Message) -> list[BurstAlarm]:
        """Feed one message (date-ordered); return any new burst alarms.

        A hashtag alarms once per burst: it must fall back below the
        ratio before it can alarm again.
        """
        self.current_date = max(self.current_date, message.date)
        event = (message.date, message.hashtags)
        self._events.append(event)
        self._short_events.append(event)
        self._long_tags.update(message.hashtags)
        self._short_tags.update(message.hashtags)
        self._expire()

        alarms = []
        scale = self.long_window / self.short_window
        for tag in message.hashtags:
            short = self._short_tags[tag]
            long_total = self._long_tags[tag]
            if short < self.min_count:
                continue
            baseline = max(long_total - short, 1)
            ratio = short * (scale - 1.0) / baseline
            if ratio > self.burst_ratio:
                if tag not in self._alarmed:
                    self._alarmed.add(tag)
                    alarms.append(BurstAlarm(
                        hashtag=tag, date=message.date,
                        short_count=short, long_count=long_total,
                        ratio=ratio))
            else:
                self._alarmed.discard(tag)
        return alarms

    def message_rate(self, *, per: float = _HOUR) -> float:
        """Messages per ``per`` seconds over the short window."""
        return len(self._short_events) * per / self.short_window

    def top_hashtags(self, k: int = 10) -> list[tuple[str, int]]:
        """Most frequent hashtags in the long window."""
        return self._long_tags.most_common(k)

    def _expire(self) -> None:
        long_cutoff = self.current_date - self.long_window
        short_cutoff = self.current_date - self.short_window
        while self._events and self._events[0][0] < long_cutoff:
            _, tags = self._events.popleft()
            for tag in tags:
                self._long_tags[tag] -= 1
                if self._long_tags[tag] <= 0:
                    del self._long_tags[tag]
        while self._short_events and self._short_events[0][0] < short_cutoff:
            _, tags = self._short_events.popleft()
            for tag in tags:
                self._short_tags[tag] -= 1
                if self._short_tags[tag] <= 0:
                    del self._short_tags[tag]
