"""Synthetic event model: bursts, cascades and message text synthesis.

Each event is a real-world happening (game, disaster, product launch…)
that produces a burst of topically-coherent messages over a bounded
lifetime.  The temporal profile is a gamma-shaped rise-and-decay; within an
event, messages re-share earlier ones with preferential attachment, which
yields the heavy-tailed cascade trees observed on Twitter (the paper's
refs [15], [16]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.stream.vocab import Vocabulary

__all__ = ["EventSpec", "ActiveEvent", "PublishedMessage", "MAX_TEXT_LENGTH"]

MAX_TEXT_LENGTH = 140  # the platform limit the paper cites

# Cascade parents are drawn from the most recent window; older messages
# stop attracting re-shares, matching the "bundles no longer get updating
# after some time" observation of Fig. 6b.
_PARENT_WINDOW = 64


@dataclass(frozen=True, slots=True)
class EventSpec:
    """Static description of one synthetic event.

    Attributes
    ----------
    event_id:
        Ground-truth label stamped on every message of the event.
    theme / name:
        Topic-bank key and a display name (Fig. 10's case-study captions).
    start / duration:
        Lifetime window in POSIX seconds.
    volume:
        Total number of messages the event emits.
    rt_prob:
        Probability that an event message re-shares a previous one.
    hashtag_prob / url_prob:
        Per-message probability of carrying each indicant type.
    topic_words / hashtags / urls / core_users:
        The event's lexical fingerprint and its core participants.
    """

    event_id: int
    theme: str
    name: str
    start: float
    duration: float
    volume: int
    rt_prob: float
    hashtag_prob: float
    url_prob: float
    topic_words: tuple[str, ...]
    hashtags: tuple[str, ...]
    urls: tuple[str, ...]
    core_users: tuple[str, ...]

    def sample_times(self, rng: random.Random) -> list[float]:
        """Draw the event's message timestamps (gamma rise-and-decay).

        ``Gamma(shape=2)`` rises quickly and decays with a heavy-ish tail;
        samples beyond the event duration are clamped into the window so
        ``volume`` is exact.
        """
        scale = self.duration / 6.0
        times = []
        for _ in range(self.volume):
            offset = rng.gammavariate(2.0, scale)
            times.append(self.start + min(offset, self.duration))
        return times


@dataclass(slots=True)
class PublishedMessage:
    """A materialised event message kept for cascade parent selection."""

    msg_id: int
    user: str
    date: float
    core_text: str
    children: int = 0


@dataclass
class ActiveEvent:
    """Runtime state of an event during stream materialisation."""

    spec: EventSpec
    vocabulary: Vocabulary
    published: list[PublishedMessage] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Text synthesis
    # ------------------------------------------------------------------

    def compose_original(self, rng: random.Random) -> str:
        """Fresh (non-RT) event message text with indicants attached."""
        topic_count = rng.randint(2, 4)
        filler_count = rng.randint(2, 5)
        words = (rng.sample(self.spec.topic_words,
                            min(topic_count, len(self.spec.topic_words)))
                 + self.vocabulary.background_words(rng, filler_count))
        rng.shuffle(words)
        parts = [" ".join(words)]
        if self.spec.hashtags and rng.random() < self.spec.hashtag_prob:
            tags = rng.sample(self.spec.hashtags,
                              k=min(rng.randint(1, 2), len(self.spec.hashtags)))
            parts.extend("#" + tag for tag in tags)
        if self.spec.urls and rng.random() < self.spec.url_prob:
            parts.append("http://" + rng.choice(self.spec.urls))
        return _clamp(" ".join(parts))

    def compose_retweet(self, parent: PublishedMessage,
                        rng: random.Random) -> str:
        """Re-share of ``parent``, optionally with a short comment."""
        comment = ""
        if rng.random() < 0.5:
            comment = " ".join(self.vocabulary.background_words(
                rng, rng.randint(1, 3))) + " "
        return _clamp(f"{comment}RT @{parent.user}: {parent.core_text}")

    # ------------------------------------------------------------------
    # Cascade mechanics
    # ------------------------------------------------------------------

    def pick_parent(self, rng: random.Random) -> PublishedMessage | None:
        """Preferential-attachment parent from the recent window.

        Weight = (children + 1), restricted to the ``_PARENT_WINDOW`` most
        recent messages: popular-and-fresh posts attract the re-shares.
        Returns ``None`` when nothing has been published yet.
        """
        if not self.published:
            return None
        window = self.published[-_PARENT_WINDOW:]
        weights = [ref.children + 1 for ref in window]
        parent = rng.choices(window, weights=weights, k=1)[0]
        parent.children += 1
        return parent

    def record(self, msg_id: int, user: str, date: float,
               core_text: str) -> None:
        """Remember a published message as a future cascade parent."""
        self.published.append(
            PublishedMessage(msg_id, user, date, core_text))

    def pick_author(self, rng: random.Random, fallback: str) -> str:
        """Event authors skew toward the core participants."""
        if self.spec.core_users and rng.random() < 0.6:
            return rng.choice(self.spec.core_users)
        return fallback


def _clamp(text: str) -> str:
    """Enforce the 140-character platform limit without splitting words
    mid-URL (truncate at the last space before the limit when possible)."""
    if len(text) <= MAX_TEXT_LENGTH:
        return text
    cut = text.rfind(" ", 0, MAX_TEXT_LENGTH)
    if cut <= 0:
        cut = MAX_TEXT_LENGTH
    return text[:cut]
