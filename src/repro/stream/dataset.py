"""Dataset persistence: save/load message streams as TSV.

The on-disk format is one message per line with tab-separated fields
``msg_id, user, date, event_id, parent_id, text`` (tabs/newlines inside the
text are escaped).  Entities (hashtags, URLs, RT markers) are *not* stored;
they are re-extracted on load via
:func:`~repro.core.message.parse_message`, so a dataset file is exactly the
raw stream the paper's crawler would have produced.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.errors import StreamError
from repro.core.message import Message, parse_message

__all__ = ["save_tsv", "load_tsv", "iter_tsv"]

_HEADER = "msg_id\tuser\tdate\tevent_id\tparent_id\ttext"


def _escape(text: str) -> str:
    return (text.replace("\\", "\\\\")
                .replace("\t", "\\t")
                .replace("\n", "\\n")
                .replace("\r", "\\r"))


def _unescape(text: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append({"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}
                       .get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def save_tsv(messages: Iterable[Message], path: "str | os.PathLike[str]") -> int:
    """Write a stream to ``path``; return the number of messages written.

    The write goes through a temp file and an atomic rename so a crashed
    run never leaves a half-written dataset behind.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_suffix(target.suffix + ".tmp")
    count = 0
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(_HEADER + "\n")
        for message in messages:
            event = "" if message.event_id is None else str(message.event_id)
            parent = "" if message.parent_id is None else str(message.parent_id)
            handle.write(
                f"{message.msg_id}\t{message.user}\t{message.date!r}\t"
                f"{event}\t{parent}\t{_escape(message.text)}\n")
            count += 1
    tmp.replace(target)
    return count


def iter_tsv(path: "str | os.PathLike[str]") -> Iterator[Message]:
    """Stream messages from a TSV dataset file in file order."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _HEADER:
            raise StreamError(
                f"{source}: unexpected header {header!r}")
        for line_no, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t", 5)
            if len(fields) != 6:
                raise StreamError(
                    f"{source}:{line_no}: expected 6 fields, got "
                    f"{len(fields)}")
            msg_id, user, date, event, parent, text = fields
            try:
                yield parse_message(
                    int(msg_id), user, float(date), _unescape(text),
                    event_id=int(event) if event else None,
                    parent_id=int(parent) if parent else None,
                )
            except ValueError as exc:
                raise StreamError(
                    f"{source}:{line_no}: malformed record: {exc}") from exc


def load_tsv(path: "str | os.PathLike[str]") -> list[Message]:
    """Load a whole TSV dataset into memory."""
    return list(iter_tsv(path))
