"""Synthetic micro-blog stream substrate (the paper's dataset substitute).

* :mod:`repro.stream.generator` — deterministic event/cascade/noise stream,
* :mod:`repro.stream.events` — burst and cascade models,
* :mod:`repro.stream.vocab` / :mod:`repro.stream.users` — lexical and user
  populations,
* :mod:`repro.stream.dataset` — TSV persistence,
* :mod:`repro.stream.replay` — temporally-ordered replay with checkpoints,
* :mod:`repro.stream.stats` — stream descriptive statistics.
"""

from repro.stream.dataset import iter_tsv, load_tsv, save_tsv
from repro.stream.events import ActiveEvent, EventSpec
from repro.stream.generator import StreamConfig, StreamGenerator, make_event_spec
from repro.stream.jsonl import iter_jsonl, load_jsonl, save_jsonl
from repro.stream.merge import (deduplicate_stream, merge_streams,
                                renumber_stream)
from repro.stream.replay import Checkpoint, replay, replay_many
from repro.stream.stats import StreamStats, describe_stream, histogram
from repro.stream.sampling import (sample_by_hashtag, sample_by_user,
                                   sample_deterministic, sample_uniform)
from repro.stream.users import UserPool
from repro.stream.window import BurstAlarm, SlidingWindowMonitor
from repro.stream.vocab import ShortUrlFactory, Vocabulary, ZipfSampler

__all__ = [
    "iter_tsv",
    "load_tsv",
    "save_tsv",
    "ActiveEvent",
    "EventSpec",
    "StreamConfig",
    "StreamGenerator",
    "make_event_spec",
    "iter_jsonl",
    "deduplicate_stream",
    "merge_streams",
    "renumber_stream",
    "load_jsonl",
    "save_jsonl",
    "Checkpoint",
    "replay",
    "replay_many",
    "StreamStats",
    "describe_stream",
    "histogram",
    "sample_by_hashtag",
    "sample_by_user",
    "sample_deterministic",
    "sample_uniform",
    "UserPool",
    "BurstAlarm",
    "SlidingWindowMonitor",
    "ShortUrlFactory",
    "Vocabulary",
    "ZipfSampler",
]
