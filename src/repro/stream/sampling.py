"""Stream sampling strategies and their effect on provenance discovery.

The paper's dataset comes from Choudhury et al., *"How does the data
sampling strategy impact the discovery of information diffusion in social
media?"* (ICWSM 2010) — ref. [22].  That question applies directly to
provenance indexing: a platform rarely sees the full firehose.  This
module implements the classic sampling strategies so the effect can be
measured (see ``benchmarks/bench_sampling.py``):

* :func:`sample_uniform` — keep each message independently with rate p,
* :func:`sample_by_user` — keep all messages of a random user subset
  (the "gardenhose by account" strategy),
* :func:`sample_by_hashtag` — keep messages carrying tracked hashtags
  (the filter-API strategy),
* :func:`sample_deterministic` — stable id-hash sampling, reproducible
  across runs without an RNG.

All samplers preserve arrival order and are deterministic under a seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Iterator

from repro.core.errors import StreamError
from repro.core.message import Message

__all__ = [
    "sample_uniform",
    "sample_by_user",
    "sample_by_hashtag",
    "sample_deterministic",
]


def _check_rate(rate: float) -> None:
    if not 0.0 < rate <= 1.0:
        raise StreamError(f"sampling rate must be in (0, 1], got {rate}")


def sample_uniform(messages: Iterable[Message], rate: float, *,
                   seed: int = 0) -> Iterator[Message]:
    """Bernoulli(p) sampling of individual messages."""
    _check_rate(rate)
    rng = random.Random(seed)
    for message in messages:
        if rng.random() < rate:
            yield message


def sample_by_user(messages: Iterable[Message], rate: float, *,
                   seed: int = 0) -> Iterator[Message]:
    """Keep the complete output of a random ``rate`` fraction of users.

    User membership is decided on first sight (reservoir-free, single
    pass), so the sampler works on unbounded streams.
    """
    _check_rate(rate)
    rng = random.Random(seed)
    decisions: dict[str, bool] = {}
    for message in messages:
        keep = decisions.get(message.user)
        if keep is None:
            keep = rng.random() < rate
            decisions[message.user] = keep
        if keep:
            yield message


def sample_by_hashtag(messages: Iterable[Message],
                      tracked: "frozenset[str] | set[str]") -> Iterator[Message]:
    """Keep messages carrying at least one tracked hashtag.

    Models the filter/track API: high recall on tracked topics, zero
    elsewhere.  Untagged messages are always dropped.
    """
    if not tracked:
        raise StreamError("tracked hashtag set must be non-empty")
    wanted = {tag.lower() for tag in tracked}
    for message in messages:
        if message.hashtags & wanted:
            yield message


def sample_deterministic(messages: Iterable[Message], rate: float, *,
                         salt: str = "") -> Iterator[Message]:
    """Stable hash sampling: ``keep iff blake2(salt, id) < rate``.

    The same (salt, rate) always keeps the same message ids, so two
    processes sampling independently agree — useful for distributed
    ingestion and for reproducible experiments without RNG state.
    """
    _check_rate(rate)
    cutoff = int(rate * (1 << 32))
    for message in messages:
        digest = hashlib.blake2b(
            f"{salt}:{message.msg_id}".encode(), digest_size=4).digest()
        if int.from_bytes(digest, "big") < cutoff:
            yield message
