"""Synthetic micro-blog stream generator (the dataset substitute).

The paper replays a two-month 2009 Twitter crawl (~70k messages/day).  That
dataset is not redistributable, so :class:`StreamGenerator` synthesises a
stream with the statistical properties the provenance algorithms are
sensitive to:

* a configurable daily message rate with a diurnal activity curve,
* bursty **events** with gamma rise-and-decay lifetimes and heavy-tailed
  volumes (most events small, a few huge — the shape behind Fig. 6a),
* **retweet cascades** inside events via preferential attachment,
* Zipfian background vocabulary, hashtag and short-URL indicants,
* a **noise floor** of short emotional fragments (Fig. 1's "ugh #redsox"),
* ground-truth ``event_id`` / ``parent_id`` labels on every message.

Everything is deterministic under ``StreamConfig.seed``.
"""

from __future__ import annotations

import dataclasses
import heapq
import random
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import StreamError
from repro.core.message import Message, parse_message
from repro.stream.events import ActiveEvent, EventSpec
from repro.stream.users import UserPool
from repro.stream.vocab import (EMOTIONAL_FRAGMENTS, ShortUrlFactory,
                                TOPIC_BANKS, Vocabulary)

__all__ = ["StreamConfig", "StreamGenerator", "make_event_spec",
           "AdversarialConfig", "AdversarialGenerator",
           "ADVERSARIAL_SCENARIOS"]

# 2009-08-01 00:00 UTC — the start of the paper's two-month subset.
EPOCH_2009_08_01 = 1249084800.0
_DAY = 86400.0
_HOUR = 3600.0

# Relative activity per hour-of-day (UTC): quiet overnight, evening peak.
_DIURNAL_WEIGHTS = (
    2, 1, 1, 1, 1, 2, 3, 5, 7, 8, 8, 9,
    9, 9, 9, 9, 10, 11, 12, 12, 11, 9, 6, 4,
)


@dataclass(frozen=True, slots=True)
class StreamConfig:
    """Knobs of the synthetic stream.

    The defaults give a small smoke-test stream; benchmarks scale
    ``days`` / ``messages_per_day`` up to approach the paper's volumes.
    """

    seed: int = 7
    start_date: float = EPOCH_2009_08_01
    days: float = 7.0
    messages_per_day: int = 2000
    noise_fraction: float = 0.25
    user_count: int = 2000
    events_per_day: float = 10.0
    event_volume_mean: int = 40
    event_volume_max: int = 3000
    event_duration_hours_mean: float = 18.0
    rt_prob: float = 0.35
    hashtag_prob: float = 0.85
    url_prob: float = 0.30
    extra_events: tuple[EventSpec, ...] = ()
    themes: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise StreamError(f"days must be positive, got {self.days}")
        if self.messages_per_day <= 0:
            raise StreamError("messages_per_day must be positive, got "
                              f"{self.messages_per_day}")
        if not 0.0 <= self.noise_fraction < 1.0:
            raise StreamError("noise_fraction must be in [0, 1), got "
                              f"{self.noise_fraction}")
        if self.user_count <= 0:
            raise StreamError(f"user_count must be positive, got "
                              f"{self.user_count}")
        if self.events_per_day < 0:
            raise StreamError("events_per_day must be >= 0, got "
                              f"{self.events_per_day}")
        if not 0.0 <= self.rt_prob <= 1.0:
            raise StreamError(f"rt_prob must be in [0, 1], got {self.rt_prob}")
        if self.themes is not None:
            unknown = set(self.themes) - set(TOPIC_BANKS)
            if unknown:
                raise StreamError(
                    f"unknown themes {sorted(unknown)}; available: "
                    f"{sorted(TOPIC_BANKS)}")
            if not self.themes:
                raise StreamError("themes, when given, must be non-empty")

    @property
    def end_date(self) -> float:
        """Exclusive end of the stream window."""
        return self.start_date + self.days * _DAY

    @property
    def total_messages(self) -> int:
        """The stream's exact message count."""
        return int(self.messages_per_day * self.days)


@dataclass(slots=True)
class _Stub:
    """A scheduled-but-unmaterialised message."""

    date: float
    event_id: int | None  # None = noise

    def __lt__(self, other: "_Stub") -> bool:
        return self.date < other.date


class StreamGenerator:
    """Deterministic synthetic message stream.

    Usage::

        config = StreamConfig(days=3, messages_per_day=5000, seed=42)
        for message in StreamGenerator(config):
            indexer.ingest(message)
    """

    def __init__(self, config: StreamConfig | None = None, *,
                 vocabulary: Vocabulary | None = None) -> None:
        self.config = config or StreamConfig()
        self.vocabulary = vocabulary or Vocabulary.default()
        self._events: dict[int, ActiveEvent] = {}
        self._specs: list[EventSpec] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[Message]:
        return self.generate()

    def event_specs(self) -> list[EventSpec]:
        """The event schedule of the last/current generation run."""
        return list(self._specs)

    def generate(self) -> Iterator[Message]:
        """Yield the whole stream in date order with fresh ids from 0."""
        rng = random.Random(self.config.seed)
        users = UserPool.generate(self.config.user_count, rng)
        url_factory = ShortUrlFactory(rng)

        self._specs = self._schedule_events(rng, users, url_factory)
        self._events = {
            spec.event_id: ActiveEvent(spec, self.vocabulary)
            for spec in self._specs
        }
        stubs = self._draw_stubs(rng)

        msg_id = 0
        for stub in stubs:
            if stub.event_id is None:
                message = self._materialise_noise(msg_id, stub, users, rng)
            else:
                message = self._materialise_event(msg_id, stub, users, rng)
            msg_id += 1
            yield message

    def generate_list(self) -> list[Message]:
        """Materialise the whole stream into a list (small streams only)."""
        return list(self.generate())

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule_events(self, rng: random.Random, users: UserPool,
                         url_factory: ShortUrlFactory) -> list[EventSpec]:
        config = self.config
        count = round(config.events_per_day * config.days)
        themes = list(config.themes if config.themes is not None
                      else TOPIC_BANKS)
        specs = list(config.extra_events)

        # Heavy-tailed volumes: most events small, a few very large.
        raw_volumes = []
        for _ in range(count):
            volume = int(5 + (rng.paretovariate(1.25) - 1.0)
                         * config.event_volume_mean)
            raw_volumes.append(min(volume, config.event_volume_max))

        # Scale volumes so events + noise hit the configured daily rate.
        extra_volume = sum(spec.volume for spec in config.extra_events)
        event_budget = max(
            0,
            int(config.total_messages * (1.0 - config.noise_fraction))
            - extra_volume,
        )
        raw_total = sum(raw_volumes)
        if raw_total > 0 and event_budget > 0:
            scale = event_budget / raw_total
            volumes = [max(2, int(v * scale)) for v in raw_volumes]
        else:
            volumes = [0] * count

        next_id = max((spec.event_id for spec in specs), default=-1) + 1
        for index in range(count):
            if volumes[index] <= 0:
                continue
            theme = rng.choice(themes)
            specs.append(make_event_spec(
                event_id=next_id,
                theme=theme,
                name=f"{theme}-{index}",
                start=rng.uniform(config.start_date,
                                  config.end_date - _HOUR),
                duration_hours=max(
                    1.0, rng.expovariate(
                        1.0 / config.event_duration_hours_mean)),
                volume=volumes[index],
                rng=rng,
                users=users,
                url_factory=url_factory,
                rt_prob=config.rt_prob,
                hashtag_prob=config.hashtag_prob,
                url_prob=config.url_prob,
            ))
            next_id += 1
        return specs

    def _draw_stubs(self, rng: random.Random) -> list[_Stub]:
        config = self.config
        streams: list[list[_Stub]] = []
        event_total = 0
        for spec in self._specs:
            times = sorted(spec.sample_times(rng))
            streams.append([_Stub(min(t, config.end_date - 1.0), spec.event_id)
                            for t in times])
            event_total += len(times)

        noise_count = max(0, config.total_messages - event_total)
        noise = sorted(
            _Stub(self._sample_background_time(rng), None)
            for _ in range(noise_count)
        )
        streams.append(noise)
        return list(heapq.merge(*streams))

    def _sample_background_time(self, rng: random.Random) -> float:
        """Uniform day, diurnal hour-of-day, uniform within the hour."""
        config = self.config
        day = rng.randrange(int(config.days)) if config.days >= 1 else 0
        hour = rng.choices(range(24), weights=_DIURNAL_WEIGHTS, k=1)[0]
        offset = rng.uniform(0.0, _HOUR)
        date = config.start_date + day * _DAY + hour * _HOUR + offset
        return min(date, config.end_date - 1.0)

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def _materialise_noise(self, msg_id: int, stub: _Stub,
                           users: UserPool, rng: random.Random) -> Message:
        fragment = rng.choice(EMOTIONAL_FRAGMENTS)
        parts = [fragment]
        # Some noise messages piggyback on trending hashtags (Fig. 1's
        # "ugh #redsox"), which is exactly what stresses bundle precision.
        if self._specs and rng.random() < 0.30:
            spec = rng.choice(self._specs)
            if spec.hashtags:
                parts.append("#" + rng.choice(spec.hashtags))
        if rng.random() < 0.25:
            parts.extend(self.vocabulary.background_words(
                rng, rng.randint(1, 3)))
        return parse_message(
            msg_id, users.sample_author(rng), stub.date, " ".join(parts))

    def _materialise_event(self, msg_id: int, stub: _Stub,
                           users: UserPool, rng: random.Random) -> Message:
        assert stub.event_id is not None
        event = self._events[stub.event_id]
        spec = event.spec
        author = event.pick_author(rng, users.sample_author(rng))
        parent = None
        if rng.random() < spec.rt_prob:
            parent = event.pick_parent(rng)
        if parent is not None:
            text = event.compose_retweet(parent, rng)
            parent_id = parent.msg_id
        else:
            text = event.compose_original(rng)
            parent_id = None
        event.record(msg_id, author, stub.date, text)
        return parse_message(
            msg_id, author, stub.date, text,
            event_id=spec.event_id, parent_id=parent_id)


def make_event_spec(
    *,
    event_id: int,
    theme: str,
    name: str,
    start: float,
    duration_hours: float,
    volume: int,
    rng: random.Random,
    users: UserPool,
    url_factory: ShortUrlFactory,
    rt_prob: float = 0.35,
    hashtag_prob: float = 0.85,
    url_prob: float = 0.30,
) -> EventSpec:
    """Build a concrete :class:`EventSpec` from a topic bank.

    Each event samples its own subset of the theme's word bank and mints
    its own URL pool, so two events of the same theme overlap on hashtags
    (realistic — ``#redsox`` recurs every game night) but are separable by
    vocabulary, URLs and time.
    """
    if theme not in TOPIC_BANKS:
        raise StreamError(
            f"unknown theme {theme!r}; available: {sorted(TOPIC_BANKS)}")
    topic_words, hashtag_stems = TOPIC_BANKS[theme]
    word_count = min(len(topic_words), rng.randint(8, 12))
    # Events carry mostly event-specific tags ("#samoa0930"-style): this is
    # what real micro-blog events do, and it is what keeps same-theme
    # events from chaining into one week-spanning conglomerate bundle.
    # A broad recurring stem ("#redsox") is added only sometimes.
    hashtags = [f"{hashtag_stems[0]}{rng.randint(100, 999)}"]
    if rng.random() < 0.5:
        hashtags.append(f"{rng.choice(hashtag_stems)}{rng.randint(100, 999)}")
    if rng.random() < 0.4:
        hashtags.append(rng.choice(hashtag_stems))
    return EventSpec(
        event_id=event_id,
        theme=theme,
        name=name,
        start=start,
        duration=duration_hours * _HOUR,
        volume=volume,
        rt_prob=rt_prob,
        hashtag_prob=hashtag_prob,
        url_prob=url_prob,
        topic_words=tuple(rng.sample(topic_words, word_count)),
        hashtags=tuple(hashtags),
        urls=tuple(url_factory.new_pool(rng.randint(1, 4))),
        core_users=tuple(users.sample_distinct(rng, rng.randint(2, 6))),
    )


# ---------------------------------------------------------------------------
# Adversarial workloads (PR 7)
# ---------------------------------------------------------------------------

#: The five hostile scenarios the robustness suite pins down.
ADVERSARIAL_SCENARIOS = ("spam-flood", "hashtag-hijack", "near-dup-storm",
                         "mega-cascade", "skewed-clock")

_SPAM_TEMPLATES = (
    "make money fast working from home click {url} and win big prizes",
    "free followers instantly visit {url} limited offer dont miss out",
    "lose weight quick with this one trick {url} doctors hate it",
    "claim your gift card now at {url} only today exclusive deal",
)

_SPAM_FILLER = ("wow", "amazing", "hurry", "really", "verified", "legit",
                "today", "bonus", "act", "now", "best", "deal")


@dataclass(frozen=True, slots=True)
class AdversarialConfig:
    """One hostile workload layered over an organic base stream.

    Injection scenarios (``spam-flood`` / ``hashtag-hijack`` /
    ``near-dup-storm``) keep the organic messages — ids, dates, event
    and parent ground truth — *byte-identical* to the base stream and
    merge seeded attack traffic into it (attack ids start after the
    organic ids, attack messages carry no ground truth, so every false
    edge the attack induces is measurable as an accuracy loss).
    ``mega-cascade`` regenerates the stream with one enormous extra
    event; ``skewed-clock`` re-dates a fraction of organic messages
    without re-sorting, producing genuine out-of-order arrival.
    """

    scenario: str
    base: StreamConfig = StreamConfig()
    seed: int = 1337
    #: Attack volume as a fraction of the organic message count.
    intensity: float = 0.25
    attacker_count: int = 12
    #: Near-copies emitted per storm original.
    dup_copies: int = 8
    #: Fraction of organic messages re-dated under ``skewed-clock``.
    skew_fraction: float = 0.2
    max_skew_hours: float = 48.0
    #: Mega-cascade volume = factor × the base mean event volume.
    cascade_factor: int = 20

    def __post_init__(self) -> None:
        if self.scenario not in ADVERSARIAL_SCENARIOS:
            raise StreamError(
                f"unknown scenario {self.scenario!r}; available: "
                f"{list(ADVERSARIAL_SCENARIOS)}")
        if not 0.0 < self.intensity <= 2.0:
            raise StreamError(
                f"intensity must be in (0, 2], got {self.intensity}")
        if self.attacker_count <= 0 or self.dup_copies <= 0:
            raise StreamError(
                "attacker_count and dup_copies must be positive")
        if not 0.0 < self.skew_fraction <= 1.0:
            raise StreamError(
                f"skew_fraction must be in (0, 1], got {self.skew_fraction}")
        if self.max_skew_hours <= 0 or self.cascade_factor <= 0:
            raise StreamError(
                "max_skew_hours and cascade_factor must be positive")


class AdversarialGenerator:
    """Materialise one :class:`AdversarialConfig` scenario."""

    def __init__(self, config: AdversarialConfig) -> None:
        self.config = config

    def __iter__(self) -> Iterator[Message]:
        return iter(self.generate_list())

    def generate_list(self) -> list[Message]:
        config = self.config
        if config.scenario == "mega-cascade":
            return self._mega_cascade()
        organic = StreamGenerator(config.base).generate_list()
        rng = random.Random(config.seed)
        if config.scenario == "skewed-clock":
            return self._skewed_clock(organic, rng)
        if config.scenario == "spam-flood":
            attacks = self._spam_flood(organic, rng)
        elif config.scenario == "hashtag-hijack":
            attacks = self._hashtag_hijack(organic, rng)
        else:  # near-dup-storm
            attacks = self._near_dup_storm(organic, rng)
        merged = organic + attacks
        merged.sort(key=lambda m: (m.date, m.msg_id))
        return merged

    # -- scenario builders --------------------------------------------------

    def _attacker(self, index: int) -> str:
        return f"spammer{index % self.config.attacker_count}"

    def _attack_budget(self, organic: "list[Message]") -> int:
        return max(1, int(len(organic) * self.config.intensity))

    def _window(self, organic: "list[Message]",
                rng: random.Random) -> float:
        base = self.config.base
        return rng.uniform(base.start_date, base.end_date)

    def _spam_flood(self, organic: "list[Message]",
                    rng: random.Random) -> "list[Message]":
        """Attackers blast near-identical promo posts across the window."""
        url_factory = ShortUrlFactory(rng)
        payload_urls = url_factory.new_pool(self.config.attacker_count)
        attacks = []
        next_id = len(organic)
        for i in range(self._attack_budget(organic)):
            attacker_index = i % self.config.attacker_count
            template = _SPAM_TEMPLATES[attacker_index % len(_SPAM_TEMPLATES)]
            text = template.format(
                url=payload_urls[attacker_index % len(payload_urls)])
            # One filler word per copy: near- (not exact-) duplicates.
            # Hashtags and the payload url are stripped before
            # shingling, so a single varying tail word holds the exact
            # Jaccard against a template-mate at 8/10 — right on the
            # default screen threshold, the adversary's best evasion.
            text += f" {rng.choice(_SPAM_FILLER)} #free #win"
            attacks.append(parse_message(
                next_id, self._attacker(i), self._window(organic, rng),
                text))
            next_id += 1
        return attacks

    def _hashtag_hijack(self, organic: "list[Message]",
                        rng: random.Random) -> "list[Message]":
        """Promo spam piggybacking the stream's trending hashtags."""
        counts: "dict[str, int]" = {}
        for message in organic:
            for tag in message.hashtags:
                counts[tag] = counts.get(tag, 0) + 1
        trending = sorted(counts, key=lambda t: (-counts[t], t))[:10]
        if not trending:
            trending = ["trending"]
        url_factory = ShortUrlFactory(rng)
        payload_urls = url_factory.new_pool(4)
        attacks = []
        next_id = len(organic)
        for i in range(self._attack_budget(organic)):
            template = _SPAM_TEMPLATES[i % len(_SPAM_TEMPLATES)]
            text = template.format(url=rng.choice(payload_urls))
            text += (f" {rng.choice(_SPAM_FILLER)} "
                     f"#{rng.choice(trending)} #{rng.choice(trending)}")
            attacks.append(parse_message(
                next_id, self._attacker(i), self._window(organic, rng),
                text))
            next_id += 1
        return attacks

    def _near_dup_storm(self, organic: "list[Message]",
                        rng: random.Random) -> "list[Message]":
        """Attackers replay near-copies of real messages minutes later."""
        config = self.config
        originals = [m for m in organic
                     if len(m.text.split()) >= 8 and not m.rt_users]
        if not originals:
            originals = organic
        storm_count = max(1, self._attack_budget(organic)
                          // config.dup_copies)
        attacks = []
        next_id = len(organic)
        for i in range(storm_count):
            original = rng.choice(originals)
            for copy in range(config.dup_copies):
                # A trailing filler word keeps the copy *near*-identical
                # (no declared RT — this is content theft, not sharing).
                text = f"{original.text} {rng.choice(_SPAM_FILLER)}"
                date = original.date + rng.uniform(30.0, 1800.0)
                attacks.append(parse_message(
                    next_id, self._attacker(i * config.dup_copies + copy),
                    date, text))
                next_id += 1
        return attacks

    def _mega_cascade(self) -> "list[Message]":
        """One event so large its bundle dwarfs the rest of the pool."""
        config = self.config
        base = config.base
        rng = random.Random(config.seed)
        users = UserPool.generate(base.user_count, rng)
        url_factory = ShortUrlFactory(rng)
        theme = sorted(TOPIC_BANKS)[config.seed % len(TOPIC_BANKS)]
        volume = config.cascade_factor * base.event_volume_mean
        huge = make_event_spec(
            event_id=1_000_000,
            theme=theme,
            name="mega-cascade",
            start=base.start_date + 0.25 * (base.end_date - base.start_date),
            duration_hours=base.days * 12.0,
            volume=volume,
            rng=rng,
            users=users,
            url_factory=url_factory,
            rt_prob=min(0.9, base.rt_prob * 2),
            hashtag_prob=base.hashtag_prob,
            url_prob=base.url_prob)
        boosted = dataclasses.replace(
            base, extra_events=base.extra_events + (huge,))
        return StreamGenerator(boosted).generate_list()

    def _skewed_clock(self, organic: "list[Message]",
                      rng: random.Random) -> "list[Message]":
        """Re-date a fraction of messages without re-sorting the stream.

        Arrival order stays the organic order (that is the attack:
        out-of-order delivery), so a naive consumer sees timestamps
        jumping back and forth by up to ``max_skew_hours``.
        """
        config = self.config
        skew_span = config.max_skew_hours * _HOUR
        skewed = []
        for message in organic:
            if rng.random() < config.skew_fraction:
                delta = rng.uniform(-skew_span, skew_span)
                new_date = max(0.0, message.date + delta)
                skewed.append(dataclasses.replace(message, date=new_date))
            else:
                skewed.append(message)
        return skewed
