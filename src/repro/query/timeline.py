"""Storyline extraction: turn a bundle into a temporal narrative.

The paper motivates provenance with "storyline exploration and
development visualization": users want the *development* of an event, not
a flat list.  This module segments a bundle's lifetime into activity
phases, names each phase by its characteristic terms, and picks one
representative message per phase — the textual equivalent of the demo
site's development view.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.graph import children_map
from repro.core.message import Message
from repro.text.analyzer import Analyzer

__all__ = ["Phase", "Storyline", "extract_storyline", "activity_series",
           "detect_bursts"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class Phase:
    """One activity phase of a bundle's lifetime."""

    start: float
    end: float
    message_count: int
    label_terms: tuple[str, ...]
    representative: Message
    is_burst: bool

    @property
    def duration_hours(self) -> float:
        """Phase length in hours."""
        return (self.end - self.start) / _HOUR


@dataclass(frozen=True, slots=True)
class Storyline:
    """A bundle rendered as consecutive phases."""

    bundle_id: int
    phases: tuple[Phase, ...]

    def __len__(self) -> int:
        return len(self.phases)

    def render(self, *, max_text: int = 70) -> str:
        """Multi-line text narrative, one line per phase."""
        import datetime as _dt

        lines = [f"storyline of bundle {self.bundle_id} "
                 f"({len(self.phases)} phases)"]
        for phase in self.phases:
            stamp = _dt.datetime.fromtimestamp(
                phase.start, tz=_dt.timezone.utc).strftime("%m-%d %H:%M")
            marker = "**" if phase.is_burst else "  "
            text = phase.representative.text
            if len(text) > max_text:
                text = text[:max_text - 1] + "…"
            lines.append(
                f"{marker} {stamp} ({phase.message_count} msgs, "
                f"{', '.join(phase.label_terms[:3])}) "
                f"@{phase.representative.user}: {text}")
        return "\n".join(lines)


def activity_series(bundle: Bundle,
                    bin_seconds: float = _HOUR) -> list[tuple[float, int]]:
    """Message counts per time bin: ``[(bin start, count), ...]``.

    Empty bins inside the lifetime are included (count 0) so burst
    detection sees the gaps.
    """
    if len(bundle) == 0:
        return []
    if bin_seconds <= 0:
        raise ValueError(f"bin_seconds must be positive, got {bin_seconds}")
    start = bundle.start_time
    bins: Counter[int] = Counter()
    for message in bundle:
        bins[int((message.date - start) // bin_seconds)] += 1
    last = max(bins)
    return [(start + index * bin_seconds, bins.get(index, 0))
            for index in range(last + 1)]


def detect_bursts(series: "list[tuple[float, int]]",
                  *, threshold: float = 2.0) -> list[int]:
    """Indices of bins whose count exceeds ``threshold ×`` the mean.

    The classic mean-multiple burst rule: robust enough on the short
    lifetimes bundles have, with no parameters to fit.
    """
    if not series:
        return []
    counts = [count for _, count in series]
    mean = sum(counts) / len(counts)
    if mean <= 0:
        return []
    return [index for index, count in enumerate(counts)
            if count > threshold * mean]


def extract_storyline(bundle: Bundle, *, max_phases: int = 6,
                      analyzer: Analyzer | None = None,
                      bin_seconds: float = _HOUR) -> Storyline:
    """Segment a bundle into up to ``max_phases`` consecutive phases.

    Phase boundaries are placed at the largest time gaps between
    consecutive messages (a simple, deterministic segmentation that
    matches how event activity actually pauses); each phase is labelled
    with its most characteristic terms (tf of the phase vs tf of the
    bundle) and represented by its most re-shared message.
    """
    if max_phases <= 0:
        raise ValueError(f"max_phases must be positive, got {max_phases}")
    analyzer = analyzer or Analyzer()
    ordered = sorted(bundle.messages(), key=lambda m: m.sort_key())
    if not ordered:
        return Storyline(bundle.bundle_id, ())

    # Split at the (max_phases - 1) largest inter-message gaps that are
    # at least one bin wide.
    gaps = sorted(
        range(1, len(ordered)),
        key=lambda i: ordered[i].date - ordered[i - 1].date,
        reverse=True,
    )
    cuts = sorted(
        index for index in gaps[:max_phases - 1]
        if ordered[index].date - ordered[index - 1].date >= bin_seconds
    )
    segments: list[list[Message]] = []
    previous = 0
    for cut in cuts:
        segments.append(ordered[previous:cut])
        previous = cut
    segments.append(ordered[previous:])

    bundle_tf: Counter[str] = Counter()
    segment_terms: list[Counter[str]] = []
    for segment in segments:
        terms: Counter[str] = Counter()
        for message in segment:
            terms.update(analyzer.analyze(message.text))
        segment_terms.append(terms)
        bundle_tf.update(terms)

    children = children_map(bundle)
    series = activity_series(bundle, bin_seconds)
    burst_bins = set(detect_bursts(series))
    start_time = bundle.start_time

    phases = []
    for segment, terms in zip(segments, segment_terms):
        if not segment:
            continue
        label = _characteristic_terms(terms, bundle_tf)
        representative = max(
            segment,
            key=lambda m: (len(children.get(m.msg_id, ())), -m.date))
        first_bin = int((segment[0].date - start_time) // bin_seconds)
        last_bin = int((segment[-1].date - start_time) // bin_seconds)
        phases.append(Phase(
            start=segment[0].date,
            end=segment[-1].date,
            message_count=len(segment),
            label_terms=tuple(label),
            representative=representative,
            is_burst=any(index in burst_bins
                         for index in range(first_bin, last_bin + 1)),
        ))
    return Storyline(bundle.bundle_id, tuple(phases))


def _characteristic_terms(phase_tf: "Counter[str]",
                          bundle_tf: "Counter[str]",
                          limit: int = 5) -> list[str]:
    """Terms over-represented in the phase relative to the whole bundle."""
    scored = []
    for term, count in phase_tf.items():
        base = bundle_tf[term]
        lift = count * math.log(1.0 + count / base) if base else 0.0
        scored.append((lift, count, term))
    scored.sort(key=lambda item: (-item[0], -item[1], item[2]))
    return [term for _, _, term in scored[:limit]]
