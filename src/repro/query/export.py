"""Bundle export for external visualization (DOT and JSON).

The paper demonstrates its bundles through a web demo that draws the
provenance graph (Fig. 2b, Fig. 10).  This module emits the two formats
such a front-end consumes:

* :func:`to_dot` — Graphviz DOT with messages as nodes, connections as
  edges labelled by Table II type; roots are drawn highlighted the way
  the paper marks first messages in red,
* :func:`to_json_graph` — a node-link dict (d3-style ``{nodes, links}``)
  ready for ``json.dumps``,
* :func:`search_results_to_json` — the Fig. 2a result table as JSON rows.

No graphviz/d3 dependency: output is plain text/dicts.
"""

from __future__ import annotations

from typing import Any

from repro.core.bundle import Bundle
from repro.core.graph import roots
from repro.query.bundle_search import BundleHit

__all__ = ["to_dot", "to_json_graph", "search_results_to_json"]

_EDGE_COLORS = {
    "rt": "firebrick",
    "url": "royalblue",
    "hashtag": "forestgreen",
    "text": "gray50",
}


def _escape_dot(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(bundle: Bundle, *, max_text: int = 40,
           include_dates: bool = True) -> str:
    """Render a bundle as a Graphviz digraph.

    Node labels carry the author and truncated text; root (source)
    messages are filled red, matching the paper's Fig. 10 convention.
    Edge colors encode the Table II connection type.
    """
    root_ids = set(roots(bundle))
    lines = [
        f'digraph bundle_{bundle.bundle_id} {{',
        '  rankdir=TB;',
        '  node [shape=box, fontsize=10];',
    ]
    for message in bundle.messages():
        text = message.text
        if len(text) > max_text:
            text = text[:max_text - 1] + "…"
        label = f"@{message.user}\\n{_escape_dot(text)}"
        if include_dates:
            label += f"\\n{message.date:.0f}"
        attrs = [f'label="{label}"']
        if message.msg_id in root_ids:
            attrs.append('style=filled')
            attrs.append('fillcolor=lightcoral')
        lines.append(f'  m{message.msg_id} [{", ".join(attrs)}];')
    for edge in bundle.edges():
        color = _EDGE_COLORS.get(str(edge.kind), "black")
        lines.append(
            f'  m{edge.dst_id} -> m{edge.src_id} '
            f'[label="{edge.kind}", color={color}];')
    lines.append("}")
    return "\n".join(lines)


def to_json_graph(bundle: Bundle) -> dict[str, Any]:
    """Node-link representation of a bundle (d3 ``{nodes, links}``)."""
    root_ids = set(roots(bundle))
    nodes = [
        {
            "id": message.msg_id,
            "user": message.user,
            "date": message.date,
            "text": message.text,
            "hashtags": sorted(message.hashtags),
            "urls": sorted(message.urls),
            "is_root": message.msg_id in root_ids,
        }
        for message in bundle.messages()
    ]
    links = [
        {
            "source": edge.dst_id,
            "target": edge.src_id,
            "kind": str(edge.kind),
            "score": edge.score,
        }
        for edge in bundle.edges()
    ]
    return {
        "bundle_id": bundle.bundle_id,
        "size": len(bundle),
        "start_time": bundle.start_time if len(bundle) else None,
        "end_time": bundle.end_time if len(bundle) else None,
        "summary_words": bundle.summary_words(10),
        "nodes": nodes,
        "links": links,
    }


def search_results_to_json(hits: "list[BundleHit]") -> list[dict[str, Any]]:
    """The Fig. 2a result table (one row per hit) as JSON-ready dicts."""
    return [
        {
            "bundle_id": hit.bundle_id,
            "summary_words": hit.summary_words,
            "size": hit.size,
            "last_post": hit.last_post,
            "score": hit.score,
            "components": {
                "text": hit.text_score,
                "indicant": hit.indicant_score,
                "freshness": hit.freshness,
            },
        }
        for hit in hits
    ]
