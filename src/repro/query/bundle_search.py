"""Bundle-based retrieval (Section V-C, Eq. 7).

A query returns ranked *bundles* instead of isolated messages.  The
relevance of bundle ``B`` for query ``q`` is

    ``r(q, B) = α · s(q, B) + β · i(q, B) + (1 − α − β) · t(B)``

where ``s`` is lexical similarity between the query terms and the bundle's
aggregated text, ``i`` is indicant closeness (query hashtags/URLs hitting
the bundle's summary), and ``t`` is bundle freshness.  Candidates come from
the same summary index the ingest path maintains, so retrieval needs no
second index structure.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.bundle import Bundle
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import QueryError
from repro.core.message import extract_hashtags, extract_urls, strip_entities

__all__ = ["BundleHit", "BundleQuery", "BundleSearchEngine",
           "SearchOutcome"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class BundleQuery:
    """A parsed query: free-text terms plus explicit indicants."""

    terms: tuple[str, ...]
    hashtags: frozenset[str]
    urls: frozenset[str]

    @property
    def is_empty(self) -> bool:
        """True when nothing at all was extracted from the raw query."""
        return not (self.terms or self.hashtags or self.urls)


@dataclass(frozen=True, slots=True)
class BundleHit:
    """One ranked retrieval result (a Fig. 2a row).

    ``summary_words`` and ``last_post`` mirror the demo site's columns:
    the bundle id, its summary terms, its size and its latest post time.
    """

    bundle: Bundle
    score: float
    text_score: float
    indicant_score: float
    freshness: float

    @property
    def bundle_id(self) -> int:
        """Id of the matched bundle."""
        return self.bundle.bundle_id

    @property
    def size(self) -> int:
        """Messages inside the matched bundle."""
        return len(self.bundle)

    @property
    def summary_words(self) -> list[str]:
        """Top indicant words of the bundle."""
        return self.bundle.summary_words(10)

    @property
    def last_post(self) -> float:
        """Date of the bundle's newest message."""
        return self.bundle.end_time


@dataclass(frozen=True, slots=True)
class SearchOutcome:
    """A deadline-aware search result: hits plus an explicit partial flag.

    Under overload a query is given a time budget; when it expires the
    engine ranks whatever it scored so far and says so, instead of
    blocking the caller or silently pretending the ranking was complete.
    """

    hits: "list[BundleHit]"
    partial: bool
    candidates_total: int
    candidates_scored: int
    elapsed_seconds: float

    @property
    def coverage(self) -> float:
        """Fraction of the candidate set that was actually scored."""
        if self.candidates_total == 0:
            return 1.0
        return self.candidates_scored / self.candidates_total


class BundleSearchEngine:
    """Eq. 7 retrieval over an engine's live bundle pool.

    Parameters
    ----------
    indexer:
        The provenance indexer whose pool and summary index to query.
    alpha / beta:
        Eq. 7 weights for text similarity and indicant closeness; the
        freshness weight is the remainder ``1 - α - β``.
    """

    def __init__(self, indexer: ProvenanceIndexer, *,
                 alpha: float = 0.6, beta: float = 0.3) -> None:
        if alpha < 0 or beta < 0 or alpha + beta > 1.0:
            raise QueryError(
                f"need α, β >= 0 and α + β <= 1; got α={alpha}, β={beta}")
        self.indexer = indexer
        self.alpha = alpha
        self.beta = beta
        registry = indexer.obs.registry
        self._searches = registry.counter(
            "repro_searches_total", help="Eq. 7 queries executed")
        self._partials = registry.counter(
            "repro_search_partials_total",
            help="Queries whose deadline expired before full scoring")
        self._latency = registry.histogram(
            "repro_search_seconds", unit="seconds",
            help="End-to-end query latency")

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    def parse(self, raw_query: str) -> BundleQuery:
        """Split a raw query into analyzed terms and explicit indicants."""
        if not raw_query or not raw_query.strip():
            raise QueryError("empty query")
        hashtags = extract_hashtags(raw_query)
        urls = extract_urls(raw_query)
        terms = tuple(
            self.indexer.analyzer.analyze(strip_entities(raw_query)))
        return BundleQuery(terms=terms, hashtags=hashtags, urls=urls)

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def search(self, raw_query: str, k: int = 10) -> list[BundleHit]:
        """Top-``k`` bundles for ``raw_query`` by Eq. 7."""
        return self.search_within(raw_query, k, budget_seconds=None).hits

    def search_within(self, raw_query: str, k: int = 10, *,
                      budget_seconds: "float | None",
                      clock: Callable[[], float] = time.perf_counter,
                      ) -> SearchOutcome:
        """Deadline-bounded Eq. 7 search.

        Candidates are scored in descending posting-hit order (most
        promising first), so an expired budget still yields the best
        available ranking; the outcome flags itself ``partial`` and
        reports how much of the candidate set was covered.
        ``budget_seconds=None`` scores everything, exactly like
        :meth:`search`.
        """
        if budget_seconds is not None and budget_seconds <= 0:
            raise QueryError(
                f"budget_seconds must be positive, got {budget_seconds}")
        started = clock()
        self._searches.inc()
        query = self.parse(raw_query)
        if query.is_empty:
            elapsed = clock() - started
            self._latency.observe(elapsed)
            return SearchOutcome([], False, 0, 0, elapsed)
        candidates = self._candidate_bundles(query)
        deadline = (None if budget_seconds is None
                    else started + budget_seconds)
        hits: list[BundleHit] = []
        scored = 0
        partial = False
        for bundle in candidates:
            if deadline is not None and clock() >= deadline:
                partial = True
                break
            hits.append(self._score(query, bundle))
            scored += 1
        hits.sort(key=lambda hit: (-hit.score, hit.bundle_id))
        elapsed = clock() - started
        self._latency.observe(elapsed)
        if partial:
            self._partials.inc()
        return SearchOutcome(hits[:k], partial, len(candidates), scored,
                             elapsed)

    def _candidate_bundles(self, query: BundleQuery) -> list[Bundle]:
        """Candidate bundles, strongest posting hits first.

        The ordering makes deadline-bounded search graceful: the budget
        is spent on the bundles most likely to rank, so a partial
        outcome approximates the full one from the top.
        """
        index = self.indexer.summary_index
        weights: dict[int, int] = {}
        for term in query.terms:
            for bundle_id in index.postings("keyword", term):
                weights[bundle_id] = weights.get(bundle_id, 0) + 1
            for bundle_id in index.postings("hashtag", term):
                weights[bundle_id] = weights.get(bundle_id, 0) + 1
        for tag in query.hashtags:
            for bundle_id in index.postings("hashtag", tag):
                weights[bundle_id] = weights.get(bundle_id, 0) + 1
        for url in query.urls:
            for bundle_id in index.postings("url", url):
                weights[bundle_id] = weights.get(bundle_id, 0) + 1
        ranked = sorted(weights.items(),
                        key=lambda pair: (-pair[1], pair[0]))
        bundles = []
        for bundle_id, _ in ranked:
            bundle = self.indexer.pool.try_get(bundle_id)
            if bundle is not None:
                bundles.append(bundle)
        return bundles

    def _score(self, query: BundleQuery, bundle: Bundle) -> BundleHit:
        text = self._text_similarity(query, bundle)
        indicant = self._indicant_closeness(query, bundle)
        freshness = self._freshness(bundle)
        score = (self.alpha * text + self.beta * indicant
                 + (1.0 - self.alpha - self.beta) * freshness)
        return BundleHit(bundle, score, text, indicant, freshness)

    # -- Eq. 7 components ------------------------------------------------

    def _text_similarity(self, query: BundleQuery, bundle: Bundle) -> float:
        """``s(q, B)``: idf-weighted term hits, normalised to [0, 1].

        Term frequency within the bundle's keyword/hashtag counters plays
        the tf role; the number of pool bundles containing the term plays
        the df role.  The per-term contribution is squashed with
        ``tf / (tf + 1)`` so one giant bundle cannot dominate on raw bulk.
        """
        if not query.terms:
            return 0.0
        index = self.indexer.summary_index
        pool_size = max(len(self.indexer.pool), 1)
        total = 0.0
        for term in query.terms:
            tf = (bundle.keyword_counts.get(term, 0)
                  + bundle.hashtag_counts.get(term, 0))
            if tf == 0:
                continue
            df = max(len(index.postings("keyword", term))
                     + len(index.postings("hashtag", term)), 1)
            idf = math.log(1.0 + pool_size / df)
            total += (tf / (tf + 1.0)) * idf
        # Normalise by the maximum achievable (all terms present, tf→∞).
        max_idf = math.log(1.0 + pool_size)
        return total / (len(query.terms) * max_idf)

    def _indicant_closeness(self, query: BundleQuery,
                            bundle: Bundle) -> float:
        """``i(q, B)``: fraction of explicit query indicants the bundle
        carries (hashtags and URLs count equally)."""
        wanted = len(query.hashtags) + len(query.urls)
        if wanted == 0:
            return 0.0
        found = sum(1 for tag in query.hashtags
                    if tag in bundle.hashtag_counts)
        found += sum(1 for url in query.urls if url in bundle.url_counts)
        return found / wanted

    def _freshness(self, bundle: Bundle) -> float:
        """``t(B)``: inverse age of the bundle's last post, in hours."""
        age = max(self.indexer.current_date - bundle.last_update, 0.0)
        return 1.0 / (age / _HOUR + 1.0)
