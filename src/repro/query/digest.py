"""Daily digest generation: the product layer over the provenance index.

Builds a readable period summary from a live indexer — the answer to the
introduction's "it becomes a difficult task for users to effectively
understand micro-blog messages and grasp the context of their topical
themes".  A digest combines the other query views:

* top stories of the window by size × quality,
* each story's summary words, source message and key statistics,
* its storyline phases when the story had distinct stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.engine import ProvenanceIndexer
from repro.core.graph import cascade_stats, roots
from repro.core.message import Message
from repro.query.ranking import quality_score
from repro.query.timeline import extract_storyline

__all__ = ["StoryEntry", "Digest", "build_digest"]

_HOUR = 3600.0
_DAY = 24 * _HOUR


@dataclass(frozen=True, slots=True)
class StoryEntry:
    """One story in a digest."""

    bundle: Bundle
    messages_in_window: int
    quality: float
    source: Message
    max_depth: int

    @property
    def headline(self) -> str:
        """One-line story description."""
        words = ", ".join(self.bundle.summary_words(5))
        return (f"[{words}] {self.messages_in_window} messages, "
                f"depth {self.max_depth}, quality {self.quality:.2f}")


@dataclass(frozen=True, slots=True)
class Digest:
    """A period summary: ranked stories plus window metadata."""

    start: float
    end: float
    total_messages: int
    stories: tuple[StoryEntry, ...]

    def render(self, *, max_text: int = 64, phases: bool = True) -> str:
        """Multi-line human-readable digest."""
        import datetime as _dt

        def day(epoch: float) -> str:
            return _dt.datetime.fromtimestamp(
                epoch, tz=_dt.timezone.utc).strftime("%Y-%m-%d %H:%M")

        lines = [
            f"digest {day(self.start)} → {day(self.end)}  "
            f"({self.total_messages} messages in window, "
            f"{len(self.stories)} stories)"
        ]
        for rank, story in enumerate(self.stories, start=1):
            lines.append(f"{rank}. {story.headline}")
            text = story.source.text
            if len(text) > max_text:
                text = text[:max_text - 1] + "…"
            lines.append(f"   source @{story.source.user}: {text}")
            if phases:
                storyline = extract_storyline(story.bundle, max_phases=3)
                if len(storyline) > 1:
                    for phase in storyline.phases:
                        lines.append(
                            f"   · {phase.message_count} msgs: "
                            f"{', '.join(phase.label_terms[:3])}")
        return "\n".join(lines)


def build_digest(indexer: ProvenanceIndexer, *,
                 window: float = _DAY, k: int = 5,
                 min_messages: int = 3) -> Digest:
    """Summarise the last ``window`` seconds of stream time.

    Stories are pooled bundles with at least ``min_messages`` messages in
    the window, ranked by ``recent volume × (0.5 + quality)`` so a
    well-sourced story beats a noise pile of equal size.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    end = indexer.current_date
    start = end - window

    scored: list[tuple[float, StoryEntry]] = []
    total = 0
    for bundle in indexer.pool:
        if bundle.last_update < start or len(bundle) == 0:
            continue
        in_window = sum(1 for m in bundle if m.date >= start)
        total += in_window
        if in_window < min_messages:
            continue
        quality = quality_score(bundle)
        stats = cascade_stats(bundle)
        source_id = min(roots(bundle),
                        key=lambda mid: bundle.get(mid).date)
        entry = StoryEntry(
            bundle=bundle,
            messages_in_window=in_window,
            quality=quality,
            source=bundle.get(source_id),
            max_depth=stats.max_depth,
        )
        scored.append((in_window * (0.5 + quality), entry))
    scored.sort(key=lambda pair: (-pair[0], pair[1].bundle.bundle_id))
    return Digest(
        start=start,
        end=end,
        total_messages=total,
        stories=tuple(entry for _, entry in scored[:k]),
    )
