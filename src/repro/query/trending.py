"""Trending bundles: rank live stories by recent growth velocity.

The "breaking events … reach a large number of audience in a short time"
phenomenon, turned into a view: which bundles gained the most messages
per hour in the recent window, normalised so young explosive stories beat
old large ones — the front-page ranking a micro-blog platform derives
from the same pool the indexer maintains.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.engine import ProvenanceIndexer

__all__ = ["TrendingBundle", "trending_bundles", "growth_velocity"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class TrendingBundle:
    """One trending entry."""

    bundle: Bundle
    velocity: float        # messages/hour inside the window
    recent_messages: int
    window_hours: float

    @property
    def bundle_id(self) -> int:
        """Id of the trending bundle."""
        return self.bundle.bundle_id

    @property
    def summary_words(self) -> list[str]:
        """Display summary of the trending bundle."""
        return self.bundle.summary_words(6)


def growth_velocity(bundle: Bundle, *, now: float,
                    window: float = 6 * _HOUR) -> tuple[float, int]:
    """``(messages/hour, count)`` of the bundle inside ``[now-window, now]``.

    Counts members by publication date, so replayed history scores the
    same as live ingestion.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    cutoff = now - window
    recent = sum(1 for message in bundle if message.date >= cutoff)
    return recent / (window / _HOUR), recent


def trending_bundles(indexer: ProvenanceIndexer, *, k: int = 10,
                     window: float = 6 * _HOUR,
                     min_recent: int = 3) -> list[TrendingBundle]:
    """Top-``k`` pooled bundles by recent growth velocity.

    ``min_recent`` filters stories with too little fresh activity to call
    a trend; the simulated clock (``indexer.current_date``) defines "now".
    """
    now = indexer.current_date
    entries = []
    for bundle in indexer.pool:
        if bundle.last_update < now - window:
            continue  # cheap reject: nothing recent at all
        velocity, recent = growth_velocity(bundle, now=now, window=window)
        if recent < min_recent:
            continue
        entries.append(TrendingBundle(
            bundle=bundle, velocity=velocity, recent_messages=recent,
            window_hours=window / _HOUR))
    entries.sort(key=lambda item: (-item.velocity, -item.bundle.end_time,
                                   item.bundle_id))
    return entries[:k]
