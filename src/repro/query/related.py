"""Related-bundle discovery (the "More >>" of Fig. 2a).

Given one bundle, find other pooled bundles about the same or adjacent
topics — the navigation step after a user opens a search result.  Two
relatedness signals are combined:

* **indicant overlap** — weighted Jaccard over the bundles' hashtag /
  URL / keyword counters (same families as Eq. 1),
* **temporal adjacency** — bundles whose lifetimes overlap or nearly
  touch are more likely to be the same story split by the pool bound.

Candidates come from the engine's summary index (no pool scan).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import BundleNotFoundError

__all__ = ["RelatedBundle", "find_related", "weighted_overlap"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class RelatedBundle:
    """One related-bundle suggestion."""

    bundle: Bundle
    score: float
    indicant_overlap: float
    temporal_overlap: float

    @property
    def bundle_id(self) -> int:
        """Id of the suggested bundle."""
        return self.bundle.bundle_id


def weighted_overlap(first: "Counter[str]", second: "Counter[str]") -> float:
    """Weighted Jaccard of two count vectors: Σmin / Σmax over the union.

    1.0 for identical counters, 0.0 for disjoint ones; robust to one
    bundle being much larger than the other.
    """
    if not first and not second:
        return 0.0
    minimum = 0
    maximum = 0
    for key in first.keys() | second.keys():
        a, b = first.get(key, 0), second.get(key, 0)
        minimum += min(a, b)
        maximum += max(a, b)
    if maximum == 0:
        return 0.0
    return minimum / maximum


def _temporal_overlap(first: Bundle, second: Bundle, *,
                      slack: float = 6 * _HOUR) -> float:
    """Lifetime-overlap fraction with ``slack`` tolerance for near-touch.

    1.0 when one lifetime contains the other; decays to 0 as the gap
    between lifetimes grows past ``slack``.
    """
    if len(first) == 0 or len(second) == 0:
        return 0.0
    start = max(first.start_time, second.start_time)
    end = min(first.end_time, second.end_time)
    if end >= start:
        shorter = max(min(first.time_span, second.time_span), 1.0)
        return min((end - start) / shorter, 1.0)
    gap = start - end
    return max(0.0, 1.0 - gap / slack)


def find_related(indexer: ProvenanceIndexer, bundle_id: int, *,
                 k: int = 5, indicant_weight: float = 0.7,
                 temporal_weight: float = 0.3) -> list[RelatedBundle]:
    """Top-``k`` pooled bundles related to ``bundle_id``.

    Raises :class:`BundleNotFoundError` if the anchor bundle left the
    pool.  The anchor itself is never suggested.
    """
    anchor = indexer.pool.try_get(bundle_id)
    if anchor is None:
        raise BundleNotFoundError(
            f"bundle {bundle_id} is not in the pool")
    index = indexer.summary_index

    candidate_ids: set[int] = set()
    for tag in anchor.hashtag_counts:
        candidate_ids.update(index.postings("hashtag", tag))
    for url in anchor.url_counts:
        candidate_ids.update(index.postings("url", url))
    for keyword, count in anchor.keyword_counts.most_common(20):
        candidate_ids.update(index.postings("keyword", keyword))
    candidate_ids.discard(bundle_id)

    suggestions = []
    for candidate_id in candidate_ids:
        candidate = indexer.pool.try_get(candidate_id)
        if candidate is None:
            continue
        indicants = (
            0.5 * weighted_overlap(anchor.hashtag_counts,
                                   candidate.hashtag_counts)
            + 0.3 * weighted_overlap(anchor.url_counts,
                                     candidate.url_counts)
            + 0.2 * weighted_overlap(anchor.keyword_counts,
                                     candidate.keyword_counts)
        )
        temporal = _temporal_overlap(anchor, candidate)
        score = indicant_weight * indicants + temporal_weight * temporal
        if score > 0:
            suggestions.append(RelatedBundle(
                bundle=candidate, score=score,
                indicant_overlap=indicants, temporal_overlap=temporal))
    suggestions.sort(key=lambda item: (-item.score, item.bundle_id))
    return suggestions[:k]
