"""Continuous queries over the live bundle pool (monitoring feeds).

The paper observes that micro-blog users "always monitor these events by
repeated searches" — the system-side answer is a standing query that the
engine evaluates as bundles evolve, instead of the user re-typing it.

:class:`FeedRegistry` holds named subscriptions; :meth:`FeedRegistry.poll`
evaluates every subscription against the indexer's current pool and
returns *deltas* — bundles that newly match, and matched bundles that
grew since the last poll.  Polling cost is one Eq. 7 search per feed,
reusing the summary index the ingest path already maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import ProvenanceIndexer
from repro.core.errors import QueryError
from repro.query.bundle_search import BundleHit, BundleSearchEngine

__all__ = ["FeedUpdate", "Feed", "FeedRegistry"]


@dataclass(frozen=True, slots=True)
class FeedUpdate:
    """Delta produced by one poll of one feed."""

    feed_name: str
    new_bundles: tuple[BundleHit, ...]
    grown_bundles: tuple[BundleHit, ...]

    @property
    def is_empty(self) -> bool:
        """True when nothing changed since the previous poll."""
        return not (self.new_bundles or self.grown_bundles)


@dataclass
class Feed:
    """One standing query with its last-seen state."""

    name: str
    query: str
    k: int = 10
    min_score: float = 0.0
    seen_sizes: dict[int, int] = field(default_factory=dict)


class FeedRegistry:
    """Standing queries evaluated against a live provenance indexer."""

    def __init__(self, indexer: ProvenanceIndexer, *,
                 search: BundleSearchEngine | None = None) -> None:
        self.indexer = indexer
        self.search = search or BundleSearchEngine(indexer)
        self._feeds: dict[str, Feed] = {}

    def __len__(self) -> int:
        return len(self._feeds)

    def __contains__(self, name: str) -> bool:
        return name in self._feeds

    def subscribe(self, name: str, query: str, *, k: int = 10,
                  min_score: float = 0.0) -> Feed:
        """Register a standing query under a unique name."""
        if name in self._feeds:
            raise QueryError(f"feed {name!r} already exists")
        if not query.strip():
            raise QueryError("feed query must be non-empty")
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        feed = Feed(name=name, query=query, k=k, min_score=min_score)
        self._feeds[name] = feed
        return feed

    def unsubscribe(self, name: str) -> bool:
        """Remove a feed; returns whether it existed."""
        return self._feeds.pop(name, None) is not None

    def feeds(self) -> list[str]:
        """Registered feed names, insertion-ordered."""
        return list(self._feeds)

    def poll(self, name: str) -> FeedUpdate:
        """Evaluate one feed; return what changed since its last poll."""
        feed = self._feeds.get(name)
        if feed is None:
            raise QueryError(f"unknown feed {name!r}")
        hits = [hit for hit in self.search.search(feed.query, k=feed.k)
                if hit.score >= feed.min_score]
        new, grown = [], []
        for hit in hits:
            previous = feed.seen_sizes.get(hit.bundle_id)
            if previous is None:
                new.append(hit)
            elif hit.size > previous:
                grown.append(hit)
        # Record sizes for matched bundles; evicted ones are forgotten so
        # a re-discovered story counts as new again.
        feed.seen_sizes = {hit.bundle_id: hit.size for hit in hits}
        return FeedUpdate(feed_name=name, new_bundles=tuple(new),
                          grown_bundles=tuple(grown))

    def poll_all(self) -> list[FeedUpdate]:
        """Poll every feed; returns only non-empty updates."""
        updates = [self.poll(name) for name in self._feeds]
        return [update for update in updates if not update.is_empty]
