"""Bundle-based retrieval and ranking (Section V-C plus future work).

* :class:`~repro.query.bundle_search.BundleSearchEngine` — Eq. 7 ranked
  bundle retrieval over an engine's live pool,
* :mod:`repro.query.ranking` — quality/credibility scoring from bundle
  structure (the paper's collaborative-assessment extension).
"""

from repro.query.bundle_search import (BundleHit, BundleQuery,
                                       BundleSearchEngine, SearchOutcome)
from repro.query.digest import Digest, StoryEntry, build_digest
from repro.query.export import (search_results_to_json, to_dot,
                                to_json_graph)
from repro.query.feeds import Feed, FeedRegistry, FeedUpdate
from repro.query.related import RelatedBundle, find_related, weighted_overlap
from repro.query.ranking import (depth_score, diversity_score, feedback_score,
                                 quality_score, rank_messages)
from repro.query.trending import TrendingBundle, growth_velocity, trending_bundles
from repro.query.timeline import (Phase, Storyline, activity_series,
                                  detect_bursts, extract_storyline)

__all__ = [
    "BundleHit",
    "Digest",
    "StoryEntry",
    "build_digest",
    "search_results_to_json",
    "to_dot",
    "to_json_graph",
    "Feed",
    "FeedRegistry",
    "FeedUpdate",
    "TrendingBundle",
    "growth_velocity",
    "trending_bundles",
    "Phase",
    "Storyline",
    "activity_series",
    "detect_bursts",
    "extract_storyline",
    "BundleQuery",
    "BundleSearchEngine",
    "SearchOutcome",
    "RelatedBundle",
    "find_related",
    "weighted_overlap",
    "depth_score",
    "diversity_score",
    "feedback_score",
    "quality_score",
    "rank_messages",
]
