"""Quality and credibility signals from provenance bundles.

The paper's conclusion sketches "social provenance tools to enable
collaborative data quality assessments" by "harnessing the user feedbacks
and interaction inside bundles".  This module implements that extension:

* :func:`feedback_score` — how much re-share/comment feedback a bundle's
  content attracted (RT edges are explicit endorsements),
* :func:`diversity_score` — author diversity (many independent voices
  beat one account shouting),
* :func:`quality_score` — the combined collective-intelligence signal,
* :func:`rank_messages` — orders a bundle's members for display, most
  load-bearing first (roots and highly re-shared posts on top).
"""

from __future__ import annotations

import math

from repro.core.bundle import Bundle
from repro.core.connection import ConnectionType
from repro.core.graph import children_map, roots
from repro.core.message import Message

__all__ = [
    "feedback_score",
    "diversity_score",
    "depth_score",
    "quality_score",
    "rank_messages",
]


def feedback_score(bundle: Bundle) -> float:
    """Fraction of the bundle's edges that are explicit RT endorsements.

    A bundle held together by re-shares carries stronger evidence of
    human vetting than one glued by co-occurring hashtags alone.
    Returns 0.0 for edge-less (singleton) bundles.
    """
    edges = bundle.edges()
    if not edges:
        return 0.0
    rt_edges = sum(1 for edge in edges if edge.kind is ConnectionType.RT)
    return rt_edges / len(edges)


def diversity_score(bundle: Bundle) -> float:
    """Normalised author entropy of the bundle's members.

    0.0 when a single author wrote everything, approaching 1.0 when
    every message has a distinct author — the "multiple sources"
    credibility signal of the introduction.
    """
    total = len(bundle)
    if total <= 1:
        return 0.0
    entropy = 0.0
    for count in bundle.user_counts.values():
        p = count / total
        entropy -= p * math.log(p)
    max_entropy = math.log(total)
    return entropy / max_entropy if max_entropy > 0 else 0.0


def depth_score(bundle: Bundle, *, saturation: int = 5) -> float:
    """Propagation-depth signal in [0, 1).

    Deep cascades mean the content kept being re-derived; saturates at
    ``saturation`` hops so a single chain cannot dominate.
    """
    from repro.core.graph import cascade_stats

    stats = cascade_stats(bundle)
    return min(stats.max_depth, saturation) / (saturation + 1.0)


def quality_score(bundle: Bundle, *, feedback_weight: float = 0.4,
                  diversity_weight: float = 0.4,
                  depth_weight: float = 0.2) -> float:
    """Combined collective-intelligence quality estimate in [0, 1]."""
    total = feedback_weight + diversity_weight + depth_weight
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    return (feedback_weight * feedback_score(bundle)
            + diversity_weight * diversity_score(bundle)
            + depth_weight * depth_score(bundle)) / total


def rank_messages(bundle: Bundle, k: int | None = None) -> list[Message]:
    """Order the bundle's members for presentation.

    Roots (sources) and heavily re-derived messages come first; recency
    breaks ties.  This drives the "More >>" expansion of Fig. 2a.
    """
    children = children_map(bundle)
    root_ids = set(roots(bundle))

    def key(message: Message) -> tuple[float, float, float]:
        fanout = len(children.get(message.msg_id, ()))
        is_root = 1.0 if message.msg_id in root_ids else 0.0
        return (-(fanout + 2.0 * is_root), -message.date, message.msg_id)

    ordered = sorted(bundle.messages(), key=key)
    return ordered if k is None else ordered[:k]
