"""The unified ``Indexer`` protocol every serving facade implements.

The repo grew four ways to run the paper's engine — in-process
(:class:`~repro.core.engine.ProvenanceIndexer`), lock-guarded
(:class:`~repro.core.concurrent.ConcurrentIndexer`), supervised with a
WAL (:class:`~repro.reliability.supervisor.ResilientIndexer`) and
sharded in-process (:class:`~repro.core.sharding.ShardedIndexer`) — and
each grew its own spelling of the same five verbs.  This module pins the
shared surface down as a :class:`typing.Protocol` so callers can swap
backends (including the multiprocess
:class:`~repro.runtime.RuntimeClient`) without code changes, and
``mypy --strict`` can catch drift.

The surface (see ``docs/api.md`` for the backend-selection guide):

``ingest(message)``
    Route one message; returns its :class:`IngestResult` (or ``None``
    when an admission-controlled backend shed or deferred it).
``ingest_batch(messages, *, count_only=False)``
    Ingest a date-ordered batch; returns the per-message results, or
    just the accepted count when ``count_only=True`` (the hot path —
    no result list is accumulated).
``search(raw_query, k=10)``
    Ranked Eq. 7 retrieval over the live pool.
``snapshot()``
    Point-in-time :class:`~repro.core.engine.MemorySnapshot` accounting.
``stats()``
    Unified counter mapping with exactly :data:`STATS_KEYS` keys.
``edge_pairs()``
    The cumulative provenance edge ledger (Section VI-B's currency).
``close()`` / context manager
    Release resources; every backend supports ``with backend: ...``.
"""

from __future__ import annotations

import functools
import warnings
from typing import (TYPE_CHECKING, Any, Callable, Iterable, Protocol,
                    TypeVar, runtime_checkable)

if TYPE_CHECKING:
    from repro.core.engine import IngestResult, MemorySnapshot
    from repro.core.message import Message
    from repro.query.bundle_search import BundleHit

__all__ = ["Indexer", "STATS_KEYS", "deprecated", "open_indexer"]

F = TypeVar("F", bound=Callable[..., Any])

#: The exact key set every backend's ``stats()`` mapping carries.
#: ``shard_count`` is 1 for single-engine backends; the remaining keys
#: mirror :class:`~repro.core.engine.EngineStats` (summed across shards
#: where applicable).
STATS_KEYS: frozenset[str] = frozenset({
    "messages_ingested",
    "bundles_created",
    "bundles_matched",
    "edges_created",
    "refinements",
    "bundles_closed",
    "skeleton_ingests",
    "shard_count",
})


@runtime_checkable
class Indexer(Protocol):
    """What every serving facade promises (see module docstring).

    ``runtime_checkable`` so ``isinstance(backend, Indexer)`` verifies
    the method surface at runtime (signatures are enforced statically
    by ``mypy --strict`` and behaviourally by
    ``tests/test_api_conformance.py``).
    """

    def ingest(self, message: "Message") -> "IngestResult | None":
        """Ingest one message; ``None`` only if shed/deferred."""
        ...

    def ingest_batch(self, messages: "Iterable[Message]", *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Ingest a date-ordered batch.

        Returns the accepted messages' results in input order (shed or
        deferred messages are skipped), or only their count when
        ``count_only=True``.
        """
        ...

    def search(self, raw_query: str, k: int = 10) -> "list[BundleHit]":
        """Ranked Eq. 7 retrieval; merged across shards where sharded."""
        ...

    def snapshot(self) -> "MemorySnapshot":
        """Point-in-time memory accounting (summed across shards)."""
        ...

    def stats(self) -> "dict[str, int]":
        """Unified counters; keys are exactly :data:`STATS_KEYS`."""
        ...

    def edge_pairs(self) -> "set[tuple[int, int]]":
        """Cumulative (src, dst) provenance connections discovered."""
        ...

    def close(self) -> None:
        """Flush and release resources; idempotent."""
        ...

    def __enter__(self) -> "Indexer":
        ...

    def __exit__(self, *exc_info: object) -> None:
        ...


def deprecated(replacement: str) -> Callable[[F], F]:
    """Mark an old method name as a shim for ``replacement``.

    The wrapped method keeps working but emits a
    :class:`DeprecationWarning` pointing callers at the unified
    :class:`Indexer` spelling.  Used by the facades for the pre-protocol
    names (``ingest_all``, ``memory_snapshot``, ``messages_ingested``).
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def shim(*args: Any, **kwargs: Any) -> Any:
            warnings.warn(
                f"{func.__qualname__}() is deprecated; use "
                f"{replacement} (see docs/api.md)",
                DeprecationWarning, stacklevel=2)
            return func(*args, **kwargs)

        return shim  # type: ignore[return-value]

    return decorate


def open_indexer(backend: str = "engine", **options: Any) -> Indexer:
    """Build an :class:`Indexer` backend by name.

    Parameters
    ----------
    backend:
        ``"engine"`` | ``"concurrent"`` | ``"resilient"`` |
        ``"sharded"`` | ``"runtime"``.
    options:
        Forwarded to the backend constructor.  ``"resilient"`` requires
        ``root=`` (a directory for WAL + spill store) and accepts
        ``config=``; ``"sharded"`` and ``"runtime"`` accept
        ``workers=``/``shard_count=``, ``router=`` and ``config=``;
        ``"runtime"`` requires ``root=``.

    The imports are local so this module stays import-cycle-free (the
    facades import :func:`deprecated` from here).
    """
    if backend == "engine":
        from repro.core.engine import ProvenanceIndexer
        return ProvenanceIndexer(**options)
    if backend == "concurrent":
        from repro.core.concurrent import ConcurrentIndexer
        return ConcurrentIndexer(**options)
    if backend == "resilient":
        from repro.reliability.supervisor import ResilientIndexer
        return ResilientIndexer.open(**options)
    if backend == "sharded":
        from repro.core.sharding import ShardedIndexer
        if "workers" in options:
            options["shard_count"] = options.pop("workers")
        return ShardedIndexer(**options)
    if backend == "runtime":
        from repro.runtime import RuntimeClient
        return RuntimeClient(**options)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of engine, "
        f"concurrent, resilient, sharded, runtime")
