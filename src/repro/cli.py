"""Command-line interface: generate, index, search, inspect.

The CLI chains the library's pieces through two file formats — TSV
datasets (:mod:`repro.stream.dataset`) and indexer snapshots
(:mod:`repro.storage.snapshot`) — so a whole experiment can be driven
from a shell::

    repro generate --days 2 --rate 4000 --seed 7 -o stream.tsv
    repro stats stream.tsv
    repro index stream.tsv --pool-size 500 -o state.json
    repro search state.json "tsunami warning" -k 5
    repro show state.json 42 --storyline

Install exposes the ``repro`` entry point; ``python -m repro.cli`` works
without installation.
"""

from __future__ import annotations

import argparse
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.bench.reporting import ascii_table, human_bytes, human_count
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.graph import render_tree
from repro.query.bundle_search import BundleSearchEngine
from repro.query.ranking import quality_score
from repro.query.timeline import extract_storyline
from repro.storage.archive_index import ArchivedBundleStore
from repro.storage.snapshot import load_snapshot, save_snapshot
from repro.stream.dataset import iter_tsv, save_tsv
from repro.stream.generator import StreamConfig, StreamGenerator
from repro.stream.stats import describe_stream

__all__ = ["main", "build_parser"]


def _stamp(epoch: float) -> str:
    return datetime.fromtimestamp(epoch, tz=timezone.utc).strftime(
        "%Y-%m-%d %H:%M")


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a synthetic stream and save it as TSV."""
    config = StreamConfig(
        seed=args.seed, days=args.days, messages_per_day=args.rate,
        user_count=args.users, events_per_day=args.events_per_day,
        noise_fraction=args.noise)
    count = save_tsv(StreamGenerator(config).generate(), args.output)
    print(f"wrote {human_count(count)} messages to {args.output}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Describe a TSV dataset."""
    stats = describe_stream(iter_tsv(args.dataset))
    rows = [
        ["messages", human_count(stats.message_count)],
        ["users", human_count(stats.user_count)],
        ["span", f"{stats.span_days:.1f} days"],
        ["rate", f"{stats.messages_per_day:,.0f} msgs/day"],
        ["retweets", f"{stats.retweet_fraction:.1%}"],
        ["with hashtags", f"{stats.hashtag_fraction:.1%}"],
        ["with urls", f"{stats.url_fraction:.1%}"],
        ["distinct hashtags", human_count(stats.distinct_hashtags)],
        ["top hashtags", ", ".join(
            f"#{tag}({count})" for tag, count in stats.top_hashtags[:5])],
    ]
    print(ascii_table(["property", "value"], rows,
                      title=f"dataset {args.dataset}"))
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    """Index a TSV dataset and snapshot the resulting state."""
    if args.pool_size is not None and args.bundle_limit is not None:
        config = IndexerConfig.bundle_limit(pool_size=args.pool_size,
                                            bundle_size=args.bundle_limit)
    elif args.pool_size is not None:
        config = IndexerConfig.partial_index(pool_size=args.pool_size)
    else:
        config = IndexerConfig.full_index()
    store = ArchivedBundleStore(args.store) if args.store else None
    indexer = ProvenanceIndexer(config, store=store)

    started = time.perf_counter()
    count = 0
    for message in iter_tsv(args.dataset):
        indexer.ingest(message)
        count += 1
    elapsed = time.perf_counter() - started

    saved = save_snapshot(indexer, args.output)
    memory = indexer.snapshot()
    print(f"indexed {human_count(count)} messages in {elapsed:.1f}s "
          f"({count / max(elapsed, 1e-9):,.0f} msg/s)")
    print(f"pool: {saved} bundles, "
          f"{human_count(memory.message_count)} messages, "
          f"{human_bytes(memory.total_bytes)}; "
          f"{indexer.stats.refinements} refinement scans")
    if store is not None:
        print(f"store: {len(store)} bundles at {store.store.directory} "
              "(searchable with `repro archive`)")
    print(f"snapshot: {args.output}")
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """Search bundles that were evicted/closed to the on-disk archive."""
    store = ArchivedBundleStore(args.store)
    hits = store.search(args.query, k=args.k)
    if not hits:
        print("no matching archived bundles")
        return 1
    print(ascii_table(
        ["bundle", "size", "score", "last post", "summary"],
        [[hit.bundle_id, hit.size, f"{hit.score:.1f}",
          _stamp(hit.last_update), ", ".join(hit.summary_words[:6])]
         for hit in hits],
        title=f"archived bundles for {args.query!r}"))
    if args.show is not None:
        bundle = store.load(args.show)
        print()
        print(render_tree(bundle, max_text=60))
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    """Eq. 7 bundle search over a snapshot (or a runtime fleet root)."""
    if args.workers is not None:
        return _search_fleet(args)
    indexer = load_snapshot(args.snapshot)
    engine = BundleSearchEngine(indexer, alpha=args.alpha, beta=args.beta)
    budget = args.budget_ms / 1000.0 if args.budget_ms is not None else None
    outcome = engine.search_within(args.query, args.k,
                                   budget_seconds=budget)
    hits = outcome.hits
    if not hits:
        if outcome.partial:
            print(f"no results within the {args.budget_ms:g} ms budget "
                  f"(scored {outcome.candidates_scored} of "
                  f"{outcome.candidates_total} candidates)")
        else:
            print("no matching bundles")
        return 1
    if outcome.partial:
        print(f"PARTIAL: budget of {args.budget_ms:g} ms expired after "
              f"{outcome.candidates_scored} of {outcome.candidates_total} "
              "candidates — ranking may be incomplete")
    print(ascii_table(
        ["bundle", "size", "score", "quality", "last post", "summary"],
        [[hit.bundle_id, hit.size, f"{hit.score:.3f}",
          f"{quality_score(hit.bundle):.2f}", _stamp(hit.last_post),
          ", ".join(hit.summary_words[:6])]
         for hit in hits],
        title=f"bundles for {args.query!r}"))
    return 0


def _search_fleet(args: argparse.Namespace) -> int:
    """Scatter-gather search over a multiprocess runtime fleet root."""
    import json

    from repro.runtime import ShardedRuntime

    # Reopen with whatever router the fleet was served with — search
    # never routes new messages, but the marker check is strict.
    router = "hash"
    marker_path = Path(args.snapshot) / "runtime.json"
    if marker_path.exists():
        router = json.loads(marker_path.read_text()).get("router", "hash")
    budget = args.budget_ms / 1000.0 if args.budget_ms is not None else None
    with ShardedRuntime(args.snapshot, args.workers,
                        router=router) as runtime:
        outcome = runtime.search_within(args.query, args.k,
                                        budget_seconds=budget)
        tagged = runtime.search_by_shard(args.query, args.k,
                                         budget_seconds=budget)
    if not outcome.hits:
        print("no matching bundles across the fleet"
              + (" (partial: budget expired)" if outcome.partial else ""))
        return 1
    if outcome.partial:
        print(f"PARTIAL: scored {outcome.candidates_scored} of "
              f"{outcome.candidates_total} candidates fleet-wide — "
              "ranking may be incomplete")
    print(ascii_table(
        ["shard", "bundle", "size", "score", "last post", "summary"],
        [[shard, hit.bundle_id, hit.size, f"{hit.score:.3f}",
          _stamp(hit.last_post), ", ".join(hit.summary_words[:6])]
         for shard, hit in tagged],
        title=f"fleet bundles for {args.query!r} "
              f"({args.workers} shards, "
              f"coverage {outcome.coverage:.0%})"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Ingest a stream through the multiprocess sharded runtime.

    Spawns ``--workers`` shard processes (each a full resilient stack
    with its own WAL and bundle store under ``--root``), pipelines the
    stream through the router, and periodically prints the fleet load
    table.  The final frame merges every worker's metrics registry into
    one fleet view — the same numbers ``repro top`` and the Prometheus
    export would show for a single process, plus per-shard rows.
    """
    import contextlib
    import tempfile

    from repro.obs.dashboard import Dashboard
    from repro.runtime import ShardedRuntime, fleet_table, merge_worker_dumps

    messages = _load_or_generate(args)
    with contextlib.ExitStack() as stack:
        root = args.root
        if root is None:
            root = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-serve-"))
        trace_sink = args.trace_out
        if trace_sink is None and args.trace_sample > 0.0:
            trace_sink = str(Path(root) / "fleet_trace.jsonl")
        runtime = stack.enter_context(ShardedRuntime(
            root, args.workers, router=args.router,
            sync_every=args.sync_every,
            trace_sample=args.trace_sample, trace_seed=args.seed,
            trace_sink=trace_sink, profile_dir=args.profile_dir,
            anatomy=args.anatomy))
        started = time.perf_counter()
        indexed = 0
        since_repair = 0
        for offset in range(0, len(messages), args.refresh):
            window = messages[offset:offset + args.refresh]
            indexed += runtime.ingest_stream(window,
                                             batch_size=args.batch_size)
            since_repair += len(window)
            if args.repair_interval and since_repair >= args.repair_interval:
                runtime.repair_pass()
                since_repair = 0
            if not args.once:
                print(fleet_table(runtime.shard_stats()))
                print()
        # Drain whatever boundary backlog remains so the fleet converges
        # before the final report (the cooccurrence router is the only
        # one that emits boundary hints; for hash routing this is a
        # no-op round).
        if args.repair_interval or args.router == "cooccurrence":
            runtime.repair_until_clean()
        elapsed = time.perf_counter() - started
        runtime.checkpoint()
        print(fleet_table(runtime.shard_stats()))
        print()
        registry = merge_worker_dumps(runtime.telemetry_dumps())
        print(Dashboard(registry).frame())
        stats = runtime.stats
        print(f"\nindexed {human_count(indexed)} of "
              f"{human_count(len(messages))} messages in {elapsed:.1f}s "
              f"({indexed / max(elapsed, 1e-9):,.0f} msg/s) across "
              f"{args.workers} workers; {stats.batches_sent} batches, "
              f"{stats.restarts} restarts, {stats.gate_waits} gate waits")
        print(f"latency split: routing {stats.route_seconds:.2f}s, "
              f"ack wait {stats.ack_wait_seconds:.2f}s = "
              f"queue wait {stats.queue_wait_seconds:.2f}s + "
              f"service {stats.service_seconds:.2f}s "
              f"(shard-seconds, pipelined)")
        if stats.boundary_hints:
            print(f"coordination: {stats.boundary_hints} boundary hints, "
                  f"{stats.repair_rounds} repair rounds, "
                  f"{stats.repair_edges} edges repaired")
        if args.trace_sample > 0.0 and trace_sink is not None:
            print(f"fleet traces: {trace_sink} (inspect with "
                  f"`repro trace {trace_sink}`)")
        if args.profile_dir is not None:
            print(f"profiles: {args.profile_dir}/*.folded "
                  f"(collapsed-stack flamegraph input)")
        if args.root is not None:
            print(f"fleet root: {root} (search it with "
                  f"`repro search {root} QUERY --workers "
                  f"{args.workers}`)")
    return 0


def cmd_trending(args: argparse.Namespace) -> int:
    """Rank a snapshot's bundles by recent growth velocity."""
    from repro.query.trending import trending_bundles

    indexer = load_snapshot(args.snapshot)
    entries = trending_bundles(indexer, k=args.k,
                               window=args.window_hours * 3600.0,
                               min_recent=args.min_recent)
    if not entries:
        print("nothing trending in the window")
        return 1
    print(ascii_table(
        ["bundle", "msgs/h", "recent", "size", "summary"],
        [[entry.bundle_id, f"{entry.velocity:.1f}",
          entry.recent_messages, len(entry.bundle),
          ", ".join(entry.summary_words)]
         for entry in entries],
        title=f"trending (last {args.window_hours:g}h of stream time)"))
    return 0


def cmd_digest(args: argparse.Namespace) -> int:
    """Render a period digest of a snapshot's top stories."""
    from repro.query.digest import build_digest

    indexer = load_snapshot(args.snapshot)
    digest = build_digest(indexer, window=args.window_hours * 3600.0,
                          k=args.k, min_messages=args.min_messages)
    print(digest.render())
    return 0 if digest.stories else 1


def cmd_doctor(args: argparse.Namespace) -> int:
    """Scan (and optionally repair) WAL / snapshot / bundle store."""
    from repro.reliability.doctor import (quarantine_snapshot,
                                          repair_quarantine, repair_store,
                                          repair_wal, scan_quarantine,
                                          scan_snapshot, scan_store,
                                          scan_wal)

    if not (args.wal or args.snapshot or args.store or args.fleet
            or args.quarantine):
        print("error: give at least one of --wal / --snapshot / --store "
              "/ --fleet / --quarantine", file=sys.stderr)
        return 2

    rows = []
    issues = 0
    repaired = 0

    if args.wal:
        scan = scan_wal(args.wal)
        rows.append(["wal", str(args.wal), scan.describe()])
        if scan.exists and not scan.healthy:
            issues += 1
            if args.repair:
                result = repair_wal(args.wal)
                repaired += 1
                rows.append(["wal", str(args.wal),
                             f"repaired — kept {result.kept_records} "
                             f"records, dropped {result.dropped_lines} "
                             f"line(s), {result.bytes_before} → "
                             f"{result.bytes_after} bytes"])

    if args.snapshot:
        scan = scan_snapshot(args.snapshot)
        rows.append(["snapshot", str(args.snapshot), scan.describe()])
        if scan.exists and not scan.ok:
            issues += 1
            if args.repair:
                quarantined = quarantine_snapshot(args.snapshot)
                repaired += 1
                rows.append(["snapshot", str(args.snapshot),
                             f"quarantined to {quarantined.name}; recovery "
                             "will replay the journal from scratch"])

    if args.store:
        scan = scan_store(args.store)
        rows.append(["store", str(args.store), scan.describe()])
        if scan.exists and not scan.healthy:
            issues += 1
            if args.repair:
                results = repair_store(args.store)
                repaired += 1
                dropped = sum(r.dropped_lines for r in results)
                kept = sum(r.kept_records for r in results)
                rows.append(["store", str(args.store),
                             f"repaired {len(results)} segment(s) — kept "
                             f"{kept} records, dropped {dropped} line(s)"])

    if args.quarantine:
        scan = scan_quarantine(args.quarantine)
        rows.append(["quarantine", str(args.quarantine), scan.describe()])
        if scan.exists and not scan.healthy:
            issues += 1
            if args.repair:
                result = repair_quarantine(args.quarantine)
                repaired += 1
                rows.append(["quarantine", str(args.quarantine),
                             f"repaired — kept {result.kept_records} "
                             f"records, dropped {result.dropped_lines} "
                             f"line(s), {result.bytes_before} → "
                             f"{result.bytes_after} bytes"])

    if args.fleet:
        issues, repaired = _doctor_fleet(args, rows, issues, repaired)

    print(ascii_table(["artifact", "path", "finding"], rows,
                      title="repro doctor"))
    if issues == 0:
        print("all artifacts healthy")
        return 0
    if args.repair:
        print(f"{issues} issue(s) found, {repaired} artifact(s) repaired")
        return 0
    print(f"{issues} issue(s) found — run again with --repair to fix")
    return 1


def _doctor_fleet(args: argparse.Namespace, rows: list,
                  issues: int, repaired: int) -> "tuple[int, int]":
    """Cross-shard orphan scan (and optional repair replay) of a fleet.

    An orphan is a durably acknowledged boundary-log entry past the
    shard's reconciliation cursor: the router flagged the message's
    provenance as possibly crossing a shard cut, and no repair pass has
    examined it yet.  ``--repair`` spins the fleet up (workers and
    router come from the root's ``runtime.json`` marker) and runs
    reconciliation passes until the backlog drains.
    """
    import json

    from repro.runtime.repair import scan_fleet_repair

    root = Path(args.fleet)
    scans = scan_fleet_repair(root)
    if not scans:
        rows.append(["fleet", str(root),
                     "no shard directories found (not a fleet root?)"])
        return issues + 1, repaired
    for shard, scan in sorted(scans.items()):
        if scan.healthy:
            finding = (f"ok — {scan.journaled} boundary entries, "
                       f"{scan.repaired} repairs journaled")
        else:
            sample = ", ".join(str(m) for m in scan.orphans[:5])
            finding = (f"{scan.pending} orphaned boundary entries "
                       f"(cursor {scan.cursor}; msgs {sample}"
                       + ("…" if scan.pending > 5 else "") + ")")
        rows.append([f"shard-{shard:02d}", str(root), finding])
    orphaned = sum(scan.pending for scan in scans.values())
    if orphaned == 0:
        return issues, repaired
    issues += 1
    if not args.repair:
        return issues, repaired

    from repro.runtime import ShardedRuntime

    marker = json.loads((root / "runtime.json").read_text())
    with ShardedRuntime(root, int(marker["workers"]),
                        router=marker.get("router", "hash")) as runtime:
        report = runtime.repair_until_clean()
        runtime.checkpoint()
    left = sum(s.pending for s in scan_fleet_repair(root).values())
    rows.append(["fleet", str(root),
                 f"reconciled {report['advanced']} entries in "
                 f"{report['rounds']} pass(es), repaired "
                 f"{report['repaired']} edges, {left} orphan(s) left"])
    return issues, repaired + (1 if left == 0 else 0)


def cmd_repair(args: argparse.Namespace) -> int:
    """Drain a fleet's boundary backlog with reconciliation passes.

    Opens the fleet described by the root's ``runtime.json`` marker
    (same workers / router it was served with — worker WAL replay
    restores every shard first), then runs repair passes until no
    boundary entry is pending and no shard backed off.  Exit 0 when the
    fleet converged, 1 when a backlog remains after ``--max-rounds``.
    """
    import json

    from repro.runtime import ShardedRuntime, scan_fleet_repair

    root = Path(args.root)
    marker_path = root / "runtime.json"
    if not marker_path.exists():
        print(f"error: {root} has no runtime.json marker — not a fleet "
              "root created by `repro serve --root`", file=sys.stderr)
        return 2
    marker = json.loads(marker_path.read_text())
    before = sum(s.pending for s in scan_fleet_repair(root).values())
    with ShardedRuntime(root, int(marker["workers"]),
                        router=marker.get("router", "hash")) as runtime:
        report = runtime.repair_until_clean(max_rounds=args.max_rounds)
        runtime.checkpoint()
    scans = scan_fleet_repair(root)
    print(ascii_table(
        ["shard", "journaled", "cursor", "pending", "repaired"],
        [[f"{shard:02d}", scan.journaled, scan.cursor, scan.pending,
          scan.repaired]
         for shard, scan in sorted(scans.items())],
        title=f"repro repair — {root}"))
    left = sum(scan.pending for scan in scans.values())
    print(f"{before} orphan(s) before, {report['rounds']} pass(es): "
          f"probed {report['probed']}, repaired {report['repaired']} "
          f"edges, advanced {report['advanced']}, "
          f"{report['backoffs']} backoff(s); {left} orphan(s) left")
    return 0 if left == 0 else 1


def cmd_health(args: argparse.Namespace) -> int:
    """Self-check the overload machinery on a synthetic surge.

    Replays a generated burst at several times the configured
    sustainable rate through the full resilient stack (WAL, snapshots,
    bundle store, admission control, degradation ladder, spill
    breaker), optionally with injected store faults, then prints the
    health report.  Exit 0 when every arrival is accounted for and the
    ladder recovered; 1 otherwise.
    """
    import tempfile
    from pathlib import Path

    from repro.reliability.faults import Fault, FaultInjector
    from repro.reliability.overload import (HealthState, OverloadConfig,
                                            OverloadController)
    from repro.reliability.supervisor import ResilientIndexer
    from repro.storage.bundle_store import BundleStore
    from repro.storage.wal import JournaledIndexer, MessageJournal

    total = args.messages
    stream_config = StreamConfig(
        seed=args.seed, days=total / 100_000.0, messages_per_day=100_000,
        user_count=max(total // 10, 50), events_per_day=240.0)
    messages = StreamGenerator(stream_config).generate_list()

    # Arrival schedule (decoupled from the simulated message dates): a
    # calm warm-up at the sustainable rate, a burst at ``--surge`` times
    # it, then a cool-down at half rate so the backlog can drain and the
    # ladder can climb back down.
    sustainable = 1.0  # messages per scheduled second
    burst_start, burst_end = total // 4, (total * 7) // 12

    class ScheduleClock:
        """Monotonic clock following the synthetic arrival schedule."""

        def __init__(self) -> None:
            self.now = 0.0

        def __call__(self) -> float:
            return self.now

    clock = ScheduleClock()
    overload = OverloadController(OverloadConfig(
        rate_limit=sustainable, burst=32, max_queue=256,
        latency_target=10.0,  # wall latency is not the signal here
        escalate_after=8, recover_after=64,
        breaker_failures=3, breaker_reset_after=120.0), clock=clock)
    # Descending nth = consecutive failures: when the fault with the
    # smallest remaining nth fires, the later-firing faults (earlier in
    # the list) have already counted the occurrence.
    faults = [Fault(op="write", nth=n, kind="error", path_part="segment-")
              for n in range(args.chaos_faults, 0, -1)]

    with tempfile.TemporaryDirectory(prefix="repro-health-") as scratch:
        root = Path(scratch)
        store = BundleStore(root / "bundles")
        journaled = JournaledIndexer(
            ProvenanceIndexer(IndexerConfig.partial_index(pool_size=100),
                              store=store),
            MessageJournal(root / "ingest.wal", sync_every=256),
            snapshot_path=root / "state.json", snapshot_every=10_000)
        supervisor = ResilientIndexer(journaled, sleep=lambda _: None,
                                      overload=overload)

        def replay(batch, offset: int) -> None:
            for index, message in enumerate(batch, start=offset):
                if burst_start <= index < burst_end:
                    clock.now += 1.0 / (sustainable * args.surge)
                else:
                    clock.now += 2.0 / sustainable
                supervisor.ingest(message, now=clock.now)

        with supervisor:
            # The sick-disk episode outlasts the burst: the breaker must
            # hold through the ladder's recovery, then resume spilling
            # once the final fault-free stretch lets a probe through.
            chaos_until = (total * 3) // 4 if args.chaos else 0
            if args.chaos:
                with FaultInjector(faults):
                    replay(messages[:chaos_until], 0)
            replay(messages[chaos_until:], chaos_until)
            supervisor.drain_backlog()
            if overload.guarded is not None:
                overload.guarded.flush()
            report = supervisor.health_report()

    assert report is not None
    print(ascii_table(["property", "value"], report.rows(),
                      title=f"repro health — {total} msg surge at "
                            f"{args.surge:g}x sustainable"
                            + (" + store chaos" if args.chaos else "")))
    engine = supervisor.indexer
    print(f"engine: {engine.stats.messages_ingested} indexed, "
          f"{engine.stats.skeleton_ingests} in skeleton mode, "
          f"{len(engine.edge_pairs())} edges, "
          f"{supervisor.stats.shed_bundles} bundles shed")
    healthy = (report.reconciles
               and report.state in (HealthState.NORMAL,
                                    HealthState.REDUCED))
    if args.chaos and overload.guarded is not None:
        recovered_spill = (overload.guarded.parked_count == 0
                           and overload.guarded.spilled > 0)
        print("spill path: "
              + ("recovered — parked backlog flushed to disk"
                 if recovered_spill else
                 f"{overload.guarded.parked_count} bundle(s) still parked"))
        healthy = healthy and recovered_spill
    print("overall: " + ("healthy" if healthy else "DEGRADED"))
    return 0 if healthy else 1


def _telemetry_stack(args: argparse.Namespace, root, messages,
                     audit=None):
    """Build the instrumented resilient stack ``top``/``metrics`` replay.

    Same shape as :func:`cmd_health`'s surge harness — WAL, snapshots,
    bundle store, admission control, ladder — but with an
    :class:`~repro.obs.Observability` wired through every layer, so the
    replay lights up the whole metric catalog.  When the stream carries
    ground-truth ``parent_id`` edges (generated streams and TSV
    replays), a :class:`~repro.obs.QualityMonitor` watches live
    accu/ret as well.  Returns ``(supervisor, clock, schedule)`` where
    ``schedule(index)`` advances the arrival clock for message
    ``index``.
    """
    from repro.obs import (AuditLog, DEFAULT_QUALITY_RULES, Observability,
                           QualityMonitor, Tracer, WorkloadAnatomy)
    from repro.reliability.guard import GuardConfig
    from repro.reliability.overload import (OverloadConfig,
                                            OverloadController)
    from repro.reliability.supervisor import ResilientIndexer
    from repro.storage.bundle_store import BundleStore
    from repro.storage.wal import JournaledIndexer, MessageJournal

    tracer = None
    if args.sample > 0:
        tracer = Tracer(sample_rate=args.sample, seed=args.seed,
                        sink=getattr(args, "trace_out", None))
    if audit is None and getattr(args, "audit_out", None) is not None:
        audit = AuditLog(sink=args.audit_out)
    obs = Observability(tracer=tracer, audit=audit)
    # Workload anatomy rides every instrumented replay: the sketches
    # and shape histograms feed the `repro top` anatomy panel and the
    # fingerprint/capacity machinery of `repro anatomy`.
    obs.anatomy = WorkloadAnatomy(
        obs.registry,
        sample_every=getattr(args, "sample_every", 8) or 8)

    class ScheduleClock:
        def __init__(self) -> None:
            self.now = 0.0

        def __call__(self) -> float:
            return self.now

    clock = ScheduleClock()
    sustainable = 1.0
    total = len(messages)
    burst_start, burst_end = total // 4, (total * 7) // 12

    def schedule(index: int) -> float:
        if burst_start <= index < burst_end:
            clock.now += 1.0 / (sustainable * args.surge)
        else:
            clock.now += 2.0 / sustainable
        return clock.now

    overload = OverloadController(OverloadConfig(
        rate_limit=sustainable, burst=32, max_queue=256,
        latency_target=10.0, escalate_after=8, recover_after=64,
        breaker_failures=3, breaker_reset_after=120.0), clock=clock)
    store = BundleStore(root / "bundles")
    engine = ProvenanceIndexer(
        IndexerConfig.partial_index(pool_size=100), store=store, obs=obs)
    if any(message.parent_id is not None for message in messages):
        obs.quality = QualityMonitor(
            obs.registry, rules=DEFAULT_QUALITY_RULES,
            rung=lambda: engine.current_rung, audit=obs.audit)
    journaled = JournaledIndexer(
        engine, MessageJournal(root / "ingest.wal", sync_every=256),
        snapshot_path=root / "state.json", snapshot_every=10_000)
    # Memory-only ingest guard (no quarantine/fold files for a scratch
    # replay): lights up the repro_guard_* series and the `repro top`
    # guard panel without changing where messages land — generated
    # streams carry no near-dups past the LSH threshold.
    supervisor = ResilientIndexer(
        journaled, sleep=lambda _: None, overload=overload,
        telemetry=getattr(args, "telemetry_out", None),
        guard=GuardConfig())
    return supervisor, clock, schedule


def _load_or_generate(args: argparse.Namespace):
    """The message list a telemetry replay runs over."""
    if args.dataset is not None:
        messages = list(iter_tsv(args.dataset))
        if args.messages is not None:
            messages = messages[:args.messages]
        return messages
    total = args.messages if args.messages is not None else 3000
    stream_config = StreamConfig(
        seed=args.seed, days=total / 100_000.0, messages_per_day=100_000,
        user_count=max(total // 10, 50), events_per_day=240.0)
    return StreamGenerator(stream_config).generate_list()


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over an instrumented surge replay.

    With ``--once``, replays the whole stream and prints one final
    frame (plus one warm-up frame internally for the rate window);
    otherwise renders a frame every ``--refresh`` messages with ANSI
    screen clearing — ``repro top`` against a fast replay behaves like
    ``top`` against a live ingest process.
    """
    import tempfile
    from pathlib import Path

    from repro.obs.dashboard import Dashboard

    messages = _load_or_generate(args)
    with tempfile.TemporaryDirectory(prefix="repro-top-") as scratch:
        supervisor, clock, schedule = _telemetry_stack(
            args, Path(scratch), messages)
        dashboard = Dashboard(supervisor.indexer.obs.registry,
                              health=supervisor.health_report,
                              clock=clock)
        with supervisor:
            for index, message in enumerate(messages):
                supervisor.ingest(message, now=schedule(index))
                if (not args.once and args.refresh > 0
                        and (index + 1) % args.refresh == 0):
                    print(dashboard.live_frame())
            supervisor.drain_backlog()
            anatomy = supervisor.indexer.obs.anatomy
            if anatomy is not None:
                # Final-frame freshness: mirror the sketch tops and run
                # the memory accountant so the anatomy panel shows
                # end-of-replay numbers, not the last auto-publish.
                anatomy.publish()
                anatomy.account(supervisor.indexer, supervisor.guard)
            final = (dashboard.frame() if args.once
                     else dashboard.live_frame())
            print(final)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Dump the full metrics snapshot of an instrumented replay.

    ``--format prometheus`` prints the text exposition format (pipe it
    to a file for a node-exporter textfile collector); ``--format
    json`` prints the registry snapshot document.
    """
    import tempfile
    from pathlib import Path

    from repro.obs import render_json, render_prometheus

    messages = _load_or_generate(args)
    with tempfile.TemporaryDirectory(prefix="repro-metrics-") as scratch:
        supervisor, _, schedule = _telemetry_stack(
            args, Path(scratch), messages)
        with supervisor:
            for index, message in enumerate(messages):
                supervisor.ingest(message, now=schedule(index))
            supervisor.drain_backlog()
            registry = supervisor.indexer.obs.registry
            if args.format == "json":
                print(render_json(registry))
            else:
                print(render_prometheus(registry), end="")
    return 0


def cmd_anatomy(args: argparse.Namespace) -> int:
    """Characterize the workload for the hot-path rewrite.

    Three modes:

    * **replay** (default): ingest the stream through a plain
      instrumented engine, appending byte-deterministic workload
      fingerprints to ``--fingerprint-out`` (every ``--interval``
      messages plus a final record) and printing the fingerprint +
      capacity report.  Replaying the same seeded stream twice yields
      byte-identical JSONL — the CI determinism gate relies on it.
    * ``--report FILE``: offline — render the last fingerprint of an
      existing JSONL file (no replay).
    * ``--diff BEFORE AFTER``: offline — drift between the last
      fingerprints of two JSONL files (hot-term churn, growth-rate and
      memory deltas).
    """
    from repro.obs import (Observability, WorkloadAnatomy, capacity_report,
                           read_fingerprints)
    from repro.obs.anatomy import (render_capacity_report, render_diff,
                                   render_fingerprint, diff_fingerprints)

    def last_fingerprint(path: str):
        record = None
        for record in read_fingerprints(path):
            pass
        if record is None:
            print(f"error: no fingerprints in {path}", file=sys.stderr)
        return record

    if args.diff is not None:
        before = last_fingerprint(args.diff[0])
        after = last_fingerprint(args.diff[1])
        if before is None or after is None:
            return 1
        print(render_diff(diff_fingerprints(before, after)))
        return 0
    if args.report is not None:
        record = last_fingerprint(args.report)
        if record is None:
            return 1
        print(render_fingerprint(record))
        print()
        print(render_capacity_report(capacity_report(record)))
        return 0

    messages = _load_or_generate(args)
    obs = Observability()
    anatomy = WorkloadAnatomy(obs.registry,
                              sample_every=args.sample_every)
    obs.anatomy = anatomy
    engine = ProvenanceIndexer(
        IndexerConfig.partial_index(pool_size=100), obs=obs)
    out = args.fingerprint_out
    for index, message in enumerate(messages):
        engine.ingest(message)
        if (out is not None and args.interval
                and (index + 1) % args.interval == 0):
            anatomy.write_fingerprint(out, anatomy.fingerprint(engine))
    record = anatomy.fingerprint(engine)
    if out is not None:
        anatomy.write_fingerprint(out, record)
        print(f"fingerprints: {out}", file=sys.stderr)
    print(render_fingerprint(record))
    print()
    print(render_capacity_report(capacity_report(record)))
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Reconstruct one message's decision narrative.

    With ``--audit LOG`` the explanation is rebuilt from an existing
    JSONL audit log (a prior ``--audit-out`` run); otherwise the stream
    is replayed through the instrumented stack with an in-memory audit
    ring sized to hold every decision, and the narrative printed from
    the ring — candidates, Eq. 1/Eq. 2–5 scores, placement, and any
    later refinement that evicted the bundle.
    """
    import tempfile
    from pathlib import Path

    from repro.obs import AuditLog, explain_from_jsonl

    if args.audit is not None:
        explanation = explain_from_jsonl(args.audit, args.message_id)
        if explanation is None:
            print(f"message {args.message_id} has no decision record in "
                  f"{args.audit}", file=sys.stderr)
            return 1
        print(explanation.render())
        return 0

    messages = _load_or_generate(args)
    audit = AuditLog(capacity=len(messages) + 1024,
                     sink=getattr(args, "audit_out", None))
    with tempfile.TemporaryDirectory(prefix="repro-explain-") as scratch:
        supervisor, _, schedule = _telemetry_stack(
            args, Path(scratch), messages, audit=audit)
        with supervisor:
            for index, message in enumerate(messages):
                supervisor.ingest(message, now=schedule(index))
            supervisor.drain_backlog()
    explanation = audit.explain(args.message_id)
    if explanation is None:
        print(f"message {args.message_id} was not seen in the replay "
              f"({len(messages)} messages)", file=sys.stderr)
        return 1
    print(explanation.render())
    return 0


def _audit_rows(records) -> "list[list[object]]":
    """Table rows for ``repro audit`` over decision-record dicts."""
    from repro.obs.audit import rung_label

    rows = []
    for data in records:
        bundle = data.get("bundle_id")
        parent = data.get("parent_id")
        detail_bits = []
        if data.get("skeleton"):
            detail_bits.append("skeleton")
        if data.get("deferred_first"):
            detail_bits.append("deferred-first")
        if data.get("late_arrival"):
            detail_bits.append("late-arrival")
        if data.get("refinement"):
            detail_bits.append(f"refined {len(data['refinement'])}")
        rows.append([
            data.get("seq", ""),
            data.get("msg_id", ""),
            data.get("outcome", ""),
            rung_label(int(data.get("rung", 0))),
            bundle if bundle is not None else "-",
            parent if parent is not None else "-",
            len(data.get("candidates", ())),
            " ".join(detail_bits),
        ])
    return rows


_AUDIT_HEADERS = ["seq", "msg", "outcome", "rung", "bundle", "parent",
                  "cands", "notes"]


def cmd_audit_tail(args: argparse.Namespace) -> int:
    """Show the most recent decision records of a JSONL audit log."""
    from repro.obs import AuditLog

    decisions = [data for data in AuditLog.read_jsonl(args.log)
                 if data.get("type") == "decision"]
    if not decisions:
        print(f"no decision records in {args.log}", file=sys.stderr)
        return 1
    recent = decisions[-args.n:]
    print(ascii_table(_AUDIT_HEADERS, _audit_rows(recent),
                      title=f"audit tail — last {len(recent)} of "
                            f"{len(decisions)} decisions"))
    return 0


def cmd_audit_filter(args: argparse.Namespace) -> int:
    """Filter a JSONL audit log's decision records."""
    from repro.obs import AuditLog

    matched = []
    for data in AuditLog.read_jsonl(args.log):
        if data.get("type") != "decision":
            continue
        if args.outcome is not None and data.get("outcome") != args.outcome:
            continue
        if args.rung is not None and int(data.get("rung", 0)) != args.rung:
            continue
        if args.bundle is not None and data.get("bundle_id") != args.bundle:
            continue
        if args.msg is not None and data.get("msg_id") != args.msg:
            continue
        matched.append(data)
    if not matched:
        print("no decision records match the filter", file=sys.stderr)
        return 1
    shown = matched[-args.limit:] if args.limit is not None else matched
    print(ascii_table(_AUDIT_HEADERS, _audit_rows(shown),
                      title=f"audit filter — {len(shown)} of "
                            f"{len(matched)} matching decisions"))
    return 0


def cmd_show(args: argparse.Namespace) -> int:
    """Render one bundle from a snapshot (tree and/or storyline)."""
    indexer = load_snapshot(args.snapshot)
    bundle = indexer.pool.try_get(args.bundle_id)
    if bundle is None:
        print(f"bundle {args.bundle_id} is not in the snapshot pool",
              file=sys.stderr)
        return 1
    print(render_tree(bundle, max_text=args.width))
    if args.storyline:
        print()
        print(extract_storyline(bundle).render(max_text=args.width))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Render stitched fleet traces from a JSONL trace sink.

    Reads the file a ``repro serve --trace-sample`` run wrote (or any
    single-process ``--trace-out`` file) and prints each trace as an
    end-to-end timeline: route → coordinator buffer → queue wait →
    batch wait → service (with the engine's stage spans nested under
    it) → worker drain → ACK transit, with hop durations that sum to
    the measured end-to-end latency.
    """
    from repro.obs import Tracer, render_trace_timeline

    traces = []
    for data in Tracer.read_jsonl(args.log):
        if args.msg is not None and dict(data.get("tags") or {}).get(
                "msg_id") != args.msg:
            continue
        traces.append(data)
    if not traces:
        what = (f"msg_id {args.msg}" if args.msg is not None
                else "traces")
        print(f"no {what} in {args.log}", file=sys.stderr)
        return 1
    shown = traces[-args.n:] if args.n is not None else traces
    for index, trace in enumerate(shown):
        if index:
            print()
        print(render_trace_timeline(trace, width=args.width))
    if len(shown) < len(traces):
        print(f"\n({len(traces) - len(shown)} earlier trace(s) not "
              f"shown; raise -n)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Continuously profile an instrumented replay.

    Runs the same single-process surge replay as ``repro top`` with the
    background stack sampler attached: a per-stage CPU/allocation table
    is printed at the end, and the collapsed-stack profile (flamegraph
    input: ``flamegraph.pl out.folded > out.svg``) is written to
    ``--out``.
    """
    import tempfile
    from pathlib import Path

    from repro.obs import StackSampler, StageCell

    messages = _load_or_generate(args)
    out = Path(args.out) if args.out is not None else Path("profile.folded")
    with tempfile.TemporaryDirectory(prefix="repro-profile-") as scratch:
        supervisor, _, schedule = _telemetry_stack(
            args, Path(scratch), messages)
        cell = StageCell()
        supervisor.indexer.obs.profile = cell
        registry = supervisor.indexer.obs.registry
        sampler = StackSampler(hz=args.hz, cell=cell, registry=registry)
        started = time.perf_counter()
        with supervisor, sampler:
            for index, message in enumerate(messages):
                supervisor.ingest(message, now=schedule(index))
            supervisor.drain_backlog()
        elapsed = time.perf_counter() - started
        print(ascii_table(
            ["stage", "samples", "cpu%", "alloc blocks"],
            [[stage, count, f"{share * 100:.1f}", f"{blocks:,}"]
             for stage, count, share, blocks in sampler.stage_table()],
            title=f"profile — {sampler.samples} samples at "
                  f"{args.hz} Hz over {elapsed:.1f}s "
                  f"({len(messages)} messages)"))
        sampler.write_collapsed(out)
        print(f"\ncollapsed stacks: {out} "
              f"(flamegraph.pl {out.name} > {out.stem}.svg)")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Provenance-based indexing for micro-blog streams "
                    "(ICDE 2012 reproduction).")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic stream as TSV")
    generate.add_argument("-o", "--output", required=True)
    generate.add_argument("--days", type=float, default=2.0)
    generate.add_argument("--rate", type=int, default=4000,
                          help="messages per day")
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--users", type=int, default=2000)
    generate.add_argument("--events-per-day", type=float, default=15.0)
    generate.add_argument("--noise", type=float, default=0.25)
    generate.set_defaults(func=cmd_generate)

    stats = commands.add_parser("stats", help="describe a TSV dataset")
    stats.add_argument("dataset")
    stats.set_defaults(func=cmd_stats)

    index = commands.add_parser(
        "index", help="run provenance indexing over a TSV dataset")
    index.add_argument("dataset")
    index.add_argument("-o", "--output", required=True,
                       help="snapshot file to write")
    index.add_argument("--pool-size", type=int, default=None,
                       help="bundle pool bound (omit for full index)")
    index.add_argument("--bundle-limit", type=int, default=None,
                       help="max bundle size (requires --pool-size)")
    index.add_argument("--store", default=None,
                       help="directory for the on-disk bundle store")
    index.set_defaults(func=cmd_index)

    search = commands.add_parser(
        "search", help="bundle search over a snapshot (Eq. 7)")
    search.add_argument("snapshot")
    search.add_argument("query")
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--alpha", type=float, default=0.6)
    search.add_argument("--beta", type=float, default=0.3)
    search.add_argument("--budget-ms", type=float, default=None,
                        help="time budget; expiry returns flagged "
                             "partial results instead of blocking")
    search.add_argument("--workers", type=int, default=None,
                        help="treat SNAPSHOT as a runtime fleet root "
                             "(from `repro serve --root`) and "
                             "scatter-gather across this many shard "
                             "processes")
    search.set_defaults(func=cmd_search)

    serve = commands.add_parser(
        "serve",
        help="ingest a stream through the multiprocess sharded runtime "
             "and report fleet-wide telemetry")
    serve.add_argument("dataset", nargs="?", default=None,
                       help="TSV dataset to ingest (default: generate "
                            "a synthetic stream)")
    serve.add_argument("--workers", type=int, default=2,
                       help="shard worker processes to spawn")
    serve.add_argument("--router", choices=("hash", "cooccurrence"),
                       default="hash")
    serve.add_argument("--root", default=None,
                       help="fleet directory (per-shard WAL + store; "
                            "default: temporary, discarded on exit)")
    serve.add_argument("--messages", type=int, default=None,
                       help="messages to ingest (default 3000 when "
                            "generating; all of a dataset)")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--batch-size", type=int, default=256,
                       help="messages per routed sub-batch")
    serve.add_argument("--sync-every", type=int, default=256,
                       help="worker WAL group-commit interval")
    serve.add_argument("--refresh", type=int, default=2000,
                       help="messages between fleet table frames")
    serve.add_argument("--repair-interval", type=int, default=0,
                       help="run a cross-shard repair pass every N "
                            "ingested messages (0 = only at shutdown "
                            "with the cooccurrence router)")
    serve.add_argument("--once", action="store_true",
                       help="print only the final fleet report")
    serve.add_argument("--trace-sample", type=float, default=0.0,
                       help="fleet trace sampling rate in [0, 1]: each "
                            "sampled ingest yields one stitched "
                            "cross-process trace (0 disables)")
    serve.add_argument("--trace-out", default=None,
                       help="JSONL sink for stitched fleet traces "
                            "(default ROOT/fleet_trace.jsonl when "
                            "sampling; read back with `repro trace`)")
    serve.add_argument("--profile-dir", default=None,
                       help="directory for continuous-profiling output: "
                            "one collapsed-stack .folded file per "
                            "process (coordinator + each shard)")
    serve.add_argument("--anatomy", action="store_true",
                       help="attach per-shard workload anatomy (heavy "
                            "hitters, postings shape, measured memory); "
                            "the final fleet frame gains the anatomy "
                            "panel with shard-merged hot terms")
    serve.set_defaults(func=cmd_serve)

    trending = commands.add_parser(
        "trending", help="fastest-growing bundles in a snapshot")
    trending.add_argument("snapshot")
    trending.add_argument("-k", type=int, default=10)
    trending.add_argument("--window-hours", type=float, default=6.0)
    trending.add_argument("--min-recent", type=int, default=3)
    trending.set_defaults(func=cmd_trending)

    digest = commands.add_parser(
        "digest", help="period digest of a snapshot's top stories")
    digest.add_argument("snapshot")
    digest.add_argument("-k", type=int, default=5)
    digest.add_argument("--window-hours", type=float, default=24.0)
    digest.add_argument("--min-messages", type=int, default=3)
    digest.set_defaults(func=cmd_digest)

    archive = commands.add_parser(
        "archive", help="search the on-disk bundle archive")
    archive.add_argument("store", help="archive directory (from --store)")
    archive.add_argument("query")
    archive.add_argument("-k", type=int, default=10)
    archive.add_argument("--show", type=int, default=None,
                         help="also render this archived bundle id")
    archive.set_defaults(func=cmd_archive)

    doctor = commands.add_parser(
        "doctor",
        help="scan WAL / snapshot / bundle store for corruption")
    doctor.add_argument("--wal", default=None,
                        help="journal file to scan")
    doctor.add_argument("--snapshot", default=None,
                        help="snapshot file to scan")
    doctor.add_argument("--store", default=None,
                        help="bundle store directory to scan")
    doctor.add_argument("--fleet", default=None,
                        help="fleet root to scan for cross-shard orphans "
                             "(boundary entries no repair pass has "
                             "reconciled)")
    doctor.add_argument("--quarantine", default=None,
                        help="ingest-guard quarantine log to scan "
                             "(torn tails from a crash mid-append)")
    doctor.add_argument("--repair", action="store_true",
                        help="truncate/compact damaged files to their "
                             "last valid records (snapshot: quarantine; "
                             "fleet: replay reconciliation)")
    doctor.set_defaults(func=cmd_doctor)

    repair = commands.add_parser(
        "repair",
        help="drain a fleet's cross-shard boundary backlog "
             "(asynchronous edge reconciliation)")
    repair.add_argument("root", help="fleet directory from "
                                     "`repro serve --root`")
    repair.add_argument("--max-rounds", type=int, default=8,
                        help="reconciliation passes before giving up "
                             "on a backlogged fleet")
    repair.set_defaults(func=cmd_repair)

    health = commands.add_parser(
        "health",
        help="run an overload self-check: surge a synthetic stream "
             "through admission control and report the health table")
    health.add_argument("--messages", type=int, default=6000,
                        help="synthetic messages to replay")
    health.add_argument("--surge", type=float, default=5.0,
                        help="burst arrival rate as a multiple of the "
                             "sustainable rate")
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--chaos", action="store_true",
                        help="inject bundle-store write faults during "
                             "the surge to exercise the circuit breaker")
    health.add_argument("--chaos-faults", type=int, default=200,
                        help="number of consecutive injected spill "
                             "failures under --chaos")
    health.set_defaults(func=cmd_health)

    def telemetry_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("dataset", nargs="?", default=None,
                         help="TSV dataset to replay (default: generate "
                              "a synthetic surge stream)")
        sub.add_argument("--messages", type=int, default=None,
                         help="messages to replay (default 3000 when "
                              "generating; all of a dataset)")
        sub.add_argument("--surge", type=float, default=6.0,
                         help="burst arrival rate as a multiple of the "
                              "sustainable rate")
        sub.add_argument("--seed", type=int, default=7)
        sub.add_argument("--sample", type=float, default=0.01,
                         help="trace sampling rate in [0, 1] "
                              "(0 disables tracing)")
        sub.add_argument("--audit-out", default=None,
                         help="JSONL file for per-ingest decision audit "
                              "records (repro audit / repro explain "
                              "--audit read it back)")

    top = commands.add_parser(
        "top",
        help="live telemetry dashboard over an instrumented replay")
    telemetry_args(top)
    top.add_argument("--once", action="store_true",
                     help="replay everything, print one final frame")
    top.add_argument("--refresh", type=int, default=500,
                     help="messages between live frames")
    top.add_argument("--trace-out", default=None,
                     help="JSONL file for sampled ingest traces")
    top.add_argument("--telemetry-out", default=None,
                     help="JSONL flight-recorder file for periodic "
                          "metric snapshots")
    top.set_defaults(func=cmd_top)

    metrics = commands.add_parser(
        "metrics",
        help="dump the metrics snapshot of an instrumented replay")
    telemetry_args(metrics)
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus")
    metrics.set_defaults(func=cmd_metrics)

    anatomy = commands.add_parser(
        "anatomy",
        help="characterize the workload: heavy hitters, postings/fan-in "
             "shape, measured memory, slab capacity projections")
    telemetry_args(anatomy)
    anatomy.add_argument("--fingerprint-out", default=None,
                         help="JSONL file for byte-deterministic workload "
                              "fingerprints (appended every --interval "
                              "messages plus one final record)")
    anatomy.add_argument("--interval", type=int, default=0,
                         help="messages between periodic fingerprints "
                              "(0 = only the final one)")
    anatomy.add_argument("--sample-every", type=int, default=8,
                         help="observe every Nth message (systematic "
                              "stride; 1 = every message)")
    anatomy.add_argument("--report", default=None,
                         help="offline mode: render the last fingerprint "
                              "of this JSONL file instead of replaying")
    anatomy.add_argument("--diff", nargs=2, default=None,
                         metavar=("BEFORE", "AFTER"),
                         help="offline mode: drift between the last "
                              "fingerprints of two JSONL files")
    anatomy.set_defaults(func=cmd_anatomy)

    trace = commands.add_parser(
        "trace",
        help="render stitched fleet traces from a JSONL trace sink "
             "as end-to-end timelines")
    trace.add_argument("log", help="JSONL trace file (from `repro serve "
                                   "--trace-sample` or `repro top "
                                   "--trace-out`)")
    trace.add_argument("--msg", type=int, default=None,
                       help="only traces for this message id")
    trace.add_argument("-n", type=int, default=5,
                       help="show at most the latest N traces")
    trace.add_argument("--width", type=int, default=40,
                       help="timeline bar width in characters")
    trace.set_defaults(func=cmd_trace)

    profile = commands.add_parser(
        "profile",
        help="continuously profile an instrumented replay "
             "(per-stage CPU table + collapsed-stack flamegraph input)")
    telemetry_args(profile)
    profile.add_argument("--hz", type=int, default=97,
                         help="stack samples per second")
    profile.add_argument("-o", "--out", default=None,
                         help="collapsed-stack output file "
                              "(default profile.folded)")
    profile.set_defaults(func=cmd_profile)

    explain = commands.add_parser(
        "explain",
        help="why did this message land where it did? (candidates, "
             "Eq. 1/2-5 scores, placement, later evictions)")
    explain.add_argument("message_id", type=int)
    telemetry_args(explain)
    explain.add_argument("--audit", default=None,
                         help="existing JSONL audit log to read instead "
                              "of replaying")
    explain.set_defaults(func=cmd_explain)

    audit = commands.add_parser(
        "audit", help="inspect a JSONL decision-audit log")
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)
    tail = audit_sub.add_parser(
        "tail", help="most recent decision records")
    tail.add_argument("log", help="JSONL audit log (from --audit-out)")
    tail.add_argument("-n", type=int, default=20,
                      help="records to show")
    tail.set_defaults(func=cmd_audit_tail)
    filt = audit_sub.add_parser(
        "filter", help="decision records matching criteria")
    filt.add_argument("log", help="JSONL audit log (from --audit-out)")
    filt.add_argument("--outcome", default=None,
                      choices=("new-bundle", "matched", "shed", "deferred",
                               "quarantined", "folded", "late"))
    filt.add_argument("--rung", type=int, default=None,
                      help="ladder rung (0=normal 1=reduced 2=skeleton "
                           "3=shed_only)")
    filt.add_argument("--bundle", type=int, default=None,
                      help="bundle id the message landed in")
    filt.add_argument("--msg", type=int, default=None,
                      help="message id")
    filt.add_argument("--limit", type=int, default=None,
                      help="show at most this many matches (latest)")
    filt.set_defaults(func=cmd_audit_filter)

    show = commands.add_parser(
        "show", help="render one bundle's provenance tree")
    show.add_argument("snapshot")
    show.add_argument("bundle_id", type=int)
    show.add_argument("--storyline", action="store_true",
                      help="also print the phase storyline")
    show.add_argument("--width", type=int, default=60,
                      help="max message text width")
    show.set_defaults(func=cmd_show)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # surface library errors as clean messages
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
