"""repro — provenance-based indexing for micro-blog platforms.

A full reproduction of *"Provenance-based Indexing Support in Micro-blog
Platforms"* (Yao, Cui, Xue, Liu — ICDE 2012), including every substrate the
paper depends on:

* :mod:`repro.core`    — the provenance model, bundles, summary index,
  bundle pool and the streaming indexing engine (Algorithms 1–3, Eqs. 1–6),
* :mod:`repro.text`    — a from-scratch inverted-index text search engine
  (the paper's Lucene substitute and the Fig. 1 keyword baseline),
* :mod:`repro.stream`  — a deterministic synthetic micro-blog stream with
  events, retweet cascades and noise (the dataset substitute),
* :mod:`repro.storage` — the on-disk bundle store and snapshots (Fig. 4's
  back-end),
* :mod:`repro.query`   — Eq. 7 bundle retrieval and quality ranking,
* :mod:`repro.bench`   — the experiment harness regenerating Figs. 6–13.

Quickstart::

    from repro import IndexerConfig, ProvenanceIndexer
    from repro.query import BundleSearchEngine
    from repro.stream import StreamConfig, StreamGenerator

    indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=500))
    for message in StreamGenerator(StreamConfig(days=2, seed=7)):
        indexer.ingest(message)

    search = BundleSearchEngine(indexer)
    for hit in search.search("tsunami samoa", k=5):
        print(hit.bundle_id, hit.size, hit.summary_words)
"""

from repro.core import (Bundle, BundlePool, Connection, ConnectionType,
                        EdgeComparison, IndexerConfig, IngestResult, Message,
                        ProvenanceIndexer, RefinementReport, SummaryIndex,
                        compare_edge_sets, ground_truth_edges, parse_message)
from repro.core.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Bundle",
    "BundlePool",
    "Connection",
    "ConnectionType",
    "EdgeComparison",
    "IndexerConfig",
    "IngestResult",
    "Message",
    "ProvenanceIndexer",
    "RefinementReport",
    "SummaryIndex",
    "compare_edge_sets",
    "ground_truth_edges",
    "parse_message",
    "ReproError",
    "__version__",
]
