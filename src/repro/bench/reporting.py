"""Plain-text reporting: tables, series and histograms.

The paper presents its evaluation as figures; a terminal reproduction
prints the same rows/series.  These helpers keep every benchmark's output
uniform: an aligned ASCII table per figure, ``#``-bar histograms for the
distribution plots, and human-readable counts.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "ascii_table",
    "bar_chart",
    "line_chart",
    "human_count",
    "human_bytes",
    "format_float",
    "series_table",
    "write_bench_json",
]


def write_bench_json(path: "str | os.PathLike[str]", *, bench: str,
                     config: dict, metrics: dict) -> dict:
    """Append one benchmark's machine-readable result to a JSON file.

    The file holds ``{"bench": ..., "config": {...}, "metrics": {...},
    "timestamp": ...}`` — one document per benchmark name, merged on
    write so ``bench_obs_overhead`` and ``bench_audit_overhead`` can
    share ``BENCH_obs.json`` without clobbering each other.  Returns
    the document written for ``bench``.
    """
    target = Path(path)
    existing: dict = {}
    if target.exists():
        try:
            loaded = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                existing = loaded
        except ValueError:
            existing = {}
    document = {
        "bench": bench,
        "config": config,
        "metrics": metrics,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    # A single-bench file stays flat; multiple benches nest by name.
    if existing.get("bench") not in (None, bench):
        existing = {existing["bench"]: existing, bench: document}
        existing.pop("bench", None)
    elif any(isinstance(value, dict) and "bench" in value
             for value in existing.values()):
        existing[bench] = document
    else:
        existing = document
    target.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    return document


def human_count(value: "int | float") -> str:
    """``1234567 -> '1.23m'``, ``45321 -> '45.3k'``, small values verbatim."""
    value = float(value)
    for threshold, suffix in ((1e9, "b"), (1e6, "m"), (1e3, "k")):
        if abs(value) >= threshold:
            scaled = value / threshold
            digits = 2 if scaled < 10 else 1 if scaled < 100 else 0
            return f"{scaled:.{digits}f}{suffix}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def human_bytes(value: "int | float") -> str:
    """``1536 -> '1.5KB'``, up to GB."""
    value = float(value)
    for threshold, suffix in ((1 << 30, "GB"), (1 << 20, "MB"),
                              (1 << 10, "KB")):
        if abs(value) >= threshold:
            return f"{value / threshold:.1f}{suffix}"
    return f"{int(value)}B"


def format_float(value: float, digits: int = 3) -> str:
    """Fixed-point with trailing-zero trim (``0.700 -> '0.7'``)."""
    text = f"{value:.{digits}f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def ascii_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]],
                *, title: str | None = None) -> str:
    """Render an aligned table with a header rule."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i])
                            for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(
            cell.ljust(widths[i]) if i < len(widths) else cell
            for i, cell in enumerate(row)))
    return "\n".join(lines)


def series_table(positions: Sequence[int],
                 series: dict[str, Sequence[object]],
                 *, position_header: str = "messages",
                 title: str | None = None) -> str:
    """Table with one row per checkpoint and one column per method."""
    headers = [position_header, *series.keys()]
    rows = []
    for index, position in enumerate(positions):
        row: list[object] = [human_count(position)]
        for values in series.values():
            value = values[index] if index < len(values) else ""
            row.append(value)
        rows.append(row)
    return ascii_table(headers, rows, title=title)


def line_chart(positions: Sequence[float],
               series: dict[str, Sequence[float]], *,
               width: int = 60, height: int = 12,
               title: str | None = None) -> str:
    """Plot several series as an ASCII line chart (the figures, drawn).

    Each series gets a marker (``*``, ``o``, ``+``, …); points are placed
    on a ``height × width`` grid scaled to the data range, with a y-axis
    of humanised values and the x range printed underneath.  Later series
    draw over earlier ones where cells collide.
    """
    if not positions or not series:
        return title or ""
    for name, values in series.items():
        if len(values) != len(positions):
            raise ValueError(
                f"series {name!r} has {len(values)} points, expected "
                f"{len(positions)}")
    markers = "*o+x@#%&"
    x_low, x_high = min(positions), max(positions)
    all_values = [v for values in series.values() for v in values]
    y_low, y_high = min(all_values), max(all_values)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(positions, values):
            column = round((x - x_low) / x_span * (width - 1))
            row = height - 1 - round((y - y_low) / y_span * (height - 1))
            grid[row][column] = marker

    label_width = max(len(human_count(y_high)), len(human_count(y_low)))
    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = human_count(y_high)
        elif row_index == height - 1:
            label = human_count(y_low)
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(" " * label_width + f"  {human_count(x_low)}"
                 + " " * max(1, width - len(human_count(x_low))
                             - len(human_count(x_high)) - 2)
                 + human_count(x_high))
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(series))
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              *, width: int = 40, title: str | None = None) -> str:
    """Horizontal ``#``-bar chart (the Fig. 6 histograms in text form)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    peak = max(values, default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        length = 0 if peak <= 0 else round(width * value / peak)
        lines.append(
            f"{label.rjust(label_width)} | "
            f"{'#' * length}{' ' if length else ''}{human_count(value)}")
    return "\n".join(lines)
