"""Experiment harness: workloads, lockstep runner and text reporting."""

from repro.bench.harness import ComparisonSeries, run_comparison
from repro.bench.reporting import (ascii_table, bar_chart, format_float,
                                   human_bytes, human_count, line_chart,
                                   series_table)
from repro.bench.workloads import MEDIUM, SMALL, TINY, Workload, three_variants

__all__ = [
    "ComparisonSeries",
    "run_comparison",
    "ascii_table",
    "bar_chart",
    "line_chart",
    "format_float",
    "human_bytes",
    "human_count",
    "series_table",
    "MEDIUM",
    "SMALL",
    "TINY",
    "Workload",
    "three_variants",
]
