"""Canonical workloads for the experiment suite.

The paper's runs use ~700k messages (Figs. 6–8, 11–13) and ~4.25M
messages (Fig. 9).  A pure-Python reproduction scales those volumes down
(documented in EXPERIMENTS.md); the *relative* behaviour the figures show
is volume-independent because every mechanism (pool bound, refinement,
bundle limit) is exercised at these sizes too — the pool limits are scaled
with the same ratio.

Three sizes are provided:

* ``tiny``   — seconds; used by the test suite,
* ``small``  — default for ``pytest benchmarks/``,
* ``medium`` — closer to paper scale; run explicitly when time permits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.stream.generator import StreamConfig

__all__ = ["Workload", "TINY", "SMALL", "MEDIUM", "three_variants"]


@dataclass(frozen=True, slots=True)
class Workload:
    """A named stream + pool-scale pairing."""

    name: str
    stream: StreamConfig
    pool_size: int
    bundle_size: int
    checkpoint_every: int

    @property
    def total_messages(self) -> int:
        """Messages the workload replays."""
        return self.stream.total_messages


# The paper: 700k messages with a 10k bundle-pool limit (ratio 70:1) and
# checkpoints every ~100k messages (7 points).  Each scaled workload keeps
# the 70:1 message:pool ratio and 7 checkpoints.

TINY = Workload(
    name="tiny",
    stream=StreamConfig(seed=11, days=2.0, messages_per_day=1750,
                        user_count=400, events_per_day=15.0,
                        event_volume_max=400),
    pool_size=50,
    bundle_size=40,
    checkpoint_every=500,
)

SMALL = Workload(
    name="small",
    stream=StreamConfig(seed=11, days=7.0, messages_per_day=5000,
                        user_count=2000, events_per_day=30.0,
                        event_volume_max=800),
    pool_size=500,
    bundle_size=100,
    checkpoint_every=5000,
)

MEDIUM = Workload(
    name="medium",
    stream=StreamConfig(seed=11, days=14.0, messages_per_day=10000,
                        user_count=5000, events_per_day=50.0,
                        event_volume_max=1500),
    pool_size=2000,
    bundle_size=150,
    checkpoint_every=20000,
)


def three_variants(workload: Workload) -> dict[str, ProvenanceIndexer]:
    """The Section VI-A method triple, keyed by the paper's names.

    ``full`` is the ground-truth reference; ``partial`` adds the pool
    bound; ``bundle_limit`` additionally caps bundle sizes.
    """
    return {
        "full": ProvenanceIndexer(IndexerConfig.full_index()),
        "partial": ProvenanceIndexer(
            IndexerConfig.partial_index(pool_size=workload.pool_size)),
        "bundle_limit": ProvenanceIndexer(
            IndexerConfig.bundle_limit(pool_size=workload.pool_size,
                                       bundle_size=workload.bundle_size)),
    }
