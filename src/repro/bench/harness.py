"""Experiment runner: lockstep replay with per-checkpoint comparisons.

Figures 7, 8, 11, 12 and 13 all sample the same kind of series — every N
messages, inspect each method's state.  Figure 8 additionally compares the
partial methods' edge sets against the *Full Index* ground truth at each
checkpoint.  :func:`run_comparison` produces all of it in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.engine import ProvenanceIndexer
from repro.core.message import Message
from repro.core.metrics import EdgeComparison, compare_edge_sets
from repro.stream.replay import Checkpoint, _snapshot

__all__ = ["ComparisonSeries", "run_comparison"]

REFERENCE = "full"


@dataclass
class ComparisonSeries:
    """Everything a comparative figure needs, sampled at checkpoints."""

    checkpoints: dict[str, list[Checkpoint]] = field(default_factory=dict)
    comparisons: dict[str, list[EdgeComparison]] = field(default_factory=dict)
    engines: dict[str, ProvenanceIndexer] = field(default_factory=dict)

    @property
    def methods(self) -> list[str]:
        """Method names in insertion order."""
        return list(self.checkpoints)

    def positions(self) -> list[int]:
        """The messages-seen axis shared by all series."""
        first = next(iter(self.checkpoints.values()), [])
        return [point.messages_seen for point in first]

    def series(self, method: str,
               attribute: str) -> list[float]:
        """Extract one attribute series for one method."""
        return [getattr(point, attribute)
                for point in self.checkpoints[method]]


def run_comparison(
    messages: Iterable[Message],
    engines: Mapping[str, ProvenanceIndexer],
    *,
    checkpoint_every: int = 10_000,
    reference: str | None = REFERENCE,
) -> ComparisonSeries:
    """Replay one stream through several engines in lockstep.

    Parameters
    ----------
    messages:
        Date-ordered stream (generator accepted; materialised once).
    engines:
        Name → engine.  When ``reference`` names one of them, every other
        engine's cumulative edge set is compared against the reference's
        at each checkpoint (the Fig. 8 accuracy/return series).
    checkpoint_every:
        Sampling period in messages; a final checkpoint is always taken.
    """
    if reference is not None and reference not in engines:
        reference = None
    result = ComparisonSeries(
        checkpoints={name: [] for name in engines},
        comparisons=({name: [] for name in engines if name != reference}
                     if reference is not None else {}),
        engines=dict(engines),
    )

    def take_checkpoint(seen: int) -> None:
        reference_edges = (engines[reference].edge_pairs()
                           if reference is not None else None)
        for name, engine in engines.items():
            result.checkpoints[name].append(_snapshot(engine, seen))
            if reference_edges is not None and name != reference:
                result.comparisons[name].append(compare_edge_sets(
                    engine.edge_pairs(), reference_edges))

    seen = 0
    for message in messages:
        seen += 1
        for engine in engines.values():
            engine.ingest(message)
        if checkpoint_every > 0 and seen % checkpoint_every == 0:
            take_checkpoint(seen)
    first_series = next(iter(result.checkpoints.values()), [])
    if not first_series or first_series[-1].messages_seen != seen:
        take_checkpoint(seen)
    return result
