"""The runtime's client object: the unified ``Indexer`` face of a fleet.

:class:`RuntimeClient` wraps a :class:`~repro.runtime.coordinator.
ShardedRuntime` behind exactly the :class:`repro.api.Indexer` protocol,
so code written against any in-process backend (``ProvenanceIndexer``,
``ConcurrentIndexer``, ``ShardedIndexer``, ``ResilientIndexer``) drives
a multiprocess fleet unchanged — ``open_indexer("runtime", ...)``
returns one of these.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from repro.runtime.coordinator import ShardedRuntime

if TYPE_CHECKING:
    from repro.core.engine import IngestResult, MemorySnapshot
    from repro.query.bundle_search import BundleHit

__all__ = ["RuntimeClient"]


class RuntimeClient:
    """Protocol-conforming client for a multiprocess shard fleet.

    Thin by design: every method forwards to the coordinator, which
    owns routing, pipelining, durability accounting and supervision.
    The coordinator itself (and the runtime-only surface — streaming
    ingest, budgeted search, telemetry pulls, fleet tracing
    (``trace_sample=`` / ``trace_sink=``), continuous profiling
    (``profile_dir=``), crash injection) stays reachable via
    :attr:`runtime`; all constructor ``options`` forward verbatim.
    """

    def __init__(self, root: "str | Path", workers: int = 2,
                 **options: Any) -> None:
        self.runtime = ShardedRuntime(root, workers, **options)

    def ingest(self, message: Any) -> "IngestResult | None":
        return self.runtime.ingest(message)

    def ingest_batch(self, messages: Iterable[Any], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        return self.runtime.ingest_batch(messages, count_only=count_only)

    def search(self, raw_query: str, k: int = 10) -> "list[BundleHit]":
        return self.runtime.search(raw_query, k)

    def snapshot(self) -> "MemorySnapshot":
        return self.runtime.snapshot()

    def stats(self) -> dict[str, int]:
        return self.runtime.stats_totals()

    def edge_pairs(self) -> set[tuple[int, int]]:
        return self.runtime.edge_pairs()

    def close(self) -> None:
        self.runtime.close()

    def __enter__(self) -> "RuntimeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
