"""The per-shard worker process of the multiprocess runtime.

Each worker owns one complete resilient stack — a
:class:`~repro.core.engine.ProvenanceIndexer` under a
:class:`~repro.storage.wal.JournaledIndexer` (WAL + snapshots) under a
:class:`~repro.reliability.supervisor.ResilientIndexer` (retry / DLQ /
optional admission control) — rooted at its own directory, with its own
:class:`~repro.obs.MetricsRegistry`.  Nothing is shared between
siblings, so a worker crash is strictly local: the coordinator restarts
the process and :meth:`ResilientIndexer.open` rebuilds the exact
pre-crash state from the shard's snapshot + WAL tail.

The command protocol is a strict request → reply sequence over one
duplex :class:`multiprocessing.connection.Connection`.  Replies are
``("ok", payload)`` or ``("error", message)``; a handler error never
kills the worker.  The durability contract of ``ingest`` is the whole
point of the design: the WAL is fsynced *before* the acknowledgment is
sent, so any result the coordinator has seen is on disk — a SIGKILL can
only lose batches that were never acknowledged.
"""

from __future__ import annotations

import os
import time
from multiprocessing.connection import Connection
from pathlib import Path
from typing import Any

from repro.core.config import IndexerConfig
from repro.core.message import Message, parse_message
from repro.obs.anatomy import WorkloadAnatomy
from repro.obs.perf import StackSampler, StageCell
from repro.obs.tracing import TraceContext, Tracer
from repro.query.bundle_search import BundleSearchEngine
from repro.reliability.overload import OverloadConfig
from repro.reliability.supervisor import ResilientIndexer
from repro.runtime.repair import BoundaryLog, RepairJournal

__all__ = ["worker_main", "build_worker_stack", "WorkerOptions"]


class WorkerOptions:
    """Picklable construction options shipped to each worker process."""

    __slots__ = ("config", "overload", "snapshot_every", "sync_every",
                 "store", "telemetry_enabled", "guard", "trace",
                 "profile_dir", "profile_hz", "anatomy")

    def __init__(self, *, config: IndexerConfig | None = None,
                 overload: OverloadConfig | None = None,
                 snapshot_every: int = 50_000,
                 sync_every: int = 256,
                 store: bool = True,
                 telemetry_enabled: bool = True,
                 guard: "Any" = None,
                 trace: bool = False,
                 profile_dir: "str | None" = None,
                 profile_hz: int = 97,
                 anatomy: bool = False) -> None:
        self.config = config
        self.overload = overload
        self.snapshot_every = snapshot_every
        self.sync_every = sync_every
        self.store = store
        self.telemetry_enabled = telemetry_enabled
        # A GuardConfig, True (defaults) or None/False; each worker gets
        # its own IngestGuard with quarantine/fold logs in its shard root.
        self.guard = guard
        # Fleet trace participation: honor coordinator-propagated
        # sampling decisions and ship hop records back on each ACK.
        self.trace = trace
        # Continuous profiling: run a StackSampler for the worker's
        # lifetime and write profile-shard-NN.folded here on exit.
        self.profile_dir = profile_dir
        self.profile_hz = profile_hz
        # Workload anatomy: attach a per-shard WorkloadAnatomy whose
        # hot-term/memory gauges ride the telemetry dump; the fleet
        # merge sums them (distributed SpaceSaving merge).
        self.anatomy = anatomy


def build_worker_stack(root: str, options: WorkerOptions,
                       ) -> ResilientIndexer:
    """Open (or recover) one shard's full resilient stack at ``root``."""
    return ResilientIndexer.open(
        root,
        config=options.config,
        sync_every=options.sync_every,
        snapshot_every=options.snapshot_every,
        store=options.store,
        overload=options.overload,
        guard=options.guard,
    )


def _queue_fraction(supervisor: ResilientIndexer) -> float:
    if supervisor.overload is None:
        return 0.0
    return supervisor.overload.admission.queue_fraction


def _rung(supervisor: ResilientIndexer) -> int:
    if supervisor.overload is None:
        return 0
    return int(supervisor.overload.state)


def _load_signals(supervisor: ResilientIndexer) -> dict[str, Any]:
    """The per-ack load feedback the coordinator's gate consumes."""
    return {
        "queue_fraction": _queue_fraction(supervisor),
        "rung": _rung(supervisor),
    }


class _FleetTrace:
    """Worker-side fleet-trace state: tracer + unique span-id source.

    ``span_id`` is ``"<shard>.<boot>.<n>"`` where ``boot`` comes from a
    durable per-shard boot counter (bumped every ``worker_main``), so a
    SIGKILL'd worker's replacement can never re-issue a dead
    incarnation's span ids — the property the restart trace test pins.
    The tracer runs at ``sample_rate=0.0``: it emits spans *only* for
    coordinator-forced trace contexts, so WAL replay during recovery
    (plain ``engine.ingest`` calls, nothing forced) produces no spans
    at all, and the worker never consumes RNG draws of its own.
    """

    __slots__ = ("tracer", "shard", "boot", "seq")

    def __init__(self, tracer: Tracer, shard: int, boot: int) -> None:
        self.tracer = tracer
        self.shard = shard
        self.boot = boot
        self.seq = 0

    def next_span_id(self) -> str:
        self.seq += 1
        return f"{self.shard}.{self.boot}.{self.seq}"


def _bump_boot_counter(root: str) -> int:
    """Read-increment-fsync the shard's durable boot counter."""
    path = Path(root) / "boot.count"
    try:
        boot = int(path.read_text()) + 1
    except (OSError, ValueError):
        boot = 1
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC)
    try:
        os.write(fd, str(boot).encode("ascii"))
        os.fsync(fd)
    finally:
        os.close(fd)
    return boot


def _handle_ingest(supervisor: ResilientIndexer, boundary: BoundaryLog,
                   messages: list[Message], count_only: bool,
                   hints: "list[tuple[int, tuple[int, ...]]] | None",
                   extras: "dict[str, Any] | None" = None,
                   fleet: "_FleetTrace | None" = None,
                   perf: "dict[str, float] | None" = None,
                   ) -> dict[str, Any]:
    """Ingest one routed sub-batch, then make it durable before ACK.

    ``results`` is positionally aligned with ``messages`` (``None`` for
    shed / deferred / dead-lettered entries) so the coordinator can
    reassemble input order across shards.  Deferred messages sit in the
    admission backlog — not yet journaled, and reported as such — so
    only *indexed* results are covered by the durability barrier below.

    ``hints`` maps sub-batch positions to peer-shard tuples (the
    router's boundary evidence).  Each hinted message that was indexed
    is journaled — with its ingest-time edge, the baseline a repair
    must strictly beat — to the boundary log, whose fsync joins the
    WAL's in the pre-ACK durability barrier.  A hinted message that was
    *deferred* re-enters through the admission backlog without its
    hint; ``repro doctor --fleet`` still sees the shard as healthy
    because no boundary entry was acknowledged for it.

    ``extras`` is the coordinator's perf envelope: its ``"enqueue"``
    monotonic stamp turns into this batch's queue wait (one clock
    across processes), and ``"traced"`` lists the fleet-sampled
    positions whose engine spans + hop timestamps ride back on the ACK
    as ``"hops"`` for the coordinator to stitch.
    """
    recv = time.monotonic()
    hinted = dict(hints) if hints else {}
    traced: dict[int, tuple[int, str]] = {}
    if extras and fleet is not None:
        for position, trace_id, parent in extras.get("traced") or ():
            traced[int(position)] = (int(trace_id), str(parent))
    hops: "list[dict[str, Any]] | None" = [] if traced else None
    results: list[Any] | None = None if count_only else []
    indexed = 0
    for position, message in enumerate(messages):
        context = traced.get(position)
        if context is not None and fleet is not None:
            trace_id, parent = context
            fleet.tracer.force(TraceContext(
                trace_id=trace_id, parent_span=parent, sampled=True))
            started = time.monotonic()
            result = supervisor.ingest(message)
            ended = time.monotonic()
            fleet.tracer.unforce(trace_id)
            hop: dict[str, Any] = {
                "trace_id": trace_id,
                "span_id": fleet.next_span_id(),
                "start": started,
                "end": ended,
                "screen": supervisor.last_screen_seconds,
            }
            finished = fleet.tracer.finished
            if finished and finished[-1].trace_id == trace_id:
                engine_trace = finished.pop()
                hop["spans"] = [span.to_dict()
                                for span in engine_trace.spans]
                hop["outcome"] = engine_trace.outcome
                if "bundle_id" in engine_trace.tags:
                    hop["bundle_id"] = engine_trace.tags["bundle_id"]
            elif result is None:
                # Shed/deferred before the engine's tracer saw it.
                hop["outcome"] = "deferred"
            assert hops is not None
            hops.append(hop)
        else:
            result = supervisor.ingest(message)
        if results is not None:
            results.append(result)
        if result is None:
            continue
        indexed += 1
        peers = hinted.get(position)
        if peers:
            edge = result.edge
            boundary.append(message, peers,
                            edge.dst_id if edge is not None else None,
                            edge.score if edge is not None else 0.0)
    # The durability barrier: fsync the WAL (and any fresh boundary or
    # guard-log entries) before acknowledging, so everything the
    # coordinator sees is already on disk.
    supervisor.journaled.journal.sync()
    if supervisor.guard is not None:
        supervisor.guard.sync()
    boundary.sync()
    done = time.monotonic()
    reply: dict[str, Any] = {"indexed": indexed, "results": results,
                             "recv": recv, "done": done}
    if extras and "enqueue" in extras:
        queue_wait = max(0.0, recv - float(extras["enqueue"]))
        service = max(0.0, done - recv)
        reply["queue_wait"] = queue_wait
        reply["service"] = service
        if perf is not None:
            perf["queue_wait_seconds"] += queue_wait
            perf["service_seconds"] += service
    if hops is not None:
        reply["hops"] = hops
    reply.update(_load_signals(supervisor))
    return reply


def _handle_search(supervisor: ResilientIndexer,
                   searcher: BundleSearchEngine,
                   raw_query: str, k: int,
                   budget_seconds: float | None) -> dict[str, Any]:
    outcome = searcher.search_within(raw_query, k,
                                     budget_seconds=budget_seconds)
    return {
        "hits": outcome.hits,
        "partial": outcome.partial,
        "candidates_total": outcome.candidates_total,
        "candidates_scored": outcome.candidates_scored,
        "elapsed_seconds": outcome.elapsed_seconds,
    }


def _handle_stats(supervisor: ResilientIndexer, boundary: BoundaryLog,
                  journal: RepairJournal,
                  perf: "dict[str, float] | None" = None,
                  ) -> dict[str, Any]:
    stats = supervisor.stats
    return {
        **({"perf": dict(perf)} if perf is not None else {}),
        "unified": supervisor.indexer.stats(),
        "supervisor": {
            "ingested": stats.ingested,
            "retries": stats.retries,
            "dead_lettered": stats.dead_lettered,
            "deferred_checkpoints": stats.deferred_checkpoints,
            "degraded_entries": stats.degraded_entries,
            "shed_bundles": stats.shed_bundles,
        },
        "snapshot": supervisor.snapshot(),
        "repair": {
            "boundary_journaled": boundary.appended,
            "boundary_pending": boundary.pending_count,
            "repaired": len(journal.entries),
        },
        **({"guard": {
            "screened": supervisor.guard.stats.screened,
            "passed": supervisor.guard.stats.passed,
            "folded": supervisor.guard.stats.folded,
            "quarantined": supervisor.guard.stats.quarantined,
            "late": supervisor.guard.stats.late,
            "released": supervisor.guard.stats.released,
            "buffer_depth": supervisor.guard.buffer_depth,
            "toxicity": supervisor.guard.toxicity(),
        }} if supervisor.guard is not None else {}),
        **_load_signals(supervisor),
    }


def _handle_apply_repair(supervisor: ResilientIndexer,
                         journal: RepairJournal, src: int,
                         old_dst: "int | None", new_dst: int,
                         score: float) -> dict[str, Any]:
    """Durably journal, then apply, one edge repair (idempotent).

    WAL discipline: the journal entry is fsynced *before* the ledger
    moves, so a SIGKILL between the two replays the repair on restart;
    a SIGKILL after the apply but before the ACK makes the coordinator
    re-send it, which the already-applied ledger turns into a no-op —
    no duplicate, no phantom, in either interleaving.
    """
    engine = supervisor.indexer
    if engine.has_edge(src, new_dst):
        return {"applied": False}
    journal.record(src, old_dst, new_dst, score)
    return {"applied": engine.repair_edge(src, old_dst, new_dst)}


def worker_main(shard_id: int, root: str, options: WorkerOptions,
                conn: Connection) -> None:
    """Process entry point: serve shard ``shard_id`` from ``root``.

    Top-level (picklable) so it works under both ``fork`` and ``spawn``
    start methods.  The loop exits on ``("close",)`` or when the
    coordinator's end of the pipe disappears.
    """
    supervisor = build_worker_stack(root, options)
    searcher = BundleSearchEngine(supervisor.indexer)
    # Cross-shard repair state: boundary hints + applied-repair journal.
    # Replay order matters — the WAL replay inside ``build_worker_stack``
    # re-created ingest-time edges; the repair journal now re-applies
    # any repairs on top of them (idempotent vs snapshots).
    boundary = BoundaryLog(root)
    journal = RepairJournal(root)
    replayed = journal.replay(supervisor.indexer)
    registry = supervisor.indexer.obs.registry
    perf_totals = {"queue_wait_seconds": 0.0, "service_seconds": 0.0}
    registry.counter(
        "repro_queue_wait_seconds_total", unit="seconds",
        help="Seconds ingest batches spent between coordinator dispatch "
             "and worker pickup",
        callback=lambda: perf_totals["queue_wait_seconds"])
    registry.counter(
        "repro_service_seconds_total", unit="seconds",
        help="Seconds spent servicing ingest batches (pickup to "
             "durable, fsync included)",
        callback=lambda: perf_totals["service_seconds"])
    fleet: "_FleetTrace | None" = None
    if options.trace:
        # Fleet tracing: decisions come forced from the coordinator —
        # sample_rate 0.0 means WAL replay and un-traced ingests never
        # produce spans (and never touch any RNG).  Boot counter makes
        # span ids unique across SIGKILL restarts.
        tracer = Tracer(sample_rate=0.0, keep=8)
        supervisor.indexer.obs.tracer = tracer
        fleet = _FleetTrace(tracer, shard_id,
                            boot=_bump_boot_counter(root))
    profiler: "StackSampler | None" = None
    if options.profile_dir:
        cell = StageCell()
        supervisor.indexer.obs.profile = cell
        profiler = StackSampler(hz=options.profile_hz, cell=cell,
                                registry=registry).start()
    anatomy: "WorkloadAnatomy | None" = None
    if getattr(options, "anatomy", False):
        # Per-shard workload characterization: the engine feeds every
        # ingest; publish()/account() run lazily on each telemetry pull
        # so the coordinator's merged dump carries this shard's hot
        # terms and measured memory without any new transfer path.
        anatomy = WorkloadAnatomy(registry)
        supervisor.indexer.obs.anatomy = anatomy
    registry.gauge("repro_shard_id",
                   help="This worker's shard index").set(shard_id)
    uptime_start = time.monotonic()
    registry.gauge("repro_worker_uptime_seconds", unit="seconds",
                   help="Seconds since this worker (re)started",
                   callback=lambda: time.monotonic() - uptime_start)
    registry.counter("repro_repair_boundary_total",
                     help="Boundary messages journaled for cross-shard "
                          "repair",
                     callback=lambda: boundary.appended)
    registry.gauge("repro_repair_pending_boundary",
                   help="Boundary entries awaiting reconciliation",
                   callback=lambda: boundary.pending_count)
    registry.counter("repro_repair_edges_total",
                     help="Cross-shard edge repairs journaled on this "
                          "shard",
                     callback=lambda: len(journal.entries))
    registry.counter("repro_repair_replayed_total",
                     help="Journaled repairs re-applied during recovery",
                     ).inc(replayed)
    closing = False
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            op = request[0]
            payload: dict[str, Any]
            try:
                if op == "ingest":
                    payload = _handle_ingest(
                        supervisor, boundary, request[1], request[2],
                        request[3] if len(request) > 3 else None,
                        request[4] if len(request) > 4 else None,
                        fleet, perf_totals)
                elif op == "search":
                    payload = _handle_search(supervisor, searcher,
                                             request[1], request[2],
                                             request[3])
                elif op == "drain":
                    drained = supervisor.drain_backlog()
                    supervisor.journaled.journal.sync()
                    payload = {"indexed": drained,
                               **_load_signals(supervisor)}
                elif op == "stats":
                    payload = _handle_stats(supervisor, boundary, journal,
                                            perf_totals)
                elif op == "snapshot":
                    payload = {"snapshot": supervisor.snapshot()}
                elif op == "edges":
                    payload = {"edges": supervisor.edge_pairs()}
                elif op == "telemetry":
                    if anatomy is not None:
                        anatomy.publish()
                        anatomy.account(supervisor.indexer,
                                        supervisor.guard)
                    payload = {"dump": registry.dump()}
                elif op == "health":
                    payload = {"report": supervisor.health_report()}
                elif op == "boundary_pending":
                    payload = {"entries": boundary.pending(),
                               **_load_signals(supervisor)}
                elif op == "boundary_advance":
                    boundary.advance(request[1])
                    payload = {"cursor": boundary.cursor}
                elif op == "repair_probe":
                    msg_id, user, date, text = request[1]
                    probe = parse_message(msg_id, user, date, text)
                    best = supervisor.indexer.best_alignment(probe)
                    payload = {"best": best}
                elif op == "apply_repair":
                    payload = _handle_apply_repair(
                        supervisor, journal, request[1], request[2],
                        request[3], request[4])
                elif op == "checkpoint":
                    supervisor.journaled.checkpoint()
                    # The snapshot now holds the repaired ledger, so the
                    # journal can truncate; the boundary log sheds its
                    # reconciled prefix.
                    journal.compact()
                    boundary.compact()
                    payload = {}
                elif op == "close":
                    closing = True
                    supervisor.close()
                    boundary.close()
                    journal.close()
                    payload = {}
                else:
                    raise ValueError(f"unknown worker op {op!r}")
            except Exception as exc:  # reply, never die mid-protocol
                try:
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
                except (BrokenPipeError, OSError):
                    break
                if closing:
                    break
                continue
            try:
                conn.send(("ok", payload))
            except (BrokenPipeError, OSError):
                break
            if closing:
                break
    finally:
        if not closing:
            # Coordinator vanished (or crashed): flush what we have so
            # the next open recovers everything acknowledged so far.
            try:
                supervisor.close()
            except Exception:
                pass
            for log in (boundary, journal):
                try:
                    log.close()
                except Exception:
                    pass
        if profiler is not None:
            profiler.stop()
            try:
                assert options.profile_dir is not None
                profiler.write_collapsed(
                    Path(options.profile_dir)
                    / f"profile-shard-{shard_id:02d}.folded")
            except OSError:  # pragma: no cover - disk full etc.
                pass
        try:
            conn.close()
        except OSError:
            pass
