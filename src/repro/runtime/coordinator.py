"""The coordinator: shard-per-process serving behind one object.

:class:`ShardedRuntime` spawns one :func:`~repro.runtime.worker.
worker_main` process per shard, routes messages onto them with the same
deterministic routers as the in-process
:class:`~repro.core.sharding.ShardedIndexer` (``"hash"`` /
``"cooccurrence"``), and scatter-gathers queries with
``search_within``-style deadline budgets.

Three mechanisms carry the operational weight:

* **pipelining** — ingest acknowledgments are collected lazily, up to
  ``max_inflight`` outstanding batches per worker, so all shards chew
  their sub-batches concurrently instead of round-tripping one batch at
  a time;
* **fleet backpressure** — every ingest ACK reports the worker's
  admission-backlog fill; a
  :class:`~repro.reliability.overload.FleetBackpressure` gate stops
  pipelining (and actively drains the hottest shard's backlog) while any
  shard is past its high watermark;
* **supervision** — a dead worker (crash, SIGKILL) is detected on the
  next send/receive, counted, and restarted on the same shard directory,
  where :meth:`ResilientIndexer.open` replays the WAL tail.  Only
  *unacknowledged* in-flight batches can be lost (they are counted, not
  silently dropped); every acknowledged result was fsynced by the worker
  before the ACK, so acknowledged edges always survive — the property
  ``tests/runtime/test_runtime.py`` kills workers to verify.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator

from repro.core.config import IndexerConfig
from repro.core.engine import IngestResult, MemorySnapshot
from repro.core.errors import ConfigurationError, StorageError
from repro.core.message import Message
from repro.core.sharding import make_router
from repro.obs.perf import StackSampler
from repro.obs.tracing import Trace, Tracer
from repro.query.bundle_search import BundleHit, SearchOutcome
from repro.reliability.overload import FleetBackpressure, OverloadConfig
from repro.runtime.worker import WorkerOptions, worker_main

__all__ = ["ShardedRuntime", "RuntimeStats", "WorkerCrash"]


class WorkerCrash(StorageError):
    """A worker process died while the coordinator was talking to it."""


@dataclass(slots=True)
class RuntimeStats:
    """What the coordinator did on behalf of the fleet.

    ``route_seconds`` / ``ack_wait_seconds`` decompose the
    coordinator's share of ingest wall time — routing decisions versus
    blocking on worker acknowledgments — so the fleet-of-one overhead
    the parallel bench shows (fleet1 < 1x single-process) is a measured
    quantity, not a mystery.  ``ack_wait_seconds`` itself decomposes
    further: every ACK carries the worker's monotonic receive/done
    stamps, splitting each batch's round trip into
    ``queue_wait_seconds`` (dispatch → worker pickup: pipe transfer
    plus time spent behind earlier pipelined batches) and
    ``service_seconds`` (worker pickup → durable, fsync included).
    Blocking time in excess of those two is pipelining overlap the
    coordinator spent usefully elsewhere.  The ``repair_*`` counters
    account the asynchronous reconciliation passes.
    """

    batches_sent: int = 0
    messages_sent: int = 0
    messages_indexed: int = 0
    restarts: int = 0
    lost_batches: int = 0
    lost_messages: int = 0
    gate_waits: int = 0
    search_scatters: int = 0
    shards_skipped_by_budget: int = 0
    boundary_hints: int = 0
    repair_rounds: int = 0
    repair_probes: int = 0
    repair_edges: int = 0
    repair_backoffs: int = 0
    route_seconds: float = 0.0
    ack_wait_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    service_seconds: float = 0.0

    _INT_FIELDS = ("batches_sent", "messages_sent", "messages_indexed",
                   "restarts", "lost_batches", "lost_messages",
                   "gate_waits", "search_scatters",
                   "shards_skipped_by_budget", "boundary_hints",
                   "repair_rounds", "repair_probes", "repair_edges",
                   "repair_backoffs")

    _FLOAT_FIELDS = ("route_seconds", "ack_wait_seconds",
                     "queue_wait_seconds", "service_seconds")

    def as_dict(self) -> dict[str, "int | float"]:
        out: dict[str, "int | float"] = {
            name: int(getattr(self, name)) for name in self._INT_FIELDS}
        for name in self._FLOAT_FIELDS:
            out[name] = round(float(getattr(self, name)), 6)
        return out


@dataclass(slots=True)
class _PendingBatch:
    """One unacknowledged ingest batch awaiting its ACK."""

    count: int
    #: ``time.monotonic()`` at dispatch — the worker's receive stamp
    #: minus this is the batch's queue wait (same clock, same host).
    enqueue: float
    #: Sampled traces riding this batch:
    #: ``(position, trace, route_started, routed)`` with monotonic
    #: stamps; stitched into fleet traces when the ACK arrives.
    traces: "list[tuple[int, Trace, float, float]]" = field(
        default_factory=list)


@dataclass(slots=True)
class _Worker:
    """Coordinator-side handle of one shard process."""

    shard: int
    process: Any
    conn: Any
    #: Unacknowledged ingest/drain batches, oldest first.  Non-ingest
    #: requests are never pipelined.
    pending: "deque[_PendingBatch]" = field(default_factory=deque)

    @property
    def inflight(self) -> int:
        return len(self.pending)


class ShardedRuntime:
    """N worker processes behind one routed ingest / search surface.

    Parameters
    ----------
    root:
        Fleet directory; shard ``i`` lives in ``root/shard-0i/`` with
        its own WAL, snapshot, spill store and dead-letter queue.
        Opening an existing root recovers every shard.
    workers:
        Shard/process count (fixed per root: routing is a function of
        the count, so reopening with a different count would strand
        data — enforced via a marker file).
    config / router:
        As :class:`~repro.core.sharding.ShardedIndexer`.
    overload:
        Optional per-worker :class:`OverloadConfig`; enables local
        admission control in each worker plus the coordinator's fleet
        backpressure gate.
    guard:
        Optional per-worker ingest guard (a
        :class:`~repro.reliability.guard.GuardConfig`, or ``True`` for
        defaults); each worker screens its own shard's arrivals and
        keeps ``quarantine.log`` / ``folds.log`` in its shard root,
        fsynced inside the same pre-ACK durability barrier as the WAL.
    max_inflight:
        Outstanding un-ACKed batches allowed per worker before the
        coordinator blocks on that worker's oldest ACK.
    start_method:
        ``multiprocessing`` start method (``None`` = platform default).
    trace_sample / trace_seed / trace_sink:
        Fleet-wide trace propagation.  ``trace_sample > 0`` samples
        that fraction of ingests at *route* time (seeded, like the
        engine tracer); the decision ships to the owning worker as a
        :class:`~repro.obs.tracing.TraceContext` inside the ingest RPC
        envelope, and the worker's hop timestamps come back on the ACK
        to be stitched — route → queue wait → guard screen → engine
        stages → WAL fsync → ACK — into one end-to-end trace per
        message, exported to ``trace_sink`` as JSONL (``repro trace``
        renders them).  All hop boundaries are ``time.monotonic()``
        stamps (one clock across processes on this host), so the hop
        durations of a trace sum to its end-to-end latency by
        construction.
    profile_dir / profile_hz:
        When set, every worker runs a continuous
        :class:`~repro.obs.perf.StackSampler` (and the coordinator
        samples the thread that constructed it), writing
        ``profile-shard-NN.folded`` / ``profile-coordinator.folded``
        collapsed-stack flamegraph files into ``profile_dir`` on close.
    """

    _MARKER = "runtime.json"

    def __init__(self, root: "str | Path", workers: int, *,
                 config: IndexerConfig | None = None,
                 router: str = "hash",
                 overload: OverloadConfig | None = None,
                 snapshot_every: int = 50_000,
                 sync_every: int = 256,
                 store: bool = True,
                 guard: Any = None,
                 max_inflight: int = 4,
                 backpressure: FleetBackpressure | None = None,
                 start_method: str | None = None,
                 auto_restart: bool = True,
                 trace_sample: float = 0.0,
                 trace_seed: int = 0,
                 trace_sink: "str | Path | None" = None,
                 trace_keep: int = 256,
                 profile_dir: "str | Path | None" = None,
                 profile_hz: int = 97,
                 anatomy: bool = False) -> None:
        if workers <= 0:
            raise ConfigurationError(
                f"workers must be positive, got {workers}")
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.router = router
        self._router = make_router(router, workers)
        self.tracer: "Tracer | None" = (
            Tracer(sample_rate=trace_sample, seed=trace_seed,
                   sink=trace_sink, keep=trace_keep)
            if trace_sample > 0.0 else None)
        self._profile_dir = Path(profile_dir) if profile_dir else None
        self._profiler: "StackSampler | None" = None
        if self._profile_dir is not None:
            self._profiler = StackSampler(hz=profile_hz).start()
        self._options = WorkerOptions(
            config=config, overload=overload,
            snapshot_every=snapshot_every, sync_every=sync_every,
            store=store, guard=guard,
            trace=self.tracer is not None,
            profile_dir=(str(self._profile_dir)
                         if self._profile_dir is not None else None),
            profile_hz=profile_hz,
            anatomy=anatomy)
        self.max_inflight = max_inflight
        self.auto_restart = auto_restart
        self.stats = RuntimeStats()
        if backpressure is None and overload is not None:
            backpressure = FleetBackpressure(
                high_watermark=overload.queue_high_fraction,
                low_watermark=overload.queue_high_fraction / 2)
        self.gate = backpressure
        self._ctx = multiprocessing.get_context(start_method)
        self._check_marker()
        self._workers: list[_Worker] = [
            self._spawn(shard) for shard in range(workers)]
        self._closed = False
        self._last_tagged: list[tuple[int, BundleHit]] = []

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------

    def _check_marker(self) -> None:
        import json

        marker = self.root / self._MARKER
        if marker.exists():
            recorded = json.loads(marker.read_text())
            if int(recorded.get("workers", -1)) != self.workers:
                raise ConfigurationError(
                    f"runtime root {self.root} was created with "
                    f"{recorded.get('workers')} workers; reopening with "
                    f"{self.workers} would strand routed data")
            if recorded.get("router") != self.router:
                raise ConfigurationError(
                    f"runtime root {self.root} was created with the "
                    f"{recorded.get('router')!r} router, not "
                    f"{self.router!r}")
        else:
            marker.write_text(json.dumps(
                {"workers": self.workers, "router": self.router}))

    def _shard_dir(self, shard: int) -> Path:
        return self.root / f"shard-{shard:02d}"

    def _spawn(self, shard: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(shard, str(self._shard_dir(shard)), self._options,
                  child_conn),
            name=f"repro-shard-{shard:02d}",
            daemon=True)
        process.start()
        child_conn.close()
        return _Worker(shard=shard, process=process, conn=parent_conn)

    def _restart(self, worker: _Worker) -> None:
        """Replace a dead worker; its WAL replay restores durable state."""
        self.stats.restarts += 1
        self.stats.lost_batches += worker.inflight
        self.stats.lost_messages += sum(
            batch.count for batch in worker.pending)
        if self.tracer is not None:
            # Finish any traces riding the lost batches with an explicit
            # dead hop, so a stitched fleet trace never silently
            # truncates at a crash.
            now = time.monotonic()
            for batch in worker.pending:
                for _, trace, t0, routed in batch.traces:
                    trace.span("route", 0.0, max(0.0, routed - t0),
                               kind="hop", shard=worker.shard)
                    trace.span("coordinator_buffer",
                               max(0.0, routed - t0),
                               max(0.0, batch.enqueue - routed),
                               kind="hop")
                    trace.span("lost", max(0.0, batch.enqueue - t0),
                               max(0.0, now - batch.enqueue),
                               kind="hop", dead=True, shard=worker.shard)
                    self.tracer.finish(
                        trace, duration=now - t0, msg_id=trace.trace_id,
                        shard=worker.shard, outcome="lost", dead=True)
        worker.pending.clear()
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():  # pragma: no cover - defensive
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        fresh = self._spawn(worker.shard)
        worker.process = fresh.process
        worker.conn = fresh.conn

    # ------------------------------------------------------------------
    # Protocol plumbing
    # ------------------------------------------------------------------

    def _request(self, worker: _Worker,
                 request: "tuple[Any, ...]") -> dict[str, Any]:
        """Blocking request → reply on an idle channel (not pipelined)."""
        self._drain_worker(worker)
        self._send(worker, request)
        return self._recv(worker)

    def _send(self, worker: _Worker,
              request: "tuple[Any, ...]") -> None:
        try:
            worker.conn.send(request)
        except (BrokenPipeError, OSError) as exc:
            self._crash(worker, f"send failed: {exc}")

    def _recv(self, worker: _Worker, timeout: float = 30.0,
              ) -> dict[str, Any]:
        """Receive one reply, detecting a dead worker while waiting."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if worker.conn.poll(0.05):
                    break
            except (BrokenPipeError, OSError) as exc:
                self._crash(worker, f"poll failed: {exc}")
            if not worker.process.is_alive():
                self._crash(worker, "process died")
            if time.monotonic() >= deadline:
                self._crash(worker, f"no reply within {timeout}s")
        try:
            status, payload = worker.conn.recv()
        except (EOFError, OSError) as exc:
            self._crash(worker, f"recv failed: {exc}")
        if status != "ok":
            raise StorageError(
                f"shard {worker.shard} request failed: {payload}")
        return payload

    def _crash(self, worker: _Worker, reason: str) -> None:
        """Handle a dead worker: restart (if configured) and raise."""
        shard = worker.shard
        if self.auto_restart and not self._closed:
            self._restart(worker)
        raise WorkerCrash(f"shard {shard} worker crashed ({reason})")

    def _note_ack(self, worker: _Worker, payload: dict[str, Any]) -> int:
        """Account one ingest/drain ACK; returns its indexed count."""
        indexed = int(payload.get("indexed", 0))
        self.stats.messages_indexed += indexed
        if self.gate is not None and "queue_fraction" in payload:
            self.gate.note(worker.shard,
                           float(payload["queue_fraction"]))
        return indexed

    def _collect_one(self, worker: _Worker) -> dict[str, Any]:
        """Receive and account the oldest outstanding ingest ACK."""
        started = time.perf_counter()
        try:
            payload = self._recv(worker)
        except WorkerCrash:
            # _restart already accounted the lost in-flight batches.
            self.stats.ack_wait_seconds += time.perf_counter() - started
            return {"indexed": 0, "results": None, "lost": True}
        self.stats.ack_wait_seconds += time.perf_counter() - started
        acked = time.monotonic()
        batch = worker.pending.popleft()
        self._note_ack(worker, payload)
        self.stats.queue_wait_seconds += max(
            0.0, float(payload.get("queue_wait", 0.0)))
        self.stats.service_seconds += max(
            0.0, float(payload.get("service", 0.0)))
        if batch.traces:
            self._stitch(worker.shard, batch, payload, acked)
        return payload

    def _stitch(self, shard: int, batch: _PendingBatch,
                payload: dict[str, Any], acked: float) -> None:
        """Merge one ACK's worker hop records into stitched traces.

        Every hop boundary is a ``time.monotonic()`` stamp; consecutive
        hops share their boundary, so the hop durations of each trace
        sum to its ``duration`` (= ACK receipt minus route start)
        exactly — the property ``tests/runtime/test_fleet_trace.py``
        pins against the 5% acceptance bar.
        """
        assert self.tracer is not None
        recv = float(payload.get("recv", batch.enqueue))
        done = float(payload.get("done", recv))
        hops: dict[int, dict[str, Any]] = {
            int(hop["trace_id"]): hop
            for hop in payload.get("hops") or ()}
        for _, trace, t0, routed in batch.traces:
            def hop_span(name: str, start: float, end: float,
                         **tags: object) -> None:
                trace.span(name, max(0.0, start - t0),
                           max(0.0, end - start), kind="hop", **tags)

            hop_span("route", t0, routed, shard=shard)
            hop_span("coordinator_buffer", routed, batch.enqueue)
            hop_span("queue_wait", batch.enqueue, recv)
            record = hops.get(trace.trace_id)
            outcome = "lost"
            bundle_id: "int | None" = None
            if record is not None:
                start = float(record["start"])
                end = float(record["end"])
                hop_span("batch_wait", recv, start)
                hop_span("service", start, end,
                         span_id=str(record["span_id"]), shard=shard)
                screen = float(record.get("screen") or 0.0)
                offset = max(0.0, start - t0)
                if screen > 0.0:
                    trace.span("guard_screen", offset, screen,
                               kind="stage")
                for span in record.get("spans") or ():
                    trace.span(str(span["name"]),
                               offset + screen + float(span["start"]),
                               float(span["duration"]), kind="stage",
                               **dict(span.get("tags") or {}))
                hop_span("worker_drain", end, done,
                         fsync=round(max(0.0, done - end), 6))
                outcome = str(record.get("outcome") or "unknown")
                raw_bundle = record.get("bundle_id")
                bundle_id = (int(raw_bundle)
                             if raw_bundle is not None else None)
            else:
                # The worker did not report this message (shed before
                # the engine, or an older protocol): the whole worker
                # residency is one opaque service hop.
                hop_span("service", recv, done, shard=shard)
                outcome = "unreported"
            hop_span("ack_transit", done, acked)
            self.tracer.finish(
                trace, duration=max(0.0, acked - t0),
                msg_id=trace.trace_id, shard=shard, outcome=outcome,
                **({"bundle_id": bundle_id}
                   if bundle_id is not None else {}))

    def _drain_worker(self, worker: _Worker) -> None:
        while worker.pending:
            self._collect_one(worker)

    def flush(self) -> None:
        """Collect every outstanding ingest acknowledgment."""
        for worker in self._workers:
            self._drain_worker(worker)

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def route(self, message: Message) -> int:
        """The shard ``message`` belongs to (mutates co-occurrence state)."""
        return self._router.route(message)

    def _route_hinted(self, message: Message) -> "tuple[int, tuple[int, ...]]":
        """Route one message, timing it and accounting boundary hints."""
        started = time.perf_counter()
        decision = self._router.route_with_hint(message)
        self.stats.route_seconds += time.perf_counter() - started
        if decision.boundary:
            self.stats.boundary_hints += 1
        return decision.shard, decision.peers

    def _dispatch(self, worker: _Worker, batch: list[Message],
                  count_only: bool,
                  hints: "list[tuple[int, tuple[int, ...]]] | None" = None,
                  traces: "list[tuple[int, Trace, float, float]] | None"
                  = None) -> None:
        """Pipeline one routed sub-batch, honoring inflight + the gate."""
        while worker.inflight >= self.max_inflight:
            self._collect_one(worker)
        if self.gate is not None and self.gate.engaged:
            self._relieve_pressure()
        enqueue = time.monotonic()
        extras: dict[str, Any] = {"enqueue": enqueue}
        if traces:
            # The propagated sampling decisions: (position, trace id,
            # parent span).  The worker honors them via Tracer.force —
            # its own RNG never rolls for fleet-traced messages.
            extras["traced"] = [
                (position, trace.trace_id, f"coord.route.{trace.trace_id}")
                for position, trace, _, _ in traces]
        self._send(worker,
                   ("ingest", batch, count_only, hints or None, extras))
        worker.pending.append(_PendingBatch(
            count=len(batch), enqueue=enqueue, traces=traces or []))
        self.stats.batches_sent += 1
        self.stats.messages_sent += len(batch)

    def _relieve_pressure(self) -> None:
        """Hold ingest while the fleet gate is engaged.

        Drains outstanding ACKs (their load feedback may already clear
        the gate) and then actively drains the hottest shard's
        admission backlog until every shard is back under the low
        watermark.
        """
        assert self.gate is not None
        self.gate.note_gated()
        self.stats.gate_waits += 1
        for worker in self._workers:
            if not self.gate.engaged:
                return
            self._drain_worker(worker)
        stuck_rounds = 0
        while self.gate.engaged and stuck_rounds < 2 * self.workers:
            shard, _ = self.gate.worst
            worker = self._workers[shard]
            try:
                payload = self._request(worker, ("drain",))
            except WorkerCrash:
                stuck_rounds += 1
                continue
            indexed = int(payload.get("indexed", 0))
            self.stats.messages_indexed += indexed
            self.gate.note(shard, float(payload.get("queue_fraction",
                                                    0.0)))
            stuck_rounds = stuck_rounds + 1 if indexed == 0 else 0

    def ingest(self, message: Message) -> "IngestResult | None":
        """Route and ingest one message, waiting for its durable ACK."""
        results = self.ingest_batch([message])
        assert isinstance(results, list)
        return results[0] if results else None

    def ingest_batch(self, messages: Iterable[Message], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Route a batch across the fleet; every shard works in parallel.

        Blocks until all of this batch's ACKs arrive (each durable by
        the workers' fsync-before-ACK contract).  Returns results in
        input order (shed/deferred messages omitted), or the indexed
        count with ``count_only=True``.
        """
        batch = list(messages)
        per_shard: list[list[Message]] = [[] for _ in range(self.workers)]
        hints: list[list[tuple[int, tuple[int, ...]]]] = [
            [] for _ in range(self.workers)]
        traces: list[list[tuple[int, Trace, float, float]]] = [
            [] for _ in range(self.workers)]
        order: list[tuple[int, int]] = []
        for message in batch:
            t0 = time.monotonic() if self.tracer is not None else 0.0
            shard, peers = self._route_hinted(message)
            position = len(per_shard[shard])
            order.append((shard, position))
            if peers:
                hints[shard].append((position, peers))
            per_shard[shard].append(message)
            if self.tracer is not None:
                trace = self.tracer.begin(message.msg_id)
                if trace is not None:
                    traces[shard].append(
                        (position, trace, t0, time.monotonic()))
        indexed_before = self.stats.messages_indexed
        for shard, sub in enumerate(per_shard):
            if sub:
                self._dispatch(self._workers[shard], sub, count_only,
                               hints[shard], traces[shard])
        acks: dict[int, dict[str, Any]] = {}
        for shard, sub in enumerate(per_shard):
            if not sub:
                continue
            worker = self._workers[shard]
            payload = {"indexed": 0, "results": None}
            while worker.pending:
                payload = self._collect_one(worker)
            acks[shard] = payload
        if count_only:
            return self.stats.messages_indexed - indexed_before
        results: list[IngestResult] = []
        for shard, position in order:
            shard_results = acks.get(shard, {}).get("results")
            if shard_results is None:
                continue  # batch lost to a crash before its ACK
            result = shard_results[position]
            if result is not None:
                results.append(result)
        return results

    def ingest_stream(self, messages: Iterable[Message], *,
                      batch_size: int = 512) -> int:
        """Pipelined bulk ingest; returns the indexed count.

        Routes into per-shard buffers and ships each as it fills, so up
        to ``max_inflight`` batches per worker are in flight at once —
        the fleet's parallel hot path (``benchmarks/bench_parallel.py``
        measures exactly this entry point).
        """
        indexed_before = self.stats.messages_indexed
        buffers: list[list[Message]] = [[] for _ in range(self.workers)]
        hints: list[list[tuple[int, tuple[int, ...]]]] = [
            [] for _ in range(self.workers)]
        traces: list[list[tuple[int, Trace, float, float]]] = [
            [] for _ in range(self.workers)]
        for message in messages:
            t0 = time.monotonic() if self.tracer is not None else 0.0
            shard, peers = self._route_hinted(message)
            position = len(buffers[shard])
            if peers:
                hints[shard].append((position, peers))
            buffers[shard].append(message)
            if self.tracer is not None:
                trace = self.tracer.begin(message.msg_id)
                if trace is not None:
                    traces[shard].append(
                        (position, trace, t0, time.monotonic()))
            if len(buffers[shard]) >= batch_size:
                self._dispatch(self._workers[shard], buffers[shard], True,
                               hints[shard], traces[shard])
                buffers[shard] = []
                hints[shard] = []
                traces[shard] = []
        for shard, buffer in enumerate(buffers):
            if buffer:
                self._dispatch(self._workers[shard], buffer, True,
                               hints[shard], traces[shard])
        self.flush()
        return self.stats.messages_indexed - indexed_before

    def drain_backlogs(self) -> int:
        """Drain every worker's admission backlog; returns indexed count."""
        indexed = 0
        for worker in self._workers:
            try:
                payload = self._request(worker, ("drain",))
            except WorkerCrash:
                continue
            indexed += self._note_ack(worker, payload)
        return indexed

    # ------------------------------------------------------------------
    # Asynchronous cross-shard edge repair (:mod:`repro.runtime.repair`)
    # ------------------------------------------------------------------

    def repair_pass(self, *, fault_hook: "Callable[[str, int], None] | None"
                    = None) -> dict[str, int]:
        """One reconciliation round over every shard's boundary backlog.

        Per shard: drain the pending boundary entries, probe each
        entry's hinted peer shards with the engine's pure Algorithm 1+2
        scoring (``repair_probe``), and install a peer's parent through
        the idempotent ``apply_repair`` RPC only when it *strictly
        beats* the owner's ingest-time alignment.  The shard's durable
        cursor advances only after the whole round succeeded, so a
        crash mid-round re-examines the tail — every step is idempotent.

        Degradation-aware: a round is skipped (and counted as a
        backoff) while the fleet backpressure gate is engaged or the
        shard reports overload rung >= 2 (REDUCED or worse) — repair
        never competes with a struggling ingest path.

        ``fault_hook(stage, shard)`` fires at the ``"drained"``,
        ``"scored"`` and ``"applied"`` stages of each shard's round —
        the crash-injection seam the chaos tests SIGKILL workers from.

        Returns a report: ``pending`` entries seen, ``probed`` peer
        probes, ``repaired`` edges installed, ``advanced`` entries
        reconciled, ``backoffs`` shards skipped.
        """
        report = {"pending": 0, "probed": 0, "repaired": 0,
                  "advanced": 0, "backoffs": 0}
        self.stats.repair_rounds += 1
        hook = fault_hook if fault_hook is not None else (
            lambda stage, shard: None)
        for worker in self._workers:
            shard = worker.shard
            if self.gate is not None and self.gate.engaged:
                self.stats.repair_backoffs += 1
                report["backoffs"] += 1
                continue
            try:
                payload = self._request(worker, ("boundary_pending",))
            except WorkerCrash:
                continue
            if int(payload.get("rung", 0)) >= 2:
                self.stats.repair_backoffs += 1
                report["backoffs"] += 1
                continue
            entries = payload["entries"]
            if not entries:
                continue
            report["pending"] += len(entries)
            hook("drained", shard)
            repairs: list[tuple[Any, int, float]] = []
            abandoned = False
            for entry in entries:
                best_key: "tuple[float, float, int] | None" = None
                probe_fields = (entry.msg_id, entry.user, entry.date,
                                entry.text)
                for peer in entry.peers:
                    if peer == shard or not 0 <= peer < self.workers:
                        continue
                    try:
                        reply = self._request(
                            self._workers[peer],
                            ("repair_probe", probe_fields))
                    except WorkerCrash:
                        abandoned = True
                        break
                    report["probed"] += 1
                    self.stats.repair_probes += 1
                    best = reply.get("best")
                    if best is None:
                        continue
                    key = (float(best[0]), float(best[1]), -int(best[2]))
                    if best_key is None or key > best_key:
                        best_key = key
                if abandoned:
                    break
                # Strict-beat: the peer's Eq. 5 alignment must exceed
                # the owner's ingest-time score (ties keep the owner's
                # edge — post-hoc re-scoring is measurably skewed, so
                # only clear wins move edges).
                if best_key is not None and (entry.dst is None
                                             or best_key[0] > entry.score):
                    dst = -best_key[2]
                    if dst != entry.dst:
                        repairs.append((entry, dst, best_key[0]))
            if abandoned:
                continue
            hook("scored", shard)
            applied_all = True
            for entry, dst, score in repairs:
                try:
                    reply = self._request(
                        worker, ("apply_repair", entry.msg_id,
                                 entry.dst, dst, score))
                except WorkerCrash:
                    applied_all = False
                    break
                if reply.get("applied"):
                    report["repaired"] += 1
                    self.stats.repair_edges += 1
            if not applied_all:
                continue
            hook("applied", shard)
            try:
                self._request(worker,
                              ("boundary_advance", entries[-1].seq))
            except WorkerCrash:
                continue
            report["advanced"] += len(entries)
        return report

    def repair_until_clean(self, *, max_rounds: int = 8,
                           fault_hook: "Callable[[str, int], None] | None"
                           = None) -> dict[str, int]:
        """Run repair passes until every boundary backlog drains.

        Stops early when a pass finds nothing pending and nothing
        backed off; bounded by ``max_rounds`` so an overloaded fleet
        (perpetual backoffs) cannot spin here.  Returns the accumulated
        report of all passes.
        """
        totals = {"pending": 0, "probed": 0, "repaired": 0,
                  "advanced": 0, "backoffs": 0, "rounds": 0}
        for _ in range(max_rounds):
            try:
                report = self.repair_pass(fault_hook=fault_hook)
            except WorkerCrash:
                # The crashed worker restarted; the next round resumes
                # from its durable cursor.
                totals["rounds"] += 1
                continue
            totals["rounds"] += 1
            for name, value in report.items():
                totals[name] += value
            if report["pending"] == 0 and report["backoffs"] == 0:
                break
        return totals

    # ------------------------------------------------------------------
    # Search (scatter-gather with a shared deadline budget)
    # ------------------------------------------------------------------

    def search_within(self, raw_query: str, k: int = 10, *,
                      budget_seconds: "float | None" = None,
                      clock: Callable[[], float] = time.perf_counter,
                      ) -> SearchOutcome:
        """Deadline-bounded scatter-gather over every shard.

        Each shard receives the budget *remaining* at its dispatch (the
        workers enforce their own deadlines), so a slow early shard
        tightens later ones instead of blowing the whole budget.  A
        shard reached after the budget expired is skipped and the merged
        outcome is marked partial; coverage aggregates the per-shard
        candidate accounting.
        """
        started = clock()
        self.stats.search_scatters += 1
        self.flush()
        dispatched: list[_Worker] = []
        partial = False
        for worker in self._workers:
            if budget_seconds is not None:
                remaining = budget_seconds - (clock() - started)
                if remaining <= 0:
                    partial = True
                    self.stats.shards_skipped_by_budget += 1
                    continue
            else:
                remaining = None
            self._send(worker, ("search", raw_query, k, remaining))
            dispatched.append(worker)
        tagged: list[tuple[int, BundleHit]] = []
        candidates_total = 0
        candidates_scored = 0
        for worker in dispatched:
            try:
                payload = self._recv(worker)
            except WorkerCrash:
                partial = True
                continue
            partial = partial or bool(payload["partial"])
            candidates_total += int(payload["candidates_total"])
            candidates_scored += int(payload["candidates_scored"])
            for hit in payload["hits"]:
                tagged.append((worker.shard, hit))
        tagged.sort(key=lambda pair: (-pair[1].score, pair[0],
                                      pair[1].bundle_id))
        self._last_tagged = tagged[:k]
        return SearchOutcome(
            hits=[hit for _, hit in tagged[:k]],
            partial=partial,
            candidates_total=candidates_total,
            candidates_scored=candidates_scored,
            elapsed_seconds=clock() - started,
        )

    def search(self, raw_query: str, k: int = 10) -> list[BundleHit]:
        """Unbudgeted scatter-gather search (merged ranked list)."""
        return self.search_within(raw_query, k).hits

    def search_by_shard(self, raw_query: str, k: int = 10, *,
                        budget_seconds: "float | None" = None,
                        ) -> list[tuple[int, BundleHit]]:
        """Scatter-gather search with hits tagged by owning shard."""
        self.search_within(raw_query, k, budget_seconds=budget_seconds)
        return list(self._last_tagged)

    # ------------------------------------------------------------------
    # Fleet introspection
    # ------------------------------------------------------------------

    def _gather(self, request: "tuple[Any, ...]",
                ) -> "Iterator[tuple[int, dict[str, Any]]]":
        for worker in self._workers:
            try:
                yield worker.shard, self._request(worker, request)
            except WorkerCrash:
                continue

    def shard_stats(self) -> dict[int, dict[str, Any]]:
        """Per-shard stats payloads (unified + supervisor + snapshot)."""
        return {shard: payload
                for shard, payload in self._gather(("stats",))}

    def stats_totals(self) -> dict[str, int]:
        """Unified counters summed across live shards."""
        totals: dict[str, int] = {}
        for _, payload in self._gather(("stats",)):
            for name, value in payload["unified"].items():
                totals[name] = totals.get(name, 0) + int(value)
        totals["shard_count"] = self.workers
        return totals

    def snapshot(self) -> MemorySnapshot:
        """Memory accounting summed across the fleet."""
        parts = [payload["snapshot"]
                 for _, payload in self._gather(("snapshot",))]
        return MemorySnapshot(
            pool_bytes=sum(p.pool_bytes for p in parts),
            index_bytes=sum(p.index_bytes for p in parts),
            message_count=sum(p.message_count for p in parts),
            bundle_count=sum(p.bundle_count for p in parts),
        )

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Union of every live shard's acknowledged edge ledger."""
        pairs: set[tuple[int, int]] = set()
        for _, payload in self._gather(("edges",)):
            pairs |= payload["edges"]
        return pairs

    def telemetry_dumps(self) -> dict[int, dict[str, Any]]:
        """Every live worker's full registry dump, keyed by shard."""
        return {shard: payload["dump"]
                for shard, payload in self._gather(("telemetry",))}

    def checkpoint(self) -> None:
        """Force a durable snapshot + WAL truncation on every shard."""
        for _ in self._gather(("checkpoint",)):
            pass

    def kill_worker(self, shard: int) -> None:
        """SIGKILL one worker (crash-injection hook for tests/chaos)."""
        self._workers[shard].process.kill()
        self._workers[shard].process.join(timeout=5.0)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Flush, checkpoint and stop every worker; idempotent."""
        if self._closed:
            return
        for worker in self._workers:
            try:
                self._drain_worker(worker)
                self._send(worker, ("close",))
                self._recv(worker)
            except (WorkerCrash, StorageError):
                pass
        self._closed = True
        for worker in self._workers:
            worker.process.join(timeout=10.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        if self.tracer is not None:
            self.tracer.close()
        if self._profiler is not None:
            self._profiler.stop()
            if self._profile_dir is not None:
                self._profiler.write_collapsed(
                    self._profile_dir / "profile-coordinator.folded")
            self._profiler = None

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
