"""Multiprocess sharded serving runtime.

One coordinator process routes messages onto N worker processes — each
a full resilient stack (indexer + WAL + snapshots + spill store +
admission control) in its own directory — and scatter-gathers queries
with deadline budgets.  See :mod:`repro.runtime.coordinator` for the
design contract and :class:`~repro.runtime.client.RuntimeClient` for
the unified :class:`repro.api.Indexer` face.
"""

from repro.runtime.client import RuntimeClient
from repro.runtime.coordinator import (RuntimeStats, ShardedRuntime,
                                       WorkerCrash)
from repro.runtime.repair import (BoundaryEntry, BoundaryLog, RepairEntry,
                                  RepairJournal, RepairScan,
                                  scan_fleet_repair)
from repro.runtime.telemetry import fleet_table, merge_worker_dumps
from repro.runtime.worker import WorkerOptions, build_worker_stack

__all__ = [
    "ShardedRuntime",
    "RuntimeClient",
    "RuntimeStats",
    "WorkerCrash",
    "WorkerOptions",
    "build_worker_stack",
    "merge_worker_dumps",
    "fleet_table",
    "BoundaryEntry",
    "BoundaryLog",
    "RepairEntry",
    "RepairJournal",
    "RepairScan",
    "scan_fleet_repair",
]
