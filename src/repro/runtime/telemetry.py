"""Fleet telemetry: one registry view over every worker's metrics.

Workers are separate processes with separate
:class:`~repro.obs.registry.MetricsRegistry` instances; the coordinator
pulls each worker's full :meth:`~repro.obs.registry.MetricsRegistry.
dump` over the command pipe and folds them into a single registry here.
Every merged series carries a ``shard`` label, and — because
:meth:`merge_dump` also folds an unlabeled aggregate — plain
``registry.value(name)`` reads, the dashboard, ``repro top`` and the
Prometheus exporter all see fleet-wide totals without knowing the
runtime exists.

Aggregate gauges are *sums* across shards, which is right for
capacity-style gauges (memory bytes, queue depths) but meaningless for
mode-style gauges (degradation rung, shard id); read those per-shard via
the ``shard`` label.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = ["merge_worker_dumps", "fleet_table"]

#: Gauges whose values are modes / identities, not capacities — summing
#: them across shards is meaningless, so the aggregate series is skipped.
_MODE_GAUGES = frozenset({
    "repro_shard_id",
    "repro_overload_rung",
    "repro_health_state",
    # A drift *ratio* per shard; summing ratios across shards would
    # read as fleet-wide drift and lie.  Per-shard series remain.
    "repro_memory_drift_ratio",
})


def merge_worker_dumps(dumps: "Mapping[int, Mapping[str, Any]]", *,
                       registry: "MetricsRegistry | None" = None,
                       ) -> MetricsRegistry:
    """Fold per-shard registry dumps into one fleet registry.

    ``dumps`` maps shard index → that worker's ``registry.dump()``.
    Each series is merged twice: once under its original labels plus
    ``{"shard": "<i>"}``, and once into the unlabeled aggregate (except
    mode-style gauges, where a sum would lie).  Returns the registry
    (a fresh one sized for the fleet unless ``registry`` is given).
    """
    if registry is None:
        # Fleet view: every family needs shard-count × label-set room.
        registry = MetricsRegistry(
            max_label_sets=max(256, 32 * (len(dumps) + 1)))
    for shard, dump in sorted(dumps.items()):
        filtered = _strip_mode_aggregates(dump)
        registry.merge_dump(filtered["labeled"],
                            labels={"shard": str(shard)},
                            aggregate=False)
        registry.merge_dump(filtered["aggregable"],
                            labels={"shard": str(shard)},
                            aggregate=True)
    _derive_fleet_coverage(registry)
    return registry


def _derive_fleet_coverage(registry: MetricsRegistry) -> None:
    """Fold the repair series into a live edge-coverage gauge.

    ``repro_fleet_edge_coverage`` is the fraction of ingested messages
    whose provenance decision is fully reconciled — i.e. not sitting in
    a boundary backlog awaiting cross-shard repair.  It is a live lower
    bound on the bench's post-hoc edge-coverage number: boundary
    entries are the only messages whose edges can still change, so a
    fleet at 1.0 has converged.  Only derived when the repair series
    exist (workers always export them; an empty dump set yields none).
    """
    if registry.find("repro_repair_pending_boundary") is None:
        return
    messages = registry.value("repro_messages_ingested_total", default=0.0)
    if messages <= 0:
        return
    pending = registry.value("repro_repair_pending_boundary", default=0.0)
    coverage = max(0.0, (messages - pending) / messages)
    registry.gauge(
        "repro_fleet_edge_coverage",
        help="Fraction of ingested messages with fully reconciled "
             "provenance (1.0 = no boundary backlog)").set(coverage)


def _strip_mode_aggregates(dump: "Mapping[str, Any]",
                           ) -> dict[str, dict[str, Any]]:
    """Split a dump into aggregate-safe and label-only families."""
    labeled: list[Any] = []
    aggregable: list[Any] = []
    for family in dump.get("families", []):
        if (family.get("kind") == "gauge"
                and family.get("name") in _MODE_GAUGES):
            labeled.append(family)
        else:
            aggregable.append(family)
    return {"labeled": {"families": labeled},
            "aggregable": {"families": aggregable}}


def _coverage_cell(messages: int, pending: int) -> str:
    """Render live reconciled-edge coverage for the fleet table."""
    if messages <= 0:
        return "-"
    return f"{(messages - pending) / messages:.3f}"


def fleet_table(shard_stats: "Mapping[int, Mapping[str, Any]]",
                ) -> str:
    """Render a per-shard load table for ``repro serve`` / ``repro top``.

    ``shard_stats`` is :meth:`ShardedRuntime.shard_stats` output: shard
    index → the worker's ``stats`` payload (unified counters, supervisor
    counters, memory snapshot, load signals).
    """
    headers = ("shard", "messages", "bundles", "edges", "dead",
               "queue%", "rung", "mem KiB", "qwait s", "svc s",
               "pending", "cov")
    rows: list[tuple[str, ...]] = []
    totals = {"messages": 0, "bundles": 0, "edges": 0, "dead": 0,
              "mem": 0, "pending": 0}
    perf_totals = {"queue_wait_seconds": 0.0, "service_seconds": 0.0}
    for shard in sorted(shard_stats):
        payload = shard_stats[shard]
        unified = payload.get("unified", {})
        sup = payload.get("supervisor", {})
        repair = payload.get("repair", {})
        perf = payload.get("perf", {})
        snapshot = payload.get("snapshot")
        mem = 0
        if snapshot is not None:
            mem = int(getattr(snapshot, "pool_bytes", 0)
                      + getattr(snapshot, "index_bytes", 0))
        row = {
            "messages": int(unified.get("messages_ingested", 0)),
            "bundles": int(unified.get("bundles_created", 0)),
            "edges": int(unified.get("edges_created", 0)),
            "dead": int(sup.get("dead_lettered", 0)),
            "mem": mem,
            "pending": int(repair.get("boundary_pending", 0)),
        }
        for key in totals:
            totals[key] += row[key]
        for key in perf_totals:
            perf_totals[key] += float(perf.get(key, 0.0))
        rows.append((
            str(shard),
            f"{row['messages']:,}",
            f"{row['bundles']:,}",
            f"{row['edges']:,}",
            f"{row['dead']:,}",
            f"{payload.get('queue_fraction', 0.0) * 100:.0f}",
            str(payload.get("rung", 0)),
            f"{row['mem'] // 1024:,}",
            f"{float(perf.get('queue_wait_seconds', 0.0)):.2f}",
            f"{float(perf.get('service_seconds', 0.0)):.2f}",
            f"{row['pending']:,}",
            _coverage_cell(row["messages"], row["pending"]),
        ))
    rows.append((
        "all",
        f"{totals['messages']:,}",
        f"{totals['bundles']:,}",
        f"{totals['edges']:,}",
        f"{totals['dead']:,}",
        "-", "-",
        f"{totals['mem'] // 1024:,}",
        f"{perf_totals['queue_wait_seconds']:.2f}",
        f"{perf_totals['service_seconds']:.2f}",
        f"{totals['pending']:,}",
        _coverage_cell(totals["messages"], totals["pending"]),
    ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    lines.extend("  ".join(cell.rjust(widths[i])
                           for i, cell in enumerate(row))
                 for row in rows)
    return "\n".join(lines)
