"""Fleet telemetry: one registry view over every worker's metrics.

Workers are separate processes with separate
:class:`~repro.obs.registry.MetricsRegistry` instances; the coordinator
pulls each worker's full :meth:`~repro.obs.registry.MetricsRegistry.
dump` over the command pipe and folds them into a single registry here.
Every merged series carries a ``shard`` label, and — because
:meth:`merge_dump` also folds an unlabeled aggregate — plain
``registry.value(name)`` reads, the dashboard, ``repro top`` and the
Prometheus exporter all see fleet-wide totals without knowing the
runtime exists.

Aggregate gauges are *sums* across shards, which is right for
capacity-style gauges (memory bytes, queue depths) but meaningless for
mode-style gauges (degradation rung, shard id); read those per-shard via
the ``shard`` label.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.obs.registry import MetricsRegistry

__all__ = ["merge_worker_dumps", "fleet_table"]

#: Gauges whose values are modes / identities, not capacities — summing
#: them across shards is meaningless, so the aggregate series is skipped.
_MODE_GAUGES = frozenset({
    "repro_shard_id",
    "repro_overload_rung",
    "repro_health_state",
})


def merge_worker_dumps(dumps: "Mapping[int, Mapping[str, Any]]", *,
                       registry: "MetricsRegistry | None" = None,
                       ) -> MetricsRegistry:
    """Fold per-shard registry dumps into one fleet registry.

    ``dumps`` maps shard index → that worker's ``registry.dump()``.
    Each series is merged twice: once under its original labels plus
    ``{"shard": "<i>"}``, and once into the unlabeled aggregate (except
    mode-style gauges, where a sum would lie).  Returns the registry
    (a fresh one sized for the fleet unless ``registry`` is given).
    """
    if registry is None:
        # Fleet view: every family needs shard-count × label-set room.
        registry = MetricsRegistry(
            max_label_sets=max(256, 32 * (len(dumps) + 1)))
    for shard, dump in sorted(dumps.items()):
        filtered = _strip_mode_aggregates(dump)
        registry.merge_dump(filtered["labeled"],
                            labels={"shard": str(shard)},
                            aggregate=False)
        registry.merge_dump(filtered["aggregable"],
                            labels={"shard": str(shard)},
                            aggregate=True)
    return registry


def _strip_mode_aggregates(dump: "Mapping[str, Any]",
                           ) -> dict[str, dict[str, Any]]:
    """Split a dump into aggregate-safe and label-only families."""
    labeled: list[Any] = []
    aggregable: list[Any] = []
    for family in dump.get("families", []):
        if (family.get("kind") == "gauge"
                and family.get("name") in _MODE_GAUGES):
            labeled.append(family)
        else:
            aggregable.append(family)
    return {"labeled": {"families": labeled},
            "aggregable": {"families": aggregable}}


def fleet_table(shard_stats: "Mapping[int, Mapping[str, Any]]",
                ) -> str:
    """Render a per-shard load table for ``repro serve`` / ``repro top``.

    ``shard_stats`` is :meth:`ShardedRuntime.shard_stats` output: shard
    index → the worker's ``stats`` payload (unified counters, supervisor
    counters, memory snapshot, load signals).
    """
    headers = ("shard", "messages", "bundles", "edges", "dead",
               "queue%", "rung", "mem KiB")
    rows: list[tuple[str, ...]] = []
    totals = {"messages": 0, "bundles": 0, "edges": 0, "dead": 0,
              "mem": 0}
    for shard in sorted(shard_stats):
        payload = shard_stats[shard]
        unified = payload.get("unified", {})
        sup = payload.get("supervisor", {})
        snapshot = payload.get("snapshot")
        mem = 0
        if snapshot is not None:
            mem = int(getattr(snapshot, "pool_bytes", 0)
                      + getattr(snapshot, "index_bytes", 0))
        row = {
            "messages": int(unified.get("messages_ingested", 0)),
            "bundles": int(unified.get("bundles_created", 0)),
            "edges": int(unified.get("edges_created", 0)),
            "dead": int(sup.get("dead_lettered", 0)),
            "mem": mem,
        }
        for key in totals:
            totals[key] += row[key]
        rows.append((
            str(shard),
            f"{row['messages']:,}",
            f"{row['bundles']:,}",
            f"{row['edges']:,}",
            f"{row['dead']:,}",
            f"{payload.get('queue_fraction', 0.0) * 100:.0f}",
            str(payload.get("rung", 0)),
            f"{row['mem'] // 1024:,}",
        ))
    rows.append((
        "all",
        f"{totals['messages']:,}",
        f"{totals['bundles']:,}",
        f"{totals['edges']:,}",
        f"{totals['dead']:,}",
        "-", "-",
        f"{totals['mem'] // 1024:,}",
    ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    lines.extend("  ".join(cell.rjust(widths[i])
                           for i, cell in enumerate(row))
                 for row in rows)
    return "\n".join(lines)
