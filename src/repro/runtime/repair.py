"""Crash-safe asynchronous cross-shard edge repair.

Sharding the provenance engine trades edge quality for throughput: a
message routed to shard *i* can only align with parents shard *i* holds,
so a retweet cascade (or a merged indicant component) that straddles a
shard cut silently loses its cross-cut connections.  The co-occurrence
router flags exactly those messages (:meth:`~repro.core.sharding.
CooccurrenceRouter.route_with_hint`); this module makes the flag
durable and actionable:

* :class:`BoundaryLog` — each worker journals every hinted message to a
  per-shard CRC-framed ``boundary.log`` (same framing as the WAL,
  shared via :mod:`repro.reliability.fsio`), fsynced *before* the
  ingest ACK: a hint the coordinator has seen acknowledged is on disk
  and survives SIGKILL exactly like the acknowledged messages
  themselves.  A durable ``boundary.cursor`` watermark records how far
  reconciliation has progressed, so a crashed repair pass simply
  re-examines the un-advanced tail.

* :class:`RepairJournal` — the mutation side.  Every repaired edge is
  appended to ``repairs.log`` and fsynced *before* the engine's ledger
  is touched (WAL discipline); on worker restart the journal replays
  after the WAL, re-applying repairs on top of the re-ingested edges.
  Replay and re-delivery are idempotent because
  :meth:`~repro.core.engine.ProvenanceIndexer.repair_edge` matches on
  the old edge: a repair applied twice, or superseded by a later one,
  is a no-op — SIGKILL at any point leaves no duplicate and no phantom
  edge.

The coordinator drives reconciliation (:meth:`~repro.runtime.
coordinator.ShardedRuntime.repair_pass`): drain a shard's pending
boundary entries, probe the hinted peer shards with the engine's pure
Algorithm 1+2 scoring (:meth:`~repro.core.engine.ProvenanceIndexer.
best_alignment`), and install a peer's parent only when it *strictly
beats* the owner's ingest-time alignment score.  The strictness is
load-bearing and measured: blanket re-scoring against final-state
bundles replaces more correct edges than it fixes (recency terms and
membership drift skew post-hoc scores), while strict-beat repair is
net-positive on both the single-process-parity and ground-truth
metrics (``benchmarks/bench_parallel.py``).

:func:`scan_fleet_repair` gives ``repro doctor`` an offline view of the
same files: boundary entries past the cursor with no corresponding
journaled repair are *orphans* — hints that were acknowledged but never
reconciled.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Iterable

from repro.core.engine import ProvenanceIndexer
from repro.core.message import Message
from repro.reliability.fsio import (check_frame, escape_field, filesystem,
                                    frame_line, unescape_field)

__all__ = ["BoundaryEntry", "BoundaryLog", "RepairEntry", "RepairJournal",
           "RepairScan", "scan_fleet_repair", "BOUNDARY_LOG",
           "BOUNDARY_CURSOR", "REPAIR_JOURNAL"]

BOUNDARY_LOG = "boundary.log"
BOUNDARY_CURSOR = "boundary.cursor"
REPAIR_JOURNAL = "repairs.log"


@dataclass(frozen=True, slots=True)
class BoundaryEntry:
    """One journaled boundary message, with its ingest-time alignment.

    ``dst`` / ``score`` record the edge the *owning* shard found at
    ingest time (``dst is None`` when the message became a bundle root
    locally) — the baseline a peer's candidate must strictly beat.
    ``peers`` are the shard indices the router flagged as possibly
    holding a better parent.
    """

    seq: int
    msg_id: int
    user: str
    date: float
    text: str
    peers: tuple[int, ...]
    dst: "int | None"
    score: float

    def payload(self) -> str:
        peers = ",".join(str(p) for p in self.peers)
        dst = "-" if self.dst is None else str(self.dst)
        return "\t".join((str(self.seq), str(self.msg_id),
                          escape_field(self.user), repr(self.date),
                          peers, dst, repr(self.score),
                          escape_field(self.text)))

    @classmethod
    def parse(cls, payload: str) -> "BoundaryEntry":
        fields = payload.split("\t")
        if len(fields) != 8:
            raise ValueError(f"boundary entry has {len(fields)} fields")
        seq, msg_id, user, date, peers, dst, score, text = fields
        return cls(
            seq=int(seq), msg_id=int(msg_id),
            user=unescape_field(user), date=float(date),
            text=unescape_field(text),
            peers=tuple(int(p) for p in peers.split(",") if p),
            dst=None if dst == "-" else int(dst),
            score=float(score))


@dataclass(frozen=True, slots=True)
class RepairEntry:
    """One journaled edge repair: ``src``'s edge flips ``old -> new``."""

    seq: int
    src: int
    old_dst: "int | None"
    new_dst: int
    score: float

    def payload(self) -> str:
        old = "-" if self.old_dst is None else str(self.old_dst)
        return "\t".join((str(self.seq), str(self.src), old,
                          str(self.new_dst), repr(self.score)))

    @classmethod
    def parse(cls, payload: str) -> "RepairEntry":
        fields = payload.split("\t")
        if len(fields) != 5:
            raise ValueError(f"repair entry has {len(fields)} fields")
        seq, src, old, new, score = fields
        return cls(seq=int(seq), src=int(src),
                   old_dst=None if old == "-" else int(old),
                   new_dst=int(new), score=float(score))


def _read_framed(path: Path, parse: Any) -> list[Any]:
    """All intact records of a framed log; a torn tail ends the read.

    Mirrors the WAL's recovery contract: the only corruption an
    append-then-fsync log can exhibit is a torn final record, so the
    first unverifiable line ends the scan instead of masking real
    corruption mid-file.
    """
    if not path.exists():
        return []
    entries: list[Any] = []
    with filesystem().open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            payload = check_frame(line.rstrip("\n"))
            if payload is None:
                break
            try:
                entries.append(parse(payload))
            except (ValueError, IndexError):
                break
    return entries


def _read_cursor(path: Path) -> int:
    if not path.exists():
        return 0
    try:
        return int(path.read_text(encoding="utf-8").strip() or 0)
    except ValueError:
        return 0


def _write_durable(path: Path, content: str) -> None:
    """Temp-file + fsync + atomic rename (the snapshot pattern)."""
    fs = filesystem()
    temp = path.with_suffix(path.suffix + ".tmp")
    with fs.open(temp, "w", encoding="utf-8") as handle:
        handle.write(content)
        fs.fsync(handle)
    fs.replace(temp, path)


class _FramedAppender:
    """Shared append-side of both logs: framed lines, explicit sync."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle: "IO[Any] | None" = None
        self._dirty = False

    def append(self, payload: str) -> None:
        if self._handle is None:
            self._handle = filesystem().open(self.path, "a",
                                             encoding="utf-8")
        self._handle.write(frame_line(payload) + "\n")
        self._dirty = True

    def sync(self) -> None:
        if self._handle is not None and self._dirty:
            filesystem().fsync(self._handle)
            self._dirty = False

    def close(self) -> None:
        if self._handle is not None:
            try:
                self.sync()
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def reopen(self) -> None:
        self.close()


class BoundaryLog:
    """Durable per-shard journal of boundary (cross-cut) messages.

    Entries carry monotonically increasing sequence numbers; the
    ``boundary.cursor`` watermark (written with the temp-fsync-rename
    pattern) marks the highest *reconciled* seq.  ``pending()`` is the
    un-reconciled tail — exactly what a repair pass (or ``repro doctor
    --fleet``) must still examine.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self._log = _FramedAppender(self.directory / BOUNDARY_LOG)
        self._cursor_path = self.directory / BOUNDARY_CURSOR
        entries = _read_framed(self._log.path, BoundaryEntry.parse)
        self.cursor = _read_cursor(self._cursor_path)
        self._next_seq = (entries[-1].seq + 1) if entries else 1
        self._pending: list[BoundaryEntry] = [
            e for e in entries if e.seq > self.cursor]
        #: Entries ever journaled (survives restart via the log itself).
        self.appended = len(entries)

    def append(self, message: Message, peers: "Iterable[int]",
               dst: "int | None", score: float) -> BoundaryEntry:
        """Journal one boundary message; NOT yet durable — call sync()."""
        entry = BoundaryEntry(
            seq=self._next_seq, msg_id=message.msg_id, user=message.user,
            date=message.date, text=message.text,
            peers=tuple(sorted(set(peers))), dst=dst, score=score)
        self._next_seq += 1
        self._log.append(entry.payload())
        self._pending.append(entry)
        self.appended += 1
        return entry

    def sync(self) -> None:
        """Fsync appended entries — the worker's pre-ACK barrier."""
        self._log.sync()

    def pending(self) -> list[BoundaryEntry]:
        """Entries past the cursor, oldest first (a copy)."""
        return list(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def advance(self, seq: int) -> None:
        """Durably mark everything up to ``seq`` as reconciled."""
        if seq <= self.cursor:
            return
        _write_durable(self._cursor_path, f"{seq}\n")
        self.cursor = seq
        self._pending = [e for e in self._pending if e.seq > seq]

    def compact(self) -> None:
        """Drop reconciled entries from disk (checkpoint-time GC).

        Rewrites the log with only the pending tail (seqs preserved),
        so a long-lived shard's boundary log stays proportional to its
        *un-reconciled* backlog, not its history.
        """
        self._log.close()
        lines = "".join(frame_line(e.payload()) + "\n"
                        for e in self._pending)
        _write_durable(self._log.path, lines)

    def close(self) -> None:
        self._log.close()


class RepairJournal:
    """Durable journal of applied edge repairs, replayed on open.

    The write path is WAL discipline: :meth:`record` appends and fsyncs
    *before* the caller touches the engine ledger, so every applied
    repair is recoverable.  :meth:`replay` runs after the worker's WAL
    replay (which re-creates ingest-time edges) and re-applies the
    journal in order; ``repair_edge``'s match-on-old semantics make
    replay idempotent against snapshots that already contain the
    repaired ledger.
    """

    def __init__(self, directory: "str | Path") -> None:
        self.directory = Path(directory)
        self._log = _FramedAppender(self.directory / REPAIR_JOURNAL)
        self.entries = _read_framed(self._log.path, RepairEntry.parse)
        self._next_seq = (self.entries[-1].seq + 1) if self.entries else 1

    def record(self, src: int, old_dst: "int | None", new_dst: int,
               score: float) -> RepairEntry:
        """Durably journal one repair (append + fsync) before applying."""
        entry = RepairEntry(seq=self._next_seq, src=src, old_dst=old_dst,
                            new_dst=new_dst, score=score)
        self._next_seq += 1
        self._log.append(entry.payload())
        self._log.sync()
        self.entries.append(entry)
        return entry

    def replay(self, engine: ProvenanceIndexer) -> int:
        """Re-apply every journaled repair in order; returns applied count."""
        applied = 0
        for entry in self.entries:
            if engine.repair_edge(entry.src, entry.old_dst,
                                  entry.new_dst):
                applied += 1
        return applied

    def compact(self) -> None:
        """Truncate after a checkpoint: the snapshot holds the ledger."""
        self._log.close()
        _write_durable(self._log.path, "")
        self.entries = []

    def close(self) -> None:
        self._log.close()


@dataclass(frozen=True, slots=True)
class RepairScan:
    """Offline repair health of one shard directory (``repro doctor``)."""

    shard: int
    journaled: int
    cursor: int
    pending: int
    repaired: int
    orphans: tuple[int, ...]

    @property
    def healthy(self) -> bool:
        return self.pending == 0


def scan_fleet_repair(root: "str | Path") -> dict[int, RepairScan]:
    """Offline cross-shard orphan scan over a fleet root.

    An *orphan* is a boundary entry past the reconciliation cursor —
    durably acknowledged evidence that a message's provenance may cross
    a shard cut, with no recorded repair outcome.  A healthy fleet
    drains to zero orphans after ``repro repair`` (or the serve loop's
    ``--repair-interval`` passes).
    """
    root = Path(root)
    scans: dict[int, RepairScan] = {}
    for shard_dir in sorted(root.glob("shard-*")):
        try:
            shard = int(shard_dir.name.split("-")[1])
        except (IndexError, ValueError):
            continue
        entries = _read_framed(shard_dir / BOUNDARY_LOG,
                               BoundaryEntry.parse)
        cursor = _read_cursor(shard_dir / BOUNDARY_CURSOR)
        repairs = _read_framed(shard_dir / REPAIR_JOURNAL,
                               RepairEntry.parse)
        orphans = tuple(e.msg_id for e in entries if e.seq > cursor)
        scans[shard] = RepairScan(
            shard=shard, journaled=len(entries), cursor=cursor,
            pending=len(orphans), repaired=len(repairs),
            orphans=orphans)
    return scans
