"""``repro.obs`` — the unified, zero-dependency telemetry layer.

One :class:`Observability` object travels with each
:class:`~repro.core.engine.ProvenanceIndexer` and bundles the four
telemetry facilities:

* a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges
  and streaming histograms — the *single source of truth* for every
  signal the benchmarks plot, ``repro top`` renders, the Prometheus
  exporter exposes and the degradation ladder acts on;
* an optional :class:`~repro.obs.tracing.Tracer` sampling span traces
  of the ingest hot path;
* an optional :class:`~repro.obs.audit.AuditLog` recording the full
  decision narrative of every ingest (Algorithm 1 candidates, the
  Algorithm 2 allocation, Algorithm 3 evictions, admission refusals)
  for ``repro explain`` / ``repro audit``;
* an optional :class:`~repro.obs.quality.QualityMonitor` computing
  streaming accu/ret/F1 against ground truth (Section VI-B, live)
  as ``repro_quality_*`` gauges with threshold-rule alerting;
* an optional :class:`~repro.obs.perf.StageCell` linking the engine to
  the continuous profiler (:mod:`repro.obs.perf`): a background,
  signal-free stack sampler that bills CPU and allocation deltas to
  the pipeline stage executing at each sample.

``Observability.disabled()`` swaps in no-op metrics for pure-throughput
runs; ``benchmarks/bench_obs_overhead.py`` and
``benchmarks/bench_audit_overhead.py`` pin the cost of each tier.
"""

from __future__ import annotations

from repro.obs.anatomy import (MemoryAccountant, SpaceSavingSketch,
                               WorkloadAnatomy, capacity_report,
                               diff_fingerprints, read_fingerprints)
from repro.obs.audit import (AuditLog, AllocationScore, CandidateScore,
                             DecisionRecord, Explanation, IngestOutcome,
                             RefinementEvent, explain_from_jsonl)
from repro.obs.exporters import (TelemetryFlusher, attach_fingerprints,
                                 render_json, render_prometheus)
from repro.obs.perf import StackSampler, StageCell, render_trace_timeline
from repro.obs.quality import (DEFAULT_QUALITY_RULES, QualityMonitor,
                               QualityRule)
from repro.obs.registry import (COUNT_BUCKETS, DEFAULT_LATENCY_BUCKETS,
                                Counter, Gauge, Histogram, MetricsRegistry,
                                NULL_COUNTER, NULL_HISTOGRAM)
from repro.obs.tracing import Span, Trace, TraceContext, Tracer

__all__ = [
    "AllocationScore",
    "AuditLog",
    "CandidateScore",
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_QUALITY_RULES",
    "DecisionRecord",
    "Explanation",
    "Gauge",
    "Histogram",
    "IngestOutcome",
    "MemoryAccountant",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "Observability",
    "QualityMonitor",
    "QualityRule",
    "RefinementEvent",
    "Span",
    "SpaceSavingSketch",
    "StackSampler",
    "StageCell",
    "TelemetryFlusher",
    "Trace",
    "TraceContext",
    "Tracer",
    "WorkloadAnatomy",
    "attach_fingerprints",
    "capacity_report",
    "diff_fingerprints",
    "explain_from_jsonl",
    "read_fingerprints",
    "render_json",
    "render_prometheus",
    "render_trace_timeline",
]


class Observability:
    """Registry + tracer + audit + quality an engine reports into.

    Parameters
    ----------
    registry:
        An existing registry to share (several engines may report into
        one); a fresh enabled registry is created when omitted.
    tracer:
        ``None`` (the default) disables tracing entirely — the hot path
        then performs a single ``is None`` check per message.
    audit:
        ``None`` (the default) disables decision auditing under the
        same single-``is None``-check contract.
    quality:
        ``None`` (the default) disables streaming quality monitoring;
        may also be attached after construction (the engine reads the
        slot per ingest).
    profile:
        ``None`` (the default) disables stage attribution for the
        continuous profiler; when a :class:`~repro.obs.perf.StageCell`
        is attached the engine publishes the currently executing
        pipeline stage into it (two attribute writes per stage) so the
        background :class:`~repro.obs.perf.StackSampler` can bill each
        stack sample to a stage.
    anatomy:
        ``None`` (the default) disables workload characterization;
        when a :class:`~repro.obs.anatomy.WorkloadAnatomy` is attached
        the engine feeds it each ingested message post-index-update
        (heavy-hitter sketches, postings-shape histograms, workload
        fingerprints) under the same single-``is None``-check contract.
    enabled:
        Convenience for ``registry=MetricsRegistry(enabled=False)``;
        ignored when an explicit registry is passed.
    """

    __slots__ = ("registry", "tracer", "audit", "quality", "profile",
                 "anatomy")

    def __init__(self, *, registry: "MetricsRegistry | None" = None,
                 tracer: "Tracer | None" = None,
                 audit: "AuditLog | None" = None,
                 quality: "QualityMonitor | None" = None,
                 profile: "StageCell | None" = None,
                 anatomy: "WorkloadAnatomy | None" = None,
                 enabled: bool = True) -> None:
        self.registry = (registry if registry is not None
                         else MetricsRegistry(enabled=enabled))
        self.tracer = tracer
        self.audit = audit
        self.quality = quality
        self.profile = profile
        self.anatomy = anatomy

    @classmethod
    def disabled(cls) -> "Observability":
        """Telemetry off: no-op metrics, no tracer, no audit."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        """Whether the metrics registry records anything."""
        return self.registry.enabled
