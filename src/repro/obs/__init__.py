"""``repro.obs`` — the unified, zero-dependency telemetry layer.

One :class:`Observability` object travels with each
:class:`~repro.core.engine.ProvenanceIndexer` and bundles the two
telemetry facilities:

* a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges
  and streaming histograms — the *single source of truth* for every
  signal the benchmarks plot, ``repro top`` renders, the Prometheus
  exporter exposes and the degradation ladder acts on;
* an optional :class:`~repro.obs.tracing.Tracer` sampling span traces
  of the ingest hot path.

``Observability.disabled()`` swaps in no-op metrics for pure-throughput
runs; ``benchmarks/bench_obs_overhead.py`` pins the cost of each tier.
"""

from __future__ import annotations

from repro.obs.exporters import TelemetryFlusher, render_json, render_prometheus
from repro.obs.registry import (DEFAULT_LATENCY_BUCKETS, Counter, Gauge,
                                Histogram, MetricsRegistry, NULL_COUNTER,
                                NULL_HISTOGRAM)
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "Observability",
    "Span",
    "TelemetryFlusher",
    "Trace",
    "Tracer",
    "render_json",
    "render_prometheus",
]


class Observability:
    """Registry + tracer pair an engine (and its wrappers) report into.

    Parameters
    ----------
    registry:
        An existing registry to share (several engines may report into
        one); a fresh enabled registry is created when omitted.
    tracer:
        ``None`` (the default) disables tracing entirely — the hot path
        then performs a single ``is None`` check per message.
    enabled:
        Convenience for ``registry=MetricsRegistry(enabled=False)``;
        ignored when an explicit registry is passed.
    """

    __slots__ = ("registry", "tracer")

    def __init__(self, *, registry: "MetricsRegistry | None" = None,
                 tracer: "Tracer | None" = None,
                 enabled: bool = True) -> None:
        self.registry = (registry if registry is not None
                         else MetricsRegistry(enabled=enabled))
        self.tracer = tracer

    @classmethod
    def disabled(cls) -> "Observability":
        """Telemetry off: no-op metrics, no tracer."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        """Whether the metrics registry records anything."""
        return self.registry.enabled
