"""Exporters: Prometheus text snapshots and a periodic JSONL flusher.

Two consumption styles for the same :class:`~repro.obs.registry.
MetricsRegistry`:

* :func:`render_prometheus` — the text exposition format, suitable for
  writing to a file a node-exporter ``textfile`` collector scrapes, or
  for serving verbatim from any HTTP handler (``repro metrics --format
  prometheus`` prints it);
* :class:`TelemetryFlusher` — appends one JSON line per interval with
  the full registry snapshot, hooked into
  :class:`~repro.reliability.supervisor.ResilientIndexer` so a
  long-lived ingest process leaves a machine-readable flight recorder
  beside its WAL.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Callable, Iterator

from repro.core.errors import ConfigurationError
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus", "render_json", "TelemetryFlusher",
           "attach_fingerprints"]


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _labels_text(labels: "dict[str, str]",
                 extra: "tuple[str, str] | None" = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{key}="{_escape_label(str(value))}"'
                     for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Histograms emit the conventional ``_bucket`` (cumulative, with
    ``le``), ``_sum`` and ``_count`` series.  A disabled registry
    renders to an empty string.
    """
    lines: "list[str]" = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        if family.unit:
            lines.append(f"# UNIT {family.name} {family.unit}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for metric in family.samples():
            if isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(metric.labels, ('le', _format_value(bound)))}"
                        f" {cumulative}")
                labels = _labels_text(metric.labels)
                lines.append(f"{family.name}_sum{labels} "
                             f"{_format_value(metric.sum)}")
                lines.append(f"{family.name}_count{labels} {metric.count}")
            else:
                lines.append(f"{family.name}{_labels_text(metric.labels)} "
                             f"{_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry, *, indent: "int | None" = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


class TelemetryFlusher:
    """Appends periodic registry snapshots to a JSONL flight recorder.

    :meth:`tick` is called once per supervised ingest; every
    ``every_ticks`` calls (or whenever ``min_interval_seconds`` has
    elapsed since the last flush, whichever comes first) one JSON line
    ``{"seq": n, "elapsed": t, "metrics": {...}}`` is appended.
    """

    def __init__(self, registry: MetricsRegistry,
                 path: "str | os.PathLike[str]", *,
                 every_ticks: int = 512,
                 min_interval_seconds: "float | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if every_ticks < 1:
            raise ConfigurationError(
                f"every_ticks must be >= 1, got {every_ticks}")
        self.registry = registry
        self.path = Path(path)
        self.every_ticks = every_ticks
        self.min_interval_seconds = min_interval_seconds
        self.clock = clock
        self.flushes = 0
        self._ticks = 0
        self._handle: "IO[str] | None" = None
        self._started = clock()
        self._last_flush = self._started
        #: Zero-arg callables invoked on every flush — companion sinks
        #: (e.g. the audit log's JSONL buffer) ride the same cadence.
        self.companions: "list[Callable[[], None]]" = []

    def tick(self) -> bool:
        """Count one unit of work; flush when the interval is due."""
        self._ticks += 1
        due = self._ticks >= self.every_ticks
        if not due and self.min_interval_seconds is not None:
            due = (self.clock() - self._last_flush
                   >= self.min_interval_seconds)
        if due:
            self.flush()
        return due

    def flush(self) -> None:
        """Append one snapshot line unconditionally."""
        now = self.clock()
        record = {
            "seq": self.flushes,
            "elapsed": now - self._started,
            "metrics": self.registry.snapshot(),
        }
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.flushes += 1
        self._ticks = 0
        self._last_flush = now
        for companion in self.companions:
            companion()

    def close(self) -> None:
        """Final flush + close (idempotent)."""
        if self._handle is not None or self.flushes == 0:
            self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def attach_companion(self, companion: "Callable[[], None]") -> None:
        """Register one zero-arg sink to run on every flush."""
        self.companions.append(companion)

    @staticmethod
    def read_jsonl(path: "str | os.PathLike[str]") -> "Iterator[dict]":
        """Yield snapshot records back out of a flight-recorder file."""
        source = Path(path)
        if not source.exists():
            return
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue


def attach_fingerprints(flusher: TelemetryFlusher, anatomy,
                        engine, path: "str | os.PathLike[str]", *,
                        guard=None) -> "Callable[[], None]":
    """Ride the flusher's cadence with periodic workload fingerprints.

    Each telemetry flush appends one byte-deterministic fingerprint
    record (see :meth:`~repro.obs.anatomy.WorkloadAnatomy.fingerprint`)
    to ``path`` — the flight recorder gets a workload-shape companion
    stream at zero extra scheduling machinery.  Returns the companion
    so callers can also invoke it directly (e.g. one final fingerprint
    on shutdown).
    """
    target = Path(path)

    def write_one() -> None:
        anatomy.write_fingerprint(target, anatomy.fingerprint(
            engine, guard))

    flusher.attach_companion(write_one)
    return write_one
