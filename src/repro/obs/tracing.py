"""Span-based tracing of the ingest hot path.

One trace per ingested message, walking the pipeline of Algorithm 1:

* ``candidate_selection`` — summary-index fetch + Eq. 1 scoring, tagged
  with the candidate fan-in (bundles hit by at least one posting) and
  how many of them were fully scored;
* ``placement`` — Algorithm 2 inside the chosen bundle, tagged with
  whether a provenance edge was created (and to which parent);
* ``index_update`` — summary-index registration (+ bundle close);
* ``refinement`` — Algorithm 3, present only when the trigger fired.

The trace root carries the message id, the chosen bundle and the
outcome tag: ``new-bundle`` / ``matched`` from the engine, ``shed`` /
``deferred`` recorded by the supervisor for arrivals the admission
controller refused (those traces have no spans — the message never
reached the pipeline).

Sampling is decided per message by a seeded RNG, so a replayed stream
samples the identical message set run after run (the determinism the
trace tests pin).  Finished traces land in a bounded in-memory ring and,
when a ``sink`` path is given, as one JSON line each — the JSONL schema
is documented in ``docs/observability.md``.

Across the multiprocess runtime the sampling decision is made *once*,
on the coordinator, and shipped to the owning worker as a
:class:`TraceContext` inside the ingest RPC envelope.  The worker's
tracer honors the propagated decision through :meth:`Tracer.force`
without consuming any of its own RNG draws, so fleet tracing never
perturbs the deterministic sampling sequence of either side.
"""

from __future__ import annotations

import json
import os
import random
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.core.errors import ConfigurationError

__all__ = ["Span", "Trace", "TraceContext", "Tracer"]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """A propagated sampling decision (coordinator → worker).

    Picklable on purpose: the runtime ships one per traced message
    inside the ingest RPC envelope.  ``trace_id`` is the message id (the
    fleet's trace ids are per-message, like the engine's),
    ``parent_span`` names the upstream hop's span id, and ``sampled``
    carries the coordinator's seeded decision — a worker never re-rolls
    it.
    """

    trace_id: int
    parent_span: str = ""
    sampled: bool = True


@dataclass(slots=True)
class Span:
    """One pipeline stage inside a trace."""

    name: str
    start: float        #: seconds since the trace began
    duration: float     #: stage wall-clock seconds
    tags: "dict[str, object]" = field(default_factory=dict)

    def to_dict(self) -> "dict[str, object]":
        return {"name": self.name, "start": self.start,
                "duration": self.duration, "tags": self.tags}


@dataclass(slots=True)
class Trace:
    """The span tree of one message's trip through the pipeline.

    The trace itself is the root span (``duration`` covers the whole
    ingest); ``spans`` are its children in pipeline order.
    """

    trace_id: int
    tags: "dict[str, object]" = field(default_factory=dict)
    spans: "list[Span]" = field(default_factory=list)
    duration: float = 0.0

    def span(self, name: str, start: float, duration: float,
             **tags: object) -> Span:
        """Append one child span; returns it for further tagging."""
        child = Span(name, start, duration, dict(tags))
        self.spans.append(child)
        return child

    @property
    def outcome(self) -> str:
        """The trace's outcome tag (``""`` until finished)."""
        return str(self.tags.get("outcome", ""))

    def to_dict(self) -> "dict[str, object]":
        return {
            "trace_id": self.trace_id,
            "duration": self.duration,
            "tags": self.tags,
            "spans": [span.to_dict() for span in self.spans],
        }


class Tracer:
    """Samples, collects and exports ingest traces.

    Parameters
    ----------
    sample_rate:
        Probability in [0, 1] that a message is traced.  1.0 traces
        everything (and skips the RNG entirely); 0.0 disables tracing
        while keeping the accounting.
    seed:
        Seed of the sampling RNG — the whole point: decisions depend
        only on (seed, arrival order), never on wall time.
    sink:
        Optional JSONL path; every finished trace is appended as one
        JSON line.  Opened lazily, flushed per line.
    keep:
        Size of the in-memory ring of finished traces (the dashboard
        and the tests read it; 0 keeps nothing).
    """

    def __init__(self, *, sample_rate: float = 1.0, seed: int = 0,
                 sink: "str | os.PathLike[str] | None" = None,
                 keep: int = 256) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if keep < 0:
            raise ConfigurationError(f"keep must be >= 0, got {keep}")
        self.sample_rate = sample_rate
        self.seed = seed
        self.sink_path = Path(sink) if sink is not None else None
        self._handle: "IO[str] | None" = None
        self._rng = random.Random(seed)
        self.finished: "deque[Trace]" = deque(maxlen=keep or 1)
        self._keep = keep
        self.offered = 0
        self.sampled = 0
        self.exported = 0
        #: Propagated decisions awaiting their ``begin`` (trace_id →
        #: TraceContext); empty except between ``force`` and ``begin``.
        self._forced: "dict[int, TraceContext]" = {}

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def begin(self, trace_id: int) -> "Trace | None":
        """Sampling decision for one message; a ``Trace`` when sampled.

        Consumes exactly one RNG draw per call when ``0 < rate < 1``,
        which is what makes the decision sequence deterministic under a
        seed regardless of what the traced code does in between.  A
        decision propagated via :meth:`force` takes precedence and never
        touches the RNG.
        """
        if self._forced:
            context = self._forced.pop(trace_id, None)
            if context is not None:
                self.offered += 1
                if not context.sampled:
                    return None
                self.sampled += 1
                trace = Trace(trace_id)
                if context.parent_span:
                    trace.tags["parent_span"] = context.parent_span
                return trace
        self.offered += 1
        if self.sample_rate <= 0.0:
            return None
        if (self.sample_rate < 1.0
                and self._rng.random() >= self.sample_rate):
            return None
        self.sampled += 1
        return Trace(trace_id)

    def force(self, context: TraceContext) -> None:
        """Register a propagated decision for ``context.trace_id``.

        The next :meth:`begin` (or :meth:`event`) for that id honors the
        coordinator's decision instead of rolling the local RNG — the
        fleet makes each sampling decision exactly once, at route time.
        Unclaimed entries are rare (a message shed before reaching the
        engine) and harmless: :meth:`unforce` lets the caller retract.
        """
        self._forced[context.trace_id] = context

    def unforce(self, trace_id: int) -> None:
        """Retract a :meth:`force` whose message never reached ``begin``."""
        self._forced.pop(trace_id, None)

    def finish(self, trace: Trace, *, duration: float = 0.0,
               **tags: object) -> None:
        """Seal a trace: merge tags, ring-buffer it, export it."""
        trace.duration = duration
        trace.tags.update(tags)
        if self._keep:
            self.finished.append(trace)
        if self.sink_path is not None:
            self._write(trace)

    def event(self, trace_id: int, outcome: str, **tags: object) -> None:
        """Record a span-less outcome (``shed`` / ``deferred``).

        Runs through the same sampling decision as :meth:`begin`, so a
        given message is either fully invisible or fully traced.
        """
        trace = self.begin(trace_id)
        if trace is not None:
            self.finish(trace, outcome=outcome, **tags)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _write(self, trace: Trace) -> None:
        if self._handle is None:
            assert self.sink_path is not None
            self.sink_path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.sink_path.open("a", encoding="utf-8")
        self._handle.write(json.dumps(trace.to_dict(),
                                      sort_keys=True) + "\n")
        self._handle.flush()
        self.exported += 1

    def close(self) -> None:
        """Close the JSONL sink (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def read_jsonl(path: "str | os.PathLike[str]") -> "Iterator[dict]":
        """Yield trace dicts back out of a sink file (skips torn lines)."""
        source = Path(path)
        if not source.exists():
            return
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue
