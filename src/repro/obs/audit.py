"""Decision audit: why each message landed where it did.

The metrics layer says *how fast* and the tracer says *how long*, but
neither answers the operator question the paper's algorithms raise:
*which* bundle did message *m* join, what were the alternatives, and
what happened to that bundle afterwards?  :class:`AuditLog` keeps one
:class:`DecisionRecord` per ingest —

* the Algorithm 1 candidate set with the per-indicant Eq. 1 scores,
* the Algorithm 2 in-bundle allocation (chosen parent plus the Eq. 2–5
  component scores of the top-k alternatives),
* Algorithm 3 refinement / eviction events with their ``G(B)`` values,
* shed / deferred outcomes with the admission-ladder rung attached —

in a bounded in-memory ring, plus an optional JSONL sink.  Eviction
from the ring is *residency-protected*: the record of a message whose
bundle is still pooled is never the one evicted, so ``repro explain``
always works for anything the engine can still touch.

The contract mirrors the metrics registry: an engine without an audit
log pays a single ``is None`` check per ingest, and the JSONL output is
byte-deterministic for a fixed seed (no wall-clock fields, sorted
keys), which CI exploits to pin replay determinism.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import BundlePool

__all__ = [
    "IngestOutcome",
    "CandidateScore",
    "AllocationScore",
    "RefinementEvent",
    "DecisionRecord",
    "Explanation",
    "AuditLog",
    "explain_from_jsonl",
]

#: Ladder rung labels, by ``int(HealthState)`` value.
RUNG_LABELS = ("normal", "reduced", "skeleton", "shed_only")


def rung_label(rung: int) -> str:
    """Human name of an admission-ladder rung."""
    if 0 <= rung < len(RUNG_LABELS):
        return RUNG_LABELS[rung]
    return str(rung)


class IngestOutcome(str, enum.Enum):
    """The one outcome vocabulary traces and audit records share.

    The values are exactly the span outcome tags the tracer emits, so a
    trace and an audit record of the same ingest can never disagree by
    construction.
    """

    NEW_BUNDLE = "new-bundle"
    MATCHED = "matched"
    SHED = "shed"
    DEFERRED = "deferred"
    #: Guard verdicts (PR 7): quarantined to the crash-safe guard log,
    #: folded into a near-duplicate's bundle without Alg. 1 scoring, or
    #: admitted through the deterministic late-path past the reorder
    #: watermark.
    QUARANTINED = "quarantined"
    FOLDED = "folded"
    LATE = "late"


class CandidateScore(NamedTuple):
    """One Algorithm 1 candidate bundle with its Eq. 1 inputs.

    A ``NamedTuple`` (not a dataclass) on purpose: the engine creates
    one per fully-scored candidate on the ingest hot path, and tuple
    construction is what keeps the audit-enabled overhead budget.
    The winner is flagged post-selection via ``_replace``.
    """

    bundle_id: int
    shared_urls: int
    shared_hashtags: int
    shared_keywords: int
    rt_hit: bool
    score: float
    selected: bool = False

    def to_dict(self) -> dict:
        return {
            "bundle_id": self.bundle_id,
            "shared_urls": self.shared_urls,
            "shared_hashtags": self.shared_hashtags,
            "shared_keywords": self.shared_keywords,
            "rt_hit": self.rt_hit,
            "score": self.score,
            "selected": self.selected,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateScore":
        return cls(
            bundle_id=int(data["bundle_id"]),
            shared_urls=int(data["shared_urls"]),
            shared_hashtags=int(data["shared_hashtags"]),
            shared_keywords=int(data["shared_keywords"]),
            rt_hit=bool(data["rt_hit"]),
            score=float(data["score"]),
            selected=bool(data.get("selected", False)),
        )


class AllocationScore(NamedTuple):
    """One Algorithm 2 parent candidate with its Eq. 2–5 components.

    ``url`` / ``hashtag`` / ``time`` are the raw (unweighted) Eq. 2–4
    values; ``score`` is the weighted Eq. 5 total actually compared,
    RT bonus included.  A ``NamedTuple`` for the same hot-path reason
    as :class:`CandidateScore`.
    """

    member_id: int
    url: float
    hashtag: float
    time: float
    rt_hit: bool
    score: float
    chosen: bool = False

    def to_dict(self) -> dict:
        return {
            "member_id": self.member_id,
            "url": self.url,
            "hashtag": self.hashtag,
            "time": self.time,
            "rt_hit": self.rt_hit,
            "score": self.score,
            "chosen": self.chosen,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationScore":
        return cls(
            member_id=int(data["member_id"]),
            url=float(data["url"]),
            hashtag=float(data["hashtag"]),
            time=float(data["time"]),
            rt_hit=bool(data["rt_hit"]),
            score=float(data["score"]),
            chosen=bool(data.get("chosen", False)),
        )


class _RawAllocation(NamedTuple):
    """Deferred Algorithm 2 capture: the ingredients, not the rows.

    ``Bundle.insert`` appends exactly one of these per audited insert —
    a handful of references, nothing per-member — and
    :meth:`materialize` rebuilds the Eq. 2–5 breakdown only when the
    record is actually read.  ``message_similarity`` and
    ``similarity_components`` are pure, so re-deriving the alternatives
    later is bit-identical to what the selection loop compared; the
    chosen parent's score is the captured one, never recomputed.
    """

    message: object          # the inserted Message
    candidates: tuple        # candidate member Messages, loop order
    chosen: object           # the winning member Message (or None)
    chosen_score: float
    config: object           # the bundle's IndexerConfig (weights)
    top_k: int

    def materialize(self) -> "list[AllocationScore]":
        # Late import: repro.core.bundle imports this module.
        from repro.core.scoring import (message_similarity,
                                        similarity_components)
        decorated = []
        for prior in self.candidates:
            score = (self.chosen_score if prior is self.chosen
                     else message_similarity(self.message, prior,
                                             self.config))
            decorated.append((-score, -prior.date, prior.msg_id, prior))
        decorated.sort()
        top = decorated[:self.top_k]
        if (self.chosen is not None
                and all(entry[3] is not self.chosen for entry in top)):
            top.append(next(entry for entry in decorated
                            if entry[3] is self.chosen))
        rows = []
        for neg_score, _, _, prior in top:
            url, hashtag, time_c, rt_hit = similarity_components(
                self.message, prior)
            rows.append(AllocationScore(
                prior.msg_id, url, hashtag, time_c, rt_hit,
                -neg_score, prior is self.chosen))
        return rows


class _RawCandidates(NamedTuple):
    """Deferred Algorithm 1 capture: the gather, not the rows.

    The scalar selection loop appends exactly one of these per audited
    ingest — the per-kind hit matrix already sits in the message's
    ``CandidateGather``, so all the loop saves per candidate is its
    gather position and the Eq. 1 score it compared.  :meth:`rows`
    rebuilds the flat stride-6 scalar sequence
    :meth:`DecisionRecord.materialize` expects; the scores are the
    captured ones, never recomputed, so the rows are bit-identical to
    what the loop ranked.
    """

    gather: object           # the message's CandidateGather
    positions: list          # kept gather positions, capped scoring order
    scores: list             # Eq. 1 score per kept position

    def rows(self) -> list:
        ids = self.gather.ids
        tag_hits, url_hits, kw_hits, user_hits = self.gather.kind_hits
        flat: list = []
        for position, score in zip(self.positions, self.scores):
            flat += (ids[position], url_hits[position],
                     tag_hits[position], kw_hits[position],
                     user_hits[position] > 0, score)
        return flat


@dataclass(slots=True)
class RefinementEvent:
    """One bundle leaving the pool under Algorithm 3 (or forced shed).

    ``reason`` is the pool's eviction vocabulary — ``tiny`` / ``closed``
    / ``ranked`` / ``shed`` — and ``g_score`` the Eq. 6 ``G(B)`` value
    (eviction priority) at the moment of removal.
    """

    reason: str
    bundle_id: int
    g_score: float
    size: int

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "bundle_id": self.bundle_id,
            "g_score": self.g_score,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RefinementEvent":
        return cls(
            reason=str(data["reason"]),
            bundle_id=int(data["bundle_id"]),
            g_score=float(data["g_score"]),
            size=int(data["size"]),
        )


@dataclass(slots=True)
class DecisionRecord:
    """The full decision narrative of one ingest.

    A refused arrival (shed / deferred at admission) has
    ``bundle_id is None`` and empty score lists; a deferred message that
    later drained into the pipeline gets a fresh placement record with
    ``deferred_first=True``.
    """

    seq: int
    msg_id: int
    outcome: IngestOutcome
    rung: int = 0
    bundle_id: "int | None" = None
    parent_id: "int | None" = None
    edge_kind: "str | None" = None
    skeleton: bool = False
    candidate_cap: "int | None" = None
    threshold: "float | None" = None
    candidates: "list[CandidateScore]" = field(default_factory=list)
    allocation: "list[AllocationScore]" = field(default_factory=list)
    refinement: "list[RefinementEvent]" = field(default_factory=list)
    deferred_first: bool = False
    late_arrival: bool = False

    @property
    def placed(self) -> bool:
        """Whether the message actually reached a bundle."""
        return self.bundle_id is not None

    def materialize(self) -> "DecisionRecord":
        """Turn lazily-captured score rows into their final form.

        The ingest hot path stores one :class:`_RawCandidates` (scalar
        Alg. 1) or a flat scalar sequence (vectorised Alg. 1) plus one
        :class:`_RawAllocation` (Alg. 2); every read path goes through
        here first.  Idempotent — already-materialized records pass
        through untouched.
        """
        candidates = self.candidates
        if candidates and isinstance(candidates[0], _RawCandidates):
            candidates = candidates[0].rows()
        if candidates and not isinstance(candidates[0], CandidateScore):
            # Raw capture is a flat scalar sequence, six values per
            # candidate; the selected row is the one the ingest landed
            # in (a refused or fresh-bundle record selects none).
            winner = (self.bundle_id
                      if self.outcome is IngestOutcome.MATCHED else None)
            self.candidates = [
                CandidateScore(candidates[i], candidates[i + 1],
                               candidates[i + 2], candidates[i + 3],
                               candidates[i + 4], candidates[i + 5],
                               candidates[i] == winner)
                for i in range(0, len(candidates), 6)]
        allocation = self.allocation
        if allocation and isinstance(allocation[0], _RawAllocation):
            self.allocation = allocation[0].materialize()
        return self

    def to_dict(self) -> dict:
        self.materialize()
        return {
            "type": "decision",
            "seq": self.seq,
            "msg_id": self.msg_id,
            "outcome": self.outcome.value,
            "rung": self.rung,
            "bundle_id": self.bundle_id,
            "parent_id": self.parent_id,
            "edge_kind": self.edge_kind,
            "skeleton": self.skeleton,
            "candidate_cap": self.candidate_cap,
            "threshold": self.threshold,
            "candidates": [c.to_dict() for c in self.candidates],
            "allocation": [a.to_dict() for a in self.allocation],
            "refinement": [r.to_dict() for r in self.refinement],
            "deferred_first": self.deferred_first,
            "late_arrival": self.late_arrival,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DecisionRecord":
        return cls(
            seq=int(data["seq"]),
            msg_id=int(data["msg_id"]),
            outcome=IngestOutcome(data["outcome"]),
            rung=int(data.get("rung", 0)),
            bundle_id=(int(data["bundle_id"])
                       if data.get("bundle_id") is not None else None),
            parent_id=(int(data["parent_id"])
                       if data.get("parent_id") is not None else None),
            edge_kind=data.get("edge_kind"),
            skeleton=bool(data.get("skeleton", False)),
            candidate_cap=(int(data["candidate_cap"])
                           if data.get("candidate_cap") is not None
                           else None),
            threshold=(float(data["threshold"])
                       if data.get("threshold") is not None else None),
            candidates=[CandidateScore.from_dict(c)
                        for c in data.get("candidates", ())],
            allocation=[AllocationScore.from_dict(a)
                        for a in data.get("allocation", ())],
            refinement=[RefinementEvent.from_dict(r)
                        for r in data.get("refinement", ())],
            deferred_first=bool(data.get("deferred_first", False)),
            late_arrival=bool(data.get("late_arrival", False)),
        )


@dataclass(slots=True)
class Explanation:
    """A decision record plus everything that happened to it afterwards."""

    record: DecisionRecord
    later_events: "list[tuple[int, RefinementEvent]]" = field(
        default_factory=list)

    def render(self) -> str:
        """The human narrative ``repro explain`` prints."""
        # Imported lazily: repro.bench pulls the engine at package init,
        # and the engine's bundle module imports this one.
        from repro.bench.reporting import ascii_table

        record = self.record
        lines: "list[str]" = []
        rung = rung_label(record.rung)
        if not record.placed:
            lines.append(
                f"message {record.msg_id} was {record.outcome.value} at "
                f"admission (rung {rung}, seq {record.seq}); it never "
                "reached the indexing pipeline")
            return "\n".join(lines)
        headline = (f"message {record.msg_id} -> bundle "
                    f"{record.bundle_id} ({record.outcome.value}, "
                    f"rung {rung}, seq {record.seq})")
        if record.deferred_first:
            headline += " [deferred at admission, drained from backlog]"
        if record.late_arrival:
            headline += (" [late arrival, past the reorder watermark; "
                         "placed via the deterministic late-path]")
        lines.append(headline)
        mode_bits = [f"skeleton={'yes' if record.skeleton else 'no'}"]
        if record.candidate_cap is not None:
            mode_bits.append(f"candidate cap={record.candidate_cap}")
        if record.threshold is not None:
            mode_bits.append(f"match threshold={record.threshold:g}")
        lines.append("mode: " + ", ".join(mode_bits))
        lines.append("")
        if record.candidates:
            lines.append(ascii_table(
                ["bundle", "urls", "tags", "kws", "rt", "Eq.1 score",
                 "picked"],
                [[c.bundle_id, c.shared_urls, c.shared_hashtags,
                  c.shared_keywords, "yes" if c.rt_hit else "-",
                  f"{c.score:.4f}", "*" if c.selected else ""]
                 for c in record.candidates],
                title="Algorithm 1 - candidate bundles (Eq. 1)"))
        else:
            lines.append("Algorithm 1 - no candidate bundle scored; "
                         f"opened fresh bundle {record.bundle_id}")
        lines.append("")
        if record.allocation:
            lines.append(ascii_table(
                ["member", "U (Eq.2)", "H (Eq.3)", "T (Eq.4)", "rt",
                 "S (Eq.5)", "chosen"],
                [[a.member_id, f"{a.url:.3f}", f"{a.hashtag:.3f}",
                  f"{a.time:.3f}", "yes" if a.rt_hit else "-",
                  f"{a.score:.4f}", "*" if a.chosen else ""]
                 for a in record.allocation],
                title="Algorithm 2 - in-bundle allocation (Eq. 2-5)"))
        else:
            lines.append("Algorithm 2 - first member: no prior message "
                         "to align with (root of the bundle)")
        lines.append("")
        if record.parent_id is not None:
            chosen = next((a for a in record.allocation if a.chosen), None)
            score_text = (f" (S={chosen.score:.4f})"
                          if chosen is not None else "")
            lines.append(f"placement: connected to parent "
                         f"{record.parent_id} via {record.edge_kind} "
                         f"edge{score_text}")
        else:
            lines.append("placement: root message (no provenance edge)")
        if record.refinement:
            lines.append("refinement triggered by this ingest:")
            for event in record.refinement:
                lines.append(f"  - bundle {event.bundle_id} {event.reason} "
                             f"(G={event.g_score:.3f}, "
                             f"size {event.size})")
        for seq, event in self.later_events:
            lines.append(f"afterwards: bundle {event.bundle_id} left the "
                         f"pool at seq {seq} ({event.reason}, "
                         f"G={event.g_score:.3f}, size {event.size})")
        return "\n".join(lines)


class AuditLog:
    """Bounded, residency-protected ring of ingest decision records.

    Parameters
    ----------
    capacity:
        Ring bound.  When full, the *oldest record whose message is no
        longer pool-resident* is evicted; if every ringed record is
        still resident the ring grows past the bound rather than lose
        an explainable decision (``dropped`` counts real losses only).
    sink:
        Optional JSONL path.  Records are buffered and appended in
        batches of ``flush_every`` (the supervisor also flushes through
        the :class:`~repro.obs.TelemetryFlusher` cadence); lines carry
        no wall-clock fields, so two seeded runs produce byte-identical
        files.
    flush_every:
        Buffered lines per write.
    """

    def __init__(self, *, capacity: int = 4096,
                 sink: "str | os.PathLike[str] | None" = None,
                 flush_every: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.capacity = capacity
        self.sink = Path(sink) if sink is not None else None
        self.flush_every = flush_every
        self.recorded = 0
        self.refusals = 0
        self.dropped = 0  # records evicted from the ring
        self.alerts: "list[dict]" = []
        self._ring: "list[DecisionRecord]" = []
        self._index: "dict[int, DecisionRecord]" = {}
        self._evictions: "list[tuple[int, RefinementEvent]]" = []
        self._seq = 0
        self._buffer: "list[str]" = []
        self._handle: "IO[str] | None" = None
        self._pool: "BundlePool | None" = None

    # -- wiring -------------------------------------------------------------

    def bind(self, pool: "BundlePool") -> None:
        """Attach the pool consulted by residency-protected eviction."""
        self._pool = pool

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording ----------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def record_decision(self, *, msg_id: int, outcome: IngestOutcome,
                        rung: int = 0,
                        bundle_id: "int | None" = None,
                        parent_id: "int | None" = None,
                        edge_kind: "str | None" = None,
                        skeleton: bool = False,
                        candidate_cap: "int | None" = None,
                        threshold: "float | None" = None,
                        candidates: "list[CandidateScore] | None" = None,
                        allocation: "list[AllocationScore] | None" = None,
                        refinement: "list[RefinementEvent] | None" = None,
                        ) -> DecisionRecord:
        """Record one placement (or refusal) decision."""
        deferred_first = False
        late_arrival = False
        prior = self._index.get(msg_id)
        if prior is not None and not prior.placed:
            if prior.outcome is IngestOutcome.DEFERRED:
                # The admission refusal resolved into a real placement:
                # the placement record supersedes it, flagged as
                # backlog-drained.
                deferred_first = True
            elif prior.outcome is IngestOutcome.LATE:
                # The guard's late-path verdict resolved into a real
                # placement the same way.
                late_arrival = True
            if deferred_first or late_arrival:
                try:
                    self._ring.remove(prior)
                except ValueError:  # already evicted from the ring
                    pass
        # Score lists are stored as tuples: tuples of immutables get
        # untracked by the cyclic GC, which matters when thousands of
        # records sit in the ring across collector generations.
        record = DecisionRecord(
            seq=self._next_seq(), msg_id=msg_id, outcome=outcome,
            rung=rung, bundle_id=bundle_id, parent_id=parent_id,
            edge_kind=edge_kind, skeleton=skeleton,
            candidate_cap=candidate_cap, threshold=threshold,
            candidates=tuple(candidates) if candidates else (),
            allocation=tuple(allocation) if allocation else (),
            refinement=tuple(refinement) if refinement else (),
            deferred_first=deferred_first, late_arrival=late_arrival)
        self._ring.append(record)
        self._index[msg_id] = record
        self.recorded += 1
        if not record.placed:
            self.refusals += 1
        for event in record.refinement:
            self._evictions.append((record.seq, event))
        if self.sink is not None:  # to_dict is not free; skip unsinked
            self._emit(record.to_dict())
        self._enforce_capacity()
        return record

    def record_refusal(self, msg_id: int, outcome: IngestOutcome,
                       rung: int) -> DecisionRecord:
        """Record an arrival refused at admission (shed or deferred)."""
        return self.record_decision(msg_id=msg_id, outcome=outcome,
                                    rung=rung)

    def record_evictions(self, events: "list[RefinementEvent]",
                         *, rung: int = 0) -> None:
        """Record bundle evictions outside an ingest (watermark sheds)."""
        if not events:
            return
        seq = self._next_seq()
        for event in events:
            self._evictions.append((seq, event))
            if self.sink is None:
                continue
            payload = event.to_dict()
            payload["type"] = "refinement"
            payload["seq"] = seq
            payload["rung"] = rung
            self._emit(payload)

    def record_alert(self, *, rule: str, metric: str, value: float,
                     threshold: float, rung: int,
                     observation: int) -> dict:
        """Record a quality threshold-rule firing into the audit stream."""
        payload = {
            "type": "alert",
            "seq": self._next_seq(),
            "rule": rule,
            "metric": metric,
            "value": value,
            "threshold": threshold,
            "rung": rung,
            "observation": observation,
        }
        self.alerts.append(payload)
        self._emit(payload)
        return payload

    # -- ring eviction ------------------------------------------------------

    def _is_resident(self, record: DecisionRecord) -> bool:
        if self._pool is None or record.bundle_id is None:
            return False
        bundle = self._pool.try_get(record.bundle_id)
        return bundle is not None and record.msg_id in bundle

    def _enforce_capacity(self) -> None:
        while len(self._ring) > self.capacity:
            for position, record in enumerate(self._ring):
                if not self._is_resident(record):
                    victim = self._ring.pop(position)
                    self.dropped += 1
                    if self._index.get(victim.msg_id) is victim:
                        del self._index[victim.msg_id]
                    break
            else:
                # Every ringed record is still pool-resident: grow
                # rather than lose an explainable decision (the pool
                # bound makes this rare and small).
                return

    # -- queries ------------------------------------------------------------

    def record_for(self, msg_id: int) -> "DecisionRecord | None":
        """The (latest) decision record of one message, if still ringed."""
        record = self._index.get(msg_id)
        return record.materialize() if record is not None else None

    def tail(self, n: int = 20) -> "list[DecisionRecord]":
        """The most recent ``n`` records, oldest first."""
        if n <= 0:
            return []
        return [record.materialize() for record in self._ring[-n:]]

    def filter(self, *, outcome: "IngestOutcome | str | None" = None,
               rung: "int | None" = None,
               bundle_id: "int | None" = None,
               limit: "int | None" = None) -> "list[DecisionRecord]":
        """Records matching every given criterion, oldest first."""
        wanted = (IngestOutcome(outcome)
                  if outcome is not None else None)
        matched = [
            record for record in self._ring
            if (wanted is None or record.outcome is wanted)
            and (rung is None or record.rung == rung)
            and (bundle_id is None or record.bundle_id == bundle_id)
        ]
        if limit is not None and limit >= 0:
            matched = matched[-limit:]
        return [record.materialize() for record in matched]

    def explain(self, msg_id: int) -> "Explanation | None":
        """The decision narrative of one message (``None`` if unringed)."""
        record = self._index.get(msg_id)
        if record is None:
            return None
        later = [(seq, event) for seq, event in self._evictions
                 if seq > record.seq and record.bundle_id is not None
                 and event.bundle_id == record.bundle_id]
        return Explanation(record=record.materialize(), later_events=later)

    # -- JSONL sink ---------------------------------------------------------

    def _emit(self, payload: dict) -> None:
        if self.sink is None:
            return
        self._buffer.append(json.dumps(payload, sort_keys=True))
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Write buffered lines to the sink (no-op without one)."""
        if self.sink is None or not self._buffer:
            return
        if self._handle is None:
            self.sink.parent.mkdir(parents=True, exist_ok=True)
            # Truncate: the sink is this log's transcript, not a shared
            # append target — re-running a seeded replay must reproduce
            # the file byte-for-byte, not double it.
            self._handle = self.sink.open("w", encoding="utf-8")
        self._handle.write("\n".join(self._buffer) + "\n")
        self._handle.flush()
        self._buffer.clear()

    def close(self) -> None:
        """Final flush + close (idempotent)."""
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @staticmethod
    def read_jsonl(path: "str | os.PathLike[str]") -> "Iterator[dict]":
        """Yield audit records back out of a JSONL sink file."""
        source = Path(path)
        if not source.exists():
            return
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except ValueError:
                    continue


def explain_from_jsonl(path: "str | os.PathLike[str]",
                       msg_id: int) -> "Explanation | None":
    """Rebuild one message's :class:`Explanation` from a JSONL audit log.

    Uses the *last* decision line for the message (a deferred arrival
    followed by its drained placement yields two lines; the placement
    wins) plus every later eviction touching its bundle — whether
    recorded inline in other decisions or as standalone refinement
    lines.
    """
    record: "DecisionRecord | None" = None
    events: "list[tuple[int, RefinementEvent]]" = []
    for data in AuditLog.read_jsonl(path):
        kind = data.get("type")
        if kind == "decision":
            if data.get("msg_id") == msg_id:
                record = DecisionRecord.from_dict(data)
            for event_data in data.get("refinement", ()):
                events.append((int(data["seq"]),
                               RefinementEvent.from_dict(event_data)))
        elif kind == "refinement":
            events.append((int(data["seq"]),
                           RefinementEvent.from_dict(data)))
    if record is None:
        return None
    later = [(seq, event) for seq, event in events
             if seq > record.seq and record.bundle_id is not None
             and event.bundle_id == record.bundle_id]
    return Explanation(record=record, later_events=later)
