"""The live ``repro top`` terminal dashboard.

Renders one text frame from the metrics registry (plus, when available,
the overload controller's health report): ingest rate, degradation
rung, pool size/memory, per-stage latency percentiles, admission /
backlog / dead-letter depths and the durability counters.  Everything
is read through the registry, so the dashboard can never disagree with
``repro health``, the Prometheus export or the benchmarks — they all
consume the same gauges.

The renderer is pure (registry in, string out); the
:class:`Dashboard` wrapper adds frame-to-frame state for ingest-rate
computation and ANSI screen clearing for live mode.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.bench.reporting import ascii_table, human_bytes, human_count
from repro.obs.registry import Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reliability.overload import HealthReport

__all__ = ["Dashboard", "STAGE_LABELS"]

#: Pipeline stages in order, with their display names.
STAGE_LABELS = (
    ("bundle_match", "bundle match (Alg. 1)"),
    ("message_placement", "placement (Alg. 2)"),
    ("index_update", "index update"),
    ("memory_refinement", "refinement (Alg. 3)"),
)

_RUNG_NAMES = ("normal", "reduced", "skeleton", "shed_only")

ANSI_CLEAR = "\x1b[2J\x1b[H"


def _bar(fraction: float, width: int = 24) -> str:
    filled = int(round(max(0.0, min(fraction, 1.0)) * width))
    return "#" * filled + "-" * (width - filled)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}ms"


class Dashboard:
    """Stateful frame renderer over one registry.

    Parameters
    ----------
    registry:
        The engine's metrics registry (the single source of truth).
    health:
        Optional zero-arg callable returning the overload
        :class:`~repro.reliability.overload.HealthReport` (or ``None``);
        adds the breaker / signal rows the registry alone cannot name.
    clock:
        Injectable monotonic clock for rate computation.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 health: "Callable[[], HealthReport | None] | None" = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.registry = registry
        self.health = health
        self.clock = clock
        self.frames = 0
        self._started = clock()
        self._last_time = self._started
        self._last_ingested = 0.0

    # ------------------------------------------------------------------
    # Frame rendering
    # ------------------------------------------------------------------

    def frame(self) -> str:
        """Render one dashboard frame and advance the rate window."""
        registry = self.registry
        now = self.clock()
        elapsed = now - self._started
        ingested = registry.value("repro_messages_ingested_total")
        window = now - self._last_time
        rate = ((ingested - self._last_ingested) / window
                if window > 0 else 0.0)
        overall = ingested / elapsed if elapsed > 0 else 0.0
        self.frames += 1
        self._last_time = now
        self._last_ingested = ingested

        report = self.health() if self.health is not None else None

        rung = int(registry.value("repro_overload_rung", default=0.0))
        rung_label = (_RUNG_NAMES[rung]
                      if 0 <= rung < len(_RUNG_NAMES) else str(rung))
        pressure = registry.value("repro_overload_pressure")
        signal = f" ({report.signal})" if report is not None else ""

        pool_bytes = registry.value("repro_pool_memory_bytes")
        index_bytes = registry.value("repro_index_memory_bytes")

        status_rows = [
            ["ingested",
             f"{human_count(ingested)} msgs   "
             f"{rate:,.0f}/s now, {overall:,.0f}/s overall"],
            ["ladder rung",
             f"{rung_label}  pressure [{_bar(pressure)}] "
             f"{pressure:.2f}{signal}"],
            ["latency ewma",
             _ms(registry.value("repro_latency_ewma_seconds"))],
            ["pool",
             f"{human_count(registry.value('repro_pool_bundles'))} bundles, "
             f"{human_count(registry.value('repro_pool_messages'))} msgs, "
             f"{human_bytes(pool_bytes)} "
             f"(+{human_bytes(index_bytes)} index)"],
            ["bundles",
             f"{human_count(registry.value('repro_bundles_created_total'))} "
             "created / "
             f"{human_count(registry.value('repro_bundles_matched_total'))} "
             "matched / "
             f"{human_count(registry.value('repro_edges_created_total'))} "
             "edges"],
            ["admission",
             self._admission_row()],
            ["backlog depth",
             human_count(registry.value("repro_backlog_depth"))],
            ["dead letters",
             f"{human_count(registry.value('repro_dlq_depth'))} queued, "
             f"{human_count(registry.value('repro_retries_total'))} retries"],
            ["durability",
             f"{human_count(registry.value('repro_wal_appends_total'))} "
             "wal appends, "
             f"{human_count(registry.value('repro_checkpoints_total'))} "
             "checkpoints, "
             f"{human_count(registry.value('repro_store_appends_total'))} "
             "spills"],
        ]
        if report is not None:
            status_rows.append(
                ["breaker", f"{report.breaker_state} "
                            f"({report.breaker_opens} open(s)), "
                            f"{report.parked} parked"])
            status_rows.append(
                ["accounting", "reconciles" if report.reconciles
                 else "DOES NOT RECONCILE"])

        sections = [
            ascii_table(["signal", "value"], status_rows,
                        title=f"repro top — frame {self.frames}, "
                              f"elapsed {elapsed:.1f}s"),
            self._stage_table(),
        ]
        shards = self._shard_table()
        if shards:
            sections.append(shards)
        quality = self._quality_table()
        if quality:
            sections.append(quality)
        guard = self._guard_table()
        if guard:
            sections.append(guard)
        anatomy = self._anatomy_table()
        if anatomy:
            sections.append(anatomy)
        traces = self._trace_line()
        if traces:
            sections.append(traces)
        return "\n\n".join(sections)

    def _quality_table(self) -> str:
        # Present only when a QualityMonitor registered its gauges
        # (ground-truth streams); reads the same repro_quality_* series
        # the Prometheus export exposes.
        registry = self.registry
        if registry.find("repro_quality_accuracy") is None:
            return ""
        value = registry.value
        reference = value("repro_quality_reference")
        rows = [
            ["accuracy (accu)",
             f"{value('repro_quality_accuracy'):.3f} cumulative / "
             f"{value('repro_quality_window_accuracy'):.3f} window"],
            ["return (ret)",
             f"{value('repro_quality_return'):.3f} cumulative / "
             f"{value('repro_quality_window_return'):.3f} window"],
            ["f1", f"{value('repro_quality_f1'):.3f}"],
            ["matched edges",
             f"{human_count(value('repro_quality_matched'))} of "
             f"{human_count(reference)} ground-truth"],
            ["alerts", human_count(value("repro_quality_alerts"))],
        ]
        return ascii_table(["quality", "value"], rows,
                           title="clustering quality (vs ground truth)")

    def _guard_table(self) -> str:
        # Present only when an IngestGuard registered its counters
        # (guarded supervisors); reads the same repro_guard_* series
        # the Prometheus export exposes.
        registry = self.registry
        if registry.find("repro_guard_screened_total") is None:
            return ""
        value = registry.value
        screened = value("repro_guard_screened_total")
        toxicity = value("repro_guard_toxicity")
        rows = [
            ["screened",
             f"{human_count(screened)} msgs "
             f"({human_count(value('repro_guard_passed_total'))} passed)"],
            ["folded (near-dup)",
             human_count(value("repro_guard_folded_total"))],
            ["quarantined",
             human_count(value("repro_guard_quarantined_total"))],
            ["late arrivals",
             human_count(value("repro_guard_late_total"))],
            ["reorder buffer",
             f"{human_count(value('repro_guard_buffer_depth'))} buffered, "
             f"{human_count(value('repro_guard_reordered_total'))} "
             "released in order"],
            ["toxicity",
             f"[{_bar(toxicity)}] {toxicity:.2f}"],
        ]
        return ascii_table(["guard", "value"], rows,
                           title="ingest guard (adversarial hardening)")

    def _anatomy_table(self) -> str:
        # Present only when a WorkloadAnatomy published its gauges
        # (``--anatomy`` / ``repro anatomy``); on a fleet-merged
        # registry the hot-term weights are summed across shards —
        # the distributed SpaceSaving merge.
        registry = self.registry
        family = registry._families.get("repro_hot_terms")
        if family is None:
            return ""
        per_kind: "dict[str, list[tuple[float, str]]]" = {}
        for gauge in family.children.values():
            kind = gauge.labels.get("kind")
            term = gauge.labels.get("term")
            if kind is None or term is None or gauge.value <= 0:
                continue
            # Fleet-merged registries carry each series twice: the
            # shard-summed aggregate plus one per-shard copy.  Keep
            # only the aggregate or every term would list per shard.
            if "shard" in gauge.labels:
                continue
            per_kind.setdefault(kind, []).append((gauge.value, term))
        rows = []
        for kind in sorted(per_kind):
            top = sorted(per_kind[kind],
                         key=lambda pair: (-pair[0], pair[1]))[:5]
            rows.append([kind, ", ".join(
                f"{term}({human_count(weight)})"
                for weight, term in top)])
        fanin = registry.find("repro_candidate_fanin",
                              {"phase": "fetched"})
        if isinstance(fanin, Histogram) and fanin.count:
            rows.append(["fan-in fetched",
                         f"p50 {fanin.percentile(50):.0f} / "
                         f"p99 {fanin.percentile(99):.0f} "
                         f"(max {fanin.max:.0f})"])
        capped = registry.value("repro_candidate_capped_total")
        if capped:
            rows.append(["capped ingests", human_count(capped)])
        for component in ("index", "pool"):
            drift = registry.find("repro_memory_drift_ratio",
                                  {"component": component})
            if drift is None:
                continue
            measured = registry.value("repro_memory_measured_bytes",
                                      {"component": component})
            rows.append([f"{component} memory",
                         f"{human_bytes(measured)} measured, "
                         f"{drift.value * 100:+.1f}% vs estimate"])
        if not rows:
            return ""
        return ascii_table(
            ["anatomy", "value"], rows,
            title="workload anatomy (hot terms weight ~ caused fan-in)")

    def _shard_table(self) -> str:
        # Present only on a fleet-merged registry (the multiprocess
        # runtime's merge_worker_dumps adds a ``shard`` label to every
        # per-worker series); aggregate rows above stay fleet-wide.
        shards = self.shard_ids()
        if not shards:
            return ""
        value = self.registry.value
        rows = []
        for shard in shards:
            labels = {"shard": shard}
            rows.append([
                shard,
                human_count(value("repro_messages_ingested_total",
                                  labels)),
                human_count(value("repro_pool_bundles", labels)),
                human_count(value("repro_edges_created_total", labels)),
                human_bytes(value("repro_pool_memory_bytes", labels)
                            + value("repro_index_memory_bytes", labels)),
                human_count(value("repro_backlog_depth", labels)),
                human_count(value("repro_dlq_depth", labels)),
                human_count(value("repro_repair_pending_boundary",
                                  labels)),
            ])
        title = f"fleet — {len(shards)} shards"
        if self.registry.find("repro_fleet_edge_coverage") is not None:
            coverage = value("repro_fleet_edge_coverage")
            title += f", edge coverage {coverage:.3f}"
        return ascii_table(
            ["shard", "ingested", "bundles", "edges", "memory",
             "backlog", "dlq", "pending"],
            rows, title=title)

    def shard_ids(self) -> "list[str]":
        """Shard labels present in the registry, numerically sorted."""
        family = self.registry._families.get(
            "repro_messages_ingested_total")
        if family is None:
            return []
        shards = {dict(key).get("shard")
                  for key in family.children if key}
        shards.discard(None)
        return sorted(shards, key=lambda s: (len(s), s))

    def _admission_row(self) -> str:
        value = self.registry.value
        labels = lambda verdict: {"verdict": verdict}  # noqa: E731
        admitted = value("repro_admission_total", labels("admitted"))
        released = value("repro_admission_total", labels("released"))
        deferred = value("repro_admission_total", labels("deferred"))
        dropped = value("repro_admission_total", labels("dropped"))
        return (f"{human_count(admitted + released)} in / "
                f"{human_count(deferred)} deferred / "
                f"{human_count(dropped)} dropped")

    def _stage_table(self) -> str:
        rows = []
        for stage, label in STAGE_LABELS:
            metric = self.registry.find("repro_stage_seconds",
                                        {"stage": stage})
            if isinstance(metric, Histogram) and metric.count:
                rows.append([label, human_count(metric.count),
                             _ms(metric.percentile(50)),
                             _ms(metric.percentile(95)),
                             _ms(metric.percentile(99)),
                             f"{metric.sum:.2f}s"])
            else:
                rows.append([label, "0", "—", "—", "—", "—"])
        ingest = self.registry.find("repro_ingest_latency_seconds")
        if isinstance(ingest, Histogram) and ingest.count:
            rows.append(["whole ingest", human_count(ingest.count),
                         _ms(ingest.percentile(50)),
                         _ms(ingest.percentile(95)),
                         _ms(ingest.percentile(99)),
                         f"{ingest.sum:.2f}s"])
        return ascii_table(
            ["stage", "count", "p50", "p95", "p99", "total"], rows,
            title="stage latencies")

    def _trace_line(self) -> str:
        # The tracer is not registry-resident; surface its sampling
        # counters when the engine exported them as callback counters.
        offered = self.registry.value("repro_traces_offered_total")
        if not offered:
            return ""
        sampled = self.registry.value("repro_traces_sampled_total")
        return (f"traces: {human_count(sampled)} sampled of "
                f"{human_count(offered)} "
                f"({sampled / offered:.1%})")

    def live_frame(self) -> str:
        """A frame prefixed with an ANSI clear for live terminal mode."""
        return ANSI_CLEAR + self.frame()
