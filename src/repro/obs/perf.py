"""Continuous profiling: a signal-free background stack sampler.

The roadmap's next arc is a ≥10x hot-path rearchitecture, and the
prerequisite is knowing *where the time goes* — per stage, per
function, continuously, in production, without perturbing the workload
being measured.  This module provides that substrate:

* :class:`StageCell` — a one-slot mailbox the engine writes the name of
  the currently executing pipeline stage into (two attribute writes per
  stage, nothing else on the hot path).
* :class:`StackSampler` — a daemon thread that wakes ``hz`` times per
  second, reads the target thread's current Python stack via
  :func:`sys._current_frames` (no signals, no tracing hooks, no
  interpreter slowdown between samples), and attributes the sample to
  whatever stage the cell names at that instant.  It accumulates

  - collapsed call stacks (``outer;inner;leaf count`` — the flamegraph
    interchange format of Brendan Gregg's ``flamegraph.pl`` and every
    viewer since), and
  - per-stage CPU sample and allocated-block-delta counters, published
    into the metrics registry as ``repro_profile_samples_total`` and
    ``repro_profile_alloc_blocks_total``.

  Allocation attribution uses :func:`sys.getallocatedblocks` deltas
  between consecutive samples billed to the stage active at the later
  sample — coarse, but free, and enough to rank stages by allocation
  pressure (the slab-allocator work needs exactly that ranking).

* :func:`render_trace_timeline` — the ``repro trace`` renderer turning
  one stitched fleet trace (see :mod:`repro.obs.tracing` and the
  runtime's hop spans) into an aligned end-to-end text timeline.

Sampling is wall-clock driven and therefore *not* seeded-deterministic
(two runs sample different instants); everything derived from it is
advisory.  The deterministic signals stay in the registry histograms.
Overhead is pinned <5% by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import Counter as _TallyCounter
from pathlib import Path
from types import FrameType
from typing import Mapping

from repro.core.errors import ConfigurationError

__all__ = [
    "StackSampler",
    "StageCell",
    "render_trace_timeline",
]

#: Stage name billed when the cell is empty (between messages, waiting
#: on the RPC pipe, draining the WAL, ...).
IDLE_STAGE = "idle"

#: Frames from these module stems are the sampler's own machinery and
#: are trimmed from the top of collected stacks.
_SELF_STEMS = frozenset({"perf", "threading"})


class StageCell:
    """One-slot mailbox naming the pipeline stage under execution.

    The engine (and the supervisor's guard screen) write ``cell.stage``
    on stage entry and clear it afterwards; the sampler thread reads it
    when a sample fires.  A plain attribute write is atomic under the
    GIL, so no locking is needed on the hot path.
    """

    __slots__ = ("stage",)

    def __init__(self) -> None:
        self.stage: str = ""

    def set(self, stage: str) -> None:
        self.stage = stage

    def clear(self) -> None:
        self.stage = ""


class StackSampler:
    """Background sampling profiler for one target thread.

    Parameters
    ----------
    hz:
        Samples per second (1..1000).  97 by default — a prime, so the
        sampling clock cannot phase-lock with millisecond-periodic work
        and systematically miss (or always hit) the same stage.
    cell:
        Optional :class:`StageCell` for stage attribution; samples fall
        into ``"idle"`` when the cell is empty or absent.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when
        given, per-stage sample and allocation counters are registered
        as callback-backed views (zero hot-path cost).
    max_stacks:
        Cardinality cap on distinct collapsed stacks; beyond it new
        shapes collapse into a shared ``(truncated)`` bucket.

    The sampler profiles the thread that calls :meth:`start` (or an
    explicit ``thread_ident``).  ``with StackSampler(...) as s:`` wraps
    start/stop.
    """

    def __init__(self, *, hz: int = 97,
                 cell: "StageCell | None" = None,
                 registry: "object | None" = None,
                 max_stacks: int = 10_000) -> None:
        if not 1 <= hz <= 1000:
            raise ConfigurationError(f"hz must be in [1, 1000], got {hz}")
        if max_stacks < 1:
            raise ConfigurationError(
                f"max_stacks must be >= 1, got {max_stacks}")
        self.hz = hz
        self.cell = cell
        self.max_stacks = max_stacks
        self.stacks: "_TallyCounter[tuple[str, ...]]" = _TallyCounter()
        self.stage_samples: "_TallyCounter[str]" = _TallyCounter()
        self.stage_alloc_blocks: "_TallyCounter[str]" = _TallyCounter()
        self.samples = 0
        self.dropped_stacks = 0
        self._ident: "int | None" = None
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._last_blocks: "int | None" = None
        self._registry = registry
        if registry is not None:
            self._register(registry)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, thread_ident: "int | None" = None) -> "StackSampler":
        """Begin sampling ``thread_ident`` (default: the caller)."""
        if self._thread is not None:
            raise ConfigurationError("sampler already started")
        self._ident = (thread_ident if thread_ident is not None
                       else threading.get_ident())
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampling thread (idempotent, joins briefly)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def __enter__(self) -> "StackSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling loop (runs on the profiler thread)
    # ------------------------------------------------------------------

    def _run(self) -> None:
        period = 1.0 / self.hz
        wait = self._stop.wait
        next_at = time.monotonic() + period
        while not wait(max(0.0, next_at - time.monotonic())):
            next_at += period
            self._sample_once()
            if next_at < time.monotonic() - period:
                # Fell behind (GIL contention, suspend): skip the
                # missed ticks instead of bursting to catch up.
                next_at = time.monotonic() + period

    def _sample_once(self) -> None:
        assert self._ident is not None
        frame = sys._current_frames().get(self._ident)
        if frame is None:
            return
        stage = (self.cell.stage if self.cell is not None else "") or IDLE_STAGE
        stack = self._collect(frame)
        self.samples += 1
        self.stage_samples[stage] += 1
        if stack:
            if (len(self.stacks) >= self.max_stacks
                    and stack not in self.stacks):
                self.dropped_stacks += 1
                self.stacks[("(truncated)",)] += 1
            else:
                self.stacks[stack] += 1
        blocks = sys.getallocatedblocks()
        if self._last_blocks is not None:
            delta = blocks - self._last_blocks
            if delta > 0:
                self.stage_alloc_blocks[stage] += delta
        self._last_blocks = blocks

    @staticmethod
    def _collect(frame: "FrameType | None") -> "tuple[str, ...]":
        """Root-first ``module.function`` frames of one stack."""
        names: "list[str]" = []
        while frame is not None:
            code = frame.f_code
            stem = Path(code.co_filename).stem
            names.append(f"{stem}.{code.co_name}")
            frame = frame.f_back
        # Walked leaf→root; collapsed format wants root-first.
        names.reverse()
        # Trim trailing sampler/threading frames if the target happened
        # to be inside telemetry machinery at the sample instant.
        while names and names[-1].split(".", 1)[0] in _SELF_STEMS:
            names.pop()
        return tuple(names)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def collapsed(self) -> "list[str]":
        """Collapsed-stack lines (``root;..;leaf count``), stable order."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in self.stacks.items() if stack
        ]
        lines.sort()
        return lines

    def write_collapsed(self, path: "str | os.PathLike[str]") -> Path:
        """Write the collapsed stacks to ``path`` (flamegraph input)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("\n".join(self.collapsed()) + "\n",
                          encoding="utf-8")
        return target

    def stage_table(self) -> "list[tuple[str, int, float, int]]":
        """``(stage, samples, share, alloc_blocks)`` rows, hottest first."""
        total = sum(self.stage_samples.values()) or 1
        rows = [
            (stage, count, count / total,
             self.stage_alloc_blocks.get(stage, 0))
            for stage, count in self.stage_samples.items()
        ]
        rows.sort(key=lambda row: (-row[1], row[0]))
        return rows

    def _register(self, registry: object) -> None:
        """Register per-stage counters as callback-backed views."""
        from repro.core.engine import StageTimers

        stages = (*StageTimers.STAGES, "guard_screen", IDLE_STAGE)
        for stage in stages:
            registry.counter(  # type: ignore[attr-defined]
                "repro_profile_samples_total",
                help="Profiler stack samples attributed to a stage.",
                labels={"stage": stage},
                callback=(lambda s=stage: float(self.stage_samples.get(s, 0))))
            registry.counter(  # type: ignore[attr-defined]
                "repro_profile_alloc_blocks_total",
                help="Allocated-block growth attributed to a stage.",
                labels={"stage": stage},
                callback=(lambda s=stage:
                          float(self.stage_alloc_blocks.get(s, 0))))


# ----------------------------------------------------------------------
# Trace timeline rendering (the `repro trace` CLI)
# ----------------------------------------------------------------------

#: Spans with this tag are fleet hops (coordinator/worker boundaries)
#: whose durations partition the end-to-end latency; anything else is a
#: detail span nested inside the ``service`` hop.
HOP_KIND = "hop"

_BAR_WIDTH = 40


def render_trace_timeline(trace: "Mapping[str, object]",
                          *, width: int = _BAR_WIDTH) -> str:
    """Render one trace dict as an aligned end-to-end text timeline.

    Hop spans (``tags.kind == "hop"``) are drawn as bar segments over a
    shared time axis scaled to the trace duration; engine stage spans
    ride below their owning hop, indented.  Works on both fleet traces
    (from ``serve --trace-out``) and single-process engine traces
    (which have no hops — every span renders at top level).
    """
    spans = list(trace.get("spans") or [])  # type: ignore[arg-type]
    duration = float(trace.get("duration") or 0.0)
    if duration <= 0.0:
        duration = max(
            (float(s.get("start", 0.0)) + float(s.get("duration", 0.0))
             for s in spans), default=0.0)
    tags = dict(trace.get("tags") or {})  # type: ignore[arg-type]
    header_bits = [f"trace {trace.get('trace_id')}",
                   f"{duration * 1e3:.3f} ms"]
    for key in ("outcome", "shard", "bundle_id"):
        if key in tags:
            header_bits.append(f"{key}={tags[key]}")
    if tags.get("dead"):
        header_bits.append("DEAD-HOP")
    lines = ["  ".join(str(bit) for bit in header_bits)]
    hops = [s for s in spans
            if (s.get("tags") or {}).get("kind") == HOP_KIND]
    details = [s for s in spans
               if (s.get("tags") or {}).get("kind") != HOP_KIND]
    name_width = max((len(str(s.get("name", ""))) + (0 if s in hops else 2)
                      for s in spans), default=10)
    name_width = max(name_width, 10)

    def line(span: "Mapping[str, object]", indent: str = "") -> str:
        start = float(span.get("start", 0.0))
        length = float(span.get("duration", 0.0))
        if duration > 0:
            left = int(round(start / duration * width))
            fill = max(1, int(round(length / duration * width)))
        else:
            left, fill = 0, 1
        left = min(left, width - 1)
        fill = min(fill, width - left)
        bar = " " * left + "█" * fill + " " * (width - left - fill)
        name = indent + str(span.get("name", "?"))
        span_tags = dict(span.get("tags") or {})  # type: ignore[arg-type]
        extras = [f"{k}={v}" for k, v in sorted(span_tags.items())
                  if k != "kind" and not isinstance(v, float)]
        suffix = ("  " + " ".join(extras)) if extras else ""
        return (f"  {name:<{name_width}} |{bar}| "
                f"{length * 1e3:9.3f} ms{suffix}")

    if hops:
        for hop in hops:
            lines.append(line(hop))
            if str(hop.get("name")) == "service":
                for detail in details:
                    lines.append(line(detail, indent="  "))
    else:
        for span in spans:
            lines.append(line(span))
    return "\n".join(lines)
