"""Streaming clustering-quality monitoring (Section VI-B, live).

Offline, ``bench_fig08`` replays a stream and compares the engine's
discovered edges against the generator's ground truth with
:func:`repro.core.metrics.compare_edge_sets`.  :class:`QualityMonitor`
computes the same accu / ret / F1 *while the stream runs*: the engine
feeds it one ``(message, result)`` pair per ingest, it maintains both
the cumulative edge sets and a sliding window of recent observations,
and exports everything as ``repro_quality_*`` callback gauges — so a
scrape, ``repro top`` and the offline benchmark can never disagree on
the same prefix.

Threshold rules turn the signals into events: a
:class:`QualityRule` that fires (e.g. windowed accuracy drops below
0.8 while the overload ladder is degraded) increments
``repro_quality_alerts_total{rule=…}`` and lands in the audit stream,
cross-linking the quality regression to the rung that caused it (see
``docs/operations.md``).

Ground truth requires generator streams or TSV replays (both carry
``parent_id``); on truthless streams the monitor simply observes no
reference edges and its gauges stay at their empty-set conventions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.metrics import EdgeComparison, compare_edge_sets
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import IngestResult
    from repro.core.message import Message
    from repro.obs.audit import AuditLog

__all__ = ["QualityMonitor", "QualityRule", "DEFAULT_QUALITY_RULES"]


@dataclass(frozen=True, slots=True)
class QualityRule:
    """Fire an alert when a quality metric sinks below a floor.

    ``metric`` is an :class:`~repro.core.metrics.EdgeComparison`
    property name (``accuracy`` / ``coverage`` / ``f1``); ``scope``
    picks the windowed or cumulative view.  With ``only_degraded`` the
    rule is armed only while the admission ladder is off NORMAL — the
    "is the degraded mode costing us quality?" question.  The rule is
    edge-triggered: one alert per excursion below the floor, not one
    per check.
    """

    name: str
    metric: str = "accuracy"
    min_value: float = 0.8
    scope: str = "window"  # "window" | "cumulative"
    only_degraded: bool = True
    min_reference: int = 16  # reference edges needed before arming


#: The rules the CLI replay stack arms by default.
DEFAULT_QUALITY_RULES = (
    QualityRule(name="accu-degraded", metric="accuracy", min_value=0.8,
                scope="window", only_degraded=True),
    QualityRule(name="ret-degraded", metric="coverage", min_value=0.5,
                scope="window", only_degraded=True),
)


class QualityMonitor:
    """Windowed + cumulative accu/ret/F1 over a supervised replay.

    Parameters
    ----------
    registry:
        Where the ``repro_quality_*`` gauges live (gauges stay live
        even on a disabled registry, like every other pressure signal).
    window:
        Observations in the sliding window.
    check_every:
        Rule-evaluation cadence, in observations.
    rules:
        The :class:`QualityRule` set to arm.
    rung:
        Zero-arg callable returning the current ladder rung as ``int``
        (``0`` = NORMAL); ``None`` reads as permanently NORMAL.
    audit:
        Optional :class:`~repro.obs.audit.AuditLog` receiving fired
        alerts, so ``repro audit tail`` interleaves quality regressions
        with the placement decisions that caused them.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None, *,
                 window: int = 512, check_every: int = 256,
                 rules: "tuple[QualityRule, ...]" = (),
                 rung: "Callable[[], int] | None" = None,
                 audit: "AuditLog | None" = None) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if check_every < 1:
            raise ValueError(
                f"check_every must be >= 1, got {check_every}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.window = window
        self.check_every = check_every
        self.rules = tuple(rules)
        self.rung = rung
        self.audit = audit
        self.observed = 0
        self.alerts: "list[dict]" = []
        self._reference: "set[tuple[int, int]]" = set()
        self._found: "set[tuple[int, int]]" = set()
        # One (ground_truth_edge | None, found_edge | None) per
        # observation, newest right.
        self._recent: "deque[tuple[tuple[int, int] | None, tuple[int, int] | None]]" = deque()
        self._violating: "set[str]" = set()
        self._register_metrics()

    def _register_metrics(self) -> None:
        registry = self.registry
        registry.gauge("repro_quality_accuracy",
                       help="Cumulative accu vs ground truth (Sec. VI-B)",
                       callback=lambda: self.cumulative().accuracy)
        registry.gauge("repro_quality_return",
                       help="Cumulative ret (coverage) vs ground truth",
                       callback=lambda: self.cumulative().coverage)
        registry.gauge("repro_quality_f1",
                       help="Cumulative F1 of accu and ret",
                       callback=lambda: self.cumulative().f1)
        registry.gauge("repro_quality_matched",
                       help="Discovered edges matching ground truth",
                       callback=lambda: self.cumulative().matched)
        registry.gauge("repro_quality_reference",
                       help="Ground-truth edges observed so far",
                       callback=lambda: len(self._reference))
        registry.gauge("repro_quality_found",
                       help="Edges the engine discovered so far",
                       callback=lambda: len(self._found))
        registry.gauge("repro_quality_window_accuracy",
                       help="Windowed accu over recent observations",
                       callback=lambda: self.windowed().accuracy)
        registry.gauge("repro_quality_window_return",
                       help="Windowed ret over recent observations",
                       callback=lambda: self.windowed().coverage)
        registry.gauge("repro_quality_alerts",
                       help="Quality threshold-rule alerts fired",
                       callback=lambda: len(self.alerts))
        self._alert_counters = {
            rule.name: registry.counter(
                "repro_quality_alerts_total",
                help="Quality alerts fired, by rule",
                labels={"rule": rule.name})
            for rule in self.rules
        }

    # -- observation --------------------------------------------------------

    def observe(self, message: "Message",
                result: "IngestResult | None") -> None:
        """Record one ingested message and its placement outcome."""
        truth = ((message.msg_id, message.parent_id)
                 if message.parent_id is not None else None)
        found = (result.edge.as_pair()
                 if result is not None and result.edge is not None
                 else None)
        self._push(truth, found)

    def note_shed(self, message: "Message") -> None:
        """Record an arrival dropped at admission (ground truth only).

        A shed message can never contribute a discovered edge, but its
        ground-truth edge still counts against ret — shedding has a
        measurable quality price, which is the point of watching.
        """
        truth = ((message.msg_id, message.parent_id)
                 if message.parent_id is not None else None)
        self._push(truth, None)

    def _push(self, truth: "tuple[int, int] | None",
              found: "tuple[int, int] | None") -> None:
        if truth is not None:
            self._reference.add(truth)
        if found is not None:
            self._found.add(found)
        self._recent.append((truth, found))
        while len(self._recent) > self.window:
            self._recent.popleft()
        self.observed += 1
        if self.rules and self.observed % self.check_every == 0:
            self._check_rules()

    # -- views --------------------------------------------------------------

    def cumulative(self) -> EdgeComparison:
        """Exactly ``compare_edge_sets(found, ground_truth)`` so far.

        Uses the same function as the offline evaluation, so on the
        same prefix the live gauge and ``bench_fig08``-style
        computation are equal by construction.
        """
        return compare_edge_sets(self._found, self._reference)

    def windowed(self) -> EdgeComparison:
        """The comparison over the last ``window`` observations only."""
        reference = {truth for truth, _ in self._recent
                     if truth is not None}
        found = {edge for _, edge in self._recent if edge is not None}
        return compare_edge_sets(found, reference)

    def current_rung(self) -> int:
        """The ladder rung the rules see (0 without a rung source)."""
        return int(self.rung()) if self.rung is not None else 0

    # -- threshold rules ----------------------------------------------------

    def _check_rules(self) -> None:
        window = self.windowed()
        cumulative = self.cumulative()
        rung = self.current_rung()
        for rule in self.rules:
            view = window if rule.scope == "window" else cumulative
            if view.reference_size < rule.min_reference:
                continue
            if rule.only_degraded and rung == 0:
                self._violating.discard(rule.name)
                continue
            value = float(getattr(view, rule.metric))
            if value >= rule.min_value:
                self._violating.discard(rule.name)
                continue
            if rule.name in self._violating:
                continue  # still inside the same excursion
            self._violating.add(rule.name)
            self._fire(rule, value, rung)

    def _fire(self, rule: QualityRule, value: float, rung: int) -> None:
        self._alert_counters[rule.name].inc()
        if self.audit is not None:
            alert = self.audit.record_alert(
                rule=rule.name, metric=rule.metric, value=value,
                threshold=rule.min_value, rung=rung,
                observation=self.observed)
        else:
            alert = {
                "type": "alert", "rule": rule.name, "metric": rule.metric,
                "value": value, "threshold": rule.min_value, "rung": rung,
                "observation": self.observed,
            }
        self.alerts.append(alert)
