"""Workload anatomy — the "measure before you rewrite" layer.

ROADMAP item 1 (slab-allocated postings + vectorized Algorithm 1)
cannot be sized blind: Asadi & Lin pick slice-growth schedules from the
*measured* distribution of postings-list lengths, and prefix-filter
pruning (item 3) needs the measured candidate fan-in and term-frequency
skew.  This module characterizes the live workload with three
deterministic instruments:

* :class:`SpaceSavingSketch` — bounded-memory heavy-hitter tracking per
  indicant kind.  Each sampled occurrence is weighted by the length of
  the postings list it touches, so the "top" terms are exactly the ones
  that dominate Algorithm 1's candidate fan-in, not merely the most
  frequent.  The sketch is the classic Metwally et al. stream-summary
  with deterministic ``(count, term)`` tie-breaking, so replayed
  streams reproduce identical state byte for byte.
* shape histograms — postings-list length per kind
  (``repro_postings_length``), riding the registry's existing
  bucket/reservoir machinery so the fleet merge and the Prometheus
  export get them for free (the engine and pool own the companion
  ``repro_candidate_fanin`` and ``repro_evicted_bundle_*`` series).
* :class:`MemoryAccountant` — a deep ``sys.getsizeof`` walk attributing
  *actual* bytes to index / pool / dedup-cache / guard structures, and
  the drift of the cheap ``approximate_memory_bytes()`` estimates
  against it (``repro_memory_drift_ratio``).

:meth:`WorkloadAnatomy.fingerprint` folds all three into one
JSON-able workload fingerprint — heavy hitters, exact postings-length
quantiles, fan-in/eviction distributions, measured memory and growth
rates, with **no wall-clock anywhere** — which
:meth:`write_fingerprint` appends as canonical (sorted-key, no-space)
JSONL.  Two seeded runs produce byte-identical files; CI compares them
with ``cmp``.  :func:`capacity_report` projects a fingerprint into the
machine-readable slab slice schedules and prune thresholds the item-1
PR consumes (``BENCH_anatomy.json``).

Fleet story: :meth:`WorkloadAnatomy.publish` mirrors each sketch's top
terms into ``repro_hot_terms{kind=,term=}`` gauges.  Gauges merge by
summation in :meth:`~repro.obs.registry.MetricsRegistry.merge_dump`,
and summing per-term counts over the union of per-shard top sets *is*
the standard distributed SpaceSaving merge — so the coordinator's
fleet-merged registry shows fleet-wide heavy hitters without any new
transfer path.

See ``docs/observability.md`` (metric catalog + fingerprint schema) and
the capacity-triage runbook in ``docs/operations.md``.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from heapq import heappop, heappush
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.core.errors import ConfigurationError
from repro.obs.registry import (COUNT_BUCKETS, Histogram, MetricsRegistry,
                                NULL_HISTOGRAM)

#: Mirrors ``repro.core.summary_index.INDICANT_KINDS`` (which cannot be
#: imported here: ``core.bundle`` imports ``repro.obs`` and would close
#: an import cycle through this module).  Kept in lock-step by
#: ``tests/obs/test_anatomy.py``.
INDICANT_KINDS = ("hashtag", "url", "keyword", "user")

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.engine import ProvenanceIndexer
    from repro.core.message import Message

__all__ = [
    "SpaceSavingSketch",
    "MemoryAccountant",
    "WorkloadAnatomy",
    "capacity_report",
    "deep_size_bytes",
    "diff_fingerprints",
    "read_fingerprints",
    "render_capacity_report",
    "render_diff",
    "render_fingerprint",
    "FINGERPRINT_VERSION",
]

#: Schema version stamped into every fingerprint record.
FINGERPRINT_VERSION = 1

#: Components the accountant attributes bytes to, in walk order.
#: Order matters: objects shared between components (interned term
#: strings living in both index postings and bundle counters) are
#: charged to the first component that reaches them.
MEMORY_COMPONENTS = ("index", "pool", "dedup_cache", "guard")


class SpaceSavingSketch:
    """Deterministic bounded-memory heavy hitters (SpaceSaving).

    Tracks at most ``capacity`` items.  For every tracked item the
    sketch holds ``count`` (an over-estimate of the item's true weight)
    and ``error`` (the maximum over-estimation: the count the evicted
    minimum had when this item took its slot) — so
    ``count - error <= true weight <= count``, the classic guarantee.

    Eviction picks the minimum by ``(count, item)`` — ties broken on
    the term string — and the min is found through a lazily-compacted
    heap, so a miss costs ``O(log capacity)`` amortized instead of the
    naive ``O(capacity)`` scan.  All state is integer counters ordered
    by plain tuples: replaying the same stream reproduces identical
    ``dump_state()`` output.
    """

    __slots__ = ("capacity", "observed", "observed_weight",
                 "_counts", "_errors", "_heap")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"sketch capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Observations / total weight seen, including evicted mass —
        #: the denominator for heavy-hitter share computations.
        self.observed = 0
        self.observed_weight = 0
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}
        # Lazy min-heap of (count, item) entries; an entry is stale when
        # its count no longer matches _counts[item].
        self._heap: list[tuple[int, str]] = []

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, item: str) -> bool:
        return item in self._counts

    def observe(self, item: str, weight: int = 1) -> None:
        """Count one occurrence of ``item`` with the given weight."""
        self.observed += 1
        self.observed_weight += weight
        counts = self._counts
        current = counts.get(item)
        if current is not None:
            counts[item] = current + weight
            heappush(self._heap, (current + weight, item))
        elif len(counts) < self.capacity:
            counts[item] = weight
            self._errors[item] = 0
            heappush(self._heap, (weight, item))
        else:
            min_count, victim = self._pop_min()
            del counts[victim]
            del self._errors[victim]
            counts[item] = min_count + weight
            self._errors[item] = min_count
            heappush(self._heap, (min_count + weight, item))
        if len(self._heap) > 8 * self.capacity:
            self._compact()

    def _pop_min(self) -> tuple[int, str]:
        """Pop heap entries until one reflects a live count."""
        heap = self._heap
        counts = self._counts
        while heap:
            count, item = heappop(heap)
            if counts.get(item) == count:
                return count, item
        # Every entry was stale (possible after merge_state); rebuild.
        self._compact()
        return heappop(self._heap)

    def _compact(self) -> None:
        self._heap = [(count, item)
                      for item, count in self._counts.items()]
        self._heap.sort()

    def top(self, n: "int | None" = None) -> "list[tuple[str, int, int]]":
        """``(item, count, error)`` rows, heaviest first (stable order)."""
        rows = sorted(((item, count, self._errors[item])
                       for item, count in self._counts.items()),
                      key=lambda row: (-row[1], row[0]))
        return rows if n is None else rows[:n]

    def count(self, item: str) -> int:
        """The (over-estimated) tracked count of ``item``; 0 if untracked."""
        return self._counts.get(item, 0)

    def dump_state(self) -> "dict[str, Any]":
        """JSON-able full state; feed to :meth:`merge_state` elsewhere."""
        return {
            "capacity": self.capacity,
            "observed": self.observed,
            "observed_weight": self.observed_weight,
            "items": [[item, count, error]
                      for item, count, error in self.top()],
        }

    def merge_state(self, state: "Mapping[str, Any]") -> None:
        """Fold another sketch's :meth:`dump_state` into this one.

        Counts and errors of shared items add (preserving the
        upper-bound property); the combined set is then truncated back
        to ``capacity`` keeping the heaviest ``(count, item)`` rows.
        Truncated mass stays in ``observed_weight``, so share
        computations remain conservative.
        """
        self.observed += int(state["observed"])
        self.observed_weight += int(state["observed_weight"])
        counts = self._counts
        errors = self._errors
        for item, count, error in state["items"]:
            item = str(item)
            if item in counts:
                counts[item] += int(count)
                errors[item] += int(error)
            else:
                counts[item] = int(count)
                errors[item] = int(error)
        if len(counts) > self.capacity:
            keep = sorted(counts.items(),
                          key=lambda kv: (-kv[1], kv[0]))[: self.capacity]
            self._counts = dict(keep)
            self._errors = {item: errors[item] for item, _ in keep}
        self._compact()


# ----------------------------------------------------------------------
# Deep-size memory accounting
# ----------------------------------------------------------------------

#: Leaf types: sized with ``sys.getsizeof`` alone, never recursed into.
#: ``array.array`` is a leaf: ``getsizeof`` already covers its packed
#: buffer, and iterating it would box every element of the slab-backend
#: postings arenas into throwaway ints.
_ATOMIC_TYPES = (str, bytes, bytearray, int, float, complex, bool,
                 type(None), range, memoryview, array)


def deep_size_bytes(root: Any, seen: "set[int] | None" = None) -> int:
    """Measured transitive footprint of ``root`` in bytes.

    Iterative ``sys.getsizeof`` walk over containers (dict / list /
    tuple / set / frozenset and subclasses), object ``__dict__`` and
    ``__slots__``.  ``seen`` dedups shared objects by id — pass one set
    across several calls to attribute each shared object to exactly one
    component.  Types, modules and callables are never entered (sizing
    a class through an attribute would drag in the whole module graph),
    and numpy arrays are sized by ``getsizeof`` alone (which includes
    their buffer for owning arrays).  Deterministic for identical
    object state, which is all the fingerprint needs.
    """
    if seen is None:
        seen = set()
    total = 0
    stack = [root]
    getsizeof = sys.getsizeof
    while stack:
        obj = stack.pop()
        identity = id(obj)
        if identity in seen:
            continue
        seen.add(identity)
        try:
            total += getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic C objects
            continue
        if isinstance(obj, _ATOMIC_TYPES):
            continue
        if isinstance(obj, type) or callable(obj):
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        elif type(obj).__module__ == "numpy":
            continue
        else:
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            for klass in type(obj).__mro__:
                for slot in getattr(klass, "__slots__", ()):
                    if slot in ("__dict__", "__weakref__"):
                        continue
                    try:
                        stack.append(getattr(obj, slot))
                    except AttributeError:
                        continue
            if hasattr(obj, "__iter__") and isinstance(
                    obj, (Iterable,)) and not hasattr(obj, "__next__"):
                # deque and friends: containers without dict/slots.
                if not attrs and not hasattr(type(obj), "__slots__"):
                    try:
                        stack.extend(obj)
                    except TypeError:  # pragma: no cover
                        continue
    return total


class MemoryAccountant:
    """Attributes measured bytes to the engine's resident structures.

    Replaces guessed byte-model estimates with a real walk: the summary
    index's postings maps, the pool's bundles, the dedup caches (LSH
    band index, shingle map, MinHash signature cache) and the guard's
    buffers.  One shared ``seen`` set per measurement attributes every
    shared object to the first component in :data:`MEMORY_COMPONENTS`
    walk order.

    The walk is on-demand (export / fingerprint time), never per
    ingest — ``approximate_memory_bytes()`` stays the cheap hot-path
    estimate, now with its drift measured instead of assumed.
    """

    def measure(self, engine: "ProvenanceIndexer",
                guard: "Any | None" = None) -> "dict[str, Any]":
        """One attribution pass; returns measured/estimated/drift."""
        seen: set[int] = set()
        measured = {
            "index": deep_size_bytes(engine.summary_index.memory_root(),
                                     seen),
            "pool": deep_size_bytes(engine.pool._bundles, seen),
        }
        detector = getattr(guard, "detector", None)
        measured["dedup_cache"] = (
            deep_size_bytes(detector, seen) if detector is not None else 0)
        measured["guard"] = (
            deep_size_bytes(guard, seen) if guard is not None else 0)
        measured["total"] = sum(measured[c] for c in MEMORY_COMPONENTS)
        estimated = {
            "index": engine.summary_index.approximate_memory_bytes(),
            "pool": engine.pool.approximate_memory_bytes(),
        }
        drift = {
            component: (round(measured[component] / estimate - 1.0, 6)
                        if estimate > 0 else 0.0)
            for component, estimate in estimated.items()
        }
        return {"measured": measured, "estimated": estimated,
                "drift": drift}


# ----------------------------------------------------------------------
# The streaming characterizer
# ----------------------------------------------------------------------


class WorkloadAnatomy:
    """Streaming workload characterization riding the ingest path.

    Attach as ``Observability.anatomy``; the engine calls
    :meth:`observe_ingest` once per message after the index update (one
    ``is None`` check on the unattached hot path).  Internally a
    deterministic 1-in-``sample_every`` systematic stride keeps the
    attached cost low: heavy hitters and shape quantiles are statistics,
    and a fixed-stride sample of a high-volume stream estimates them
    faithfully while the *exact* per-kind postings distribution is
    recomputed from the live index at fingerprint time anyway.

    Parameters
    ----------
    registry:
        The engine's registry; shape histograms and ``repro_hot_terms``
        / memory gauges are registered here.  ``None`` keeps the
        sketches and accountant working standalone (no metric export).
    sketch_capacity:
        Tracked terms per indicant kind (bounded memory).
    sample_every:
        Observe every Nth message (systematic stride; deterministic).
    publish_top:
        Terms per kind mirrored into ``repro_hot_terms`` gauges.  Kept
        well under the registry's per-family label cap — hot-term
        churn beyond the cap lands in the overflow child by design.
    publish_every:
        Auto-publish cadence in *sampled* messages; :meth:`publish` can
        also be called explicitly (the fleet worker does, before each
        telemetry dump).
    """

    KINDS = INDICANT_KINDS

    def __init__(self, registry: "MetricsRegistry | None" = None, *,
                 sketch_capacity: int = 64,
                 sample_every: int = 8,
                 publish_top: int = 8,
                 publish_every: int = 2048) -> None:
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}")
        self.registry = registry
        self.sample_every = sample_every
        self.publish_top = publish_top
        self.publish_every = publish_every
        self.sketches = {kind: SpaceSavingSketch(sketch_capacity)
                         for kind in self.KINDS}
        self.accountant = MemoryAccountant()
        self.seen = 0      # messages offered
        self.sampled = 0   # messages actually observed
        self.last_account: "dict[str, Any] | None" = None
        self._last_fingerprint: "dict[str, Any] | None" = None
        if registry is not None:
            self._postings_hist = {
                kind: registry.histogram(
                    "repro_postings_length",
                    help="Postings-list length of indicant terms touched "
                         "by sampled ingests (size-biased: the hot-path "
                         "view; exact per-kind quantiles live in the "
                         "workload fingerprint)",
                    labels={"kind": kind}, buckets=COUNT_BUCKETS)
                for kind in self.KINDS
            }
        else:
            self._postings_hist = dict.fromkeys(self.KINDS, NULL_HISTOGRAM)

    # -- hot path ------------------------------------------------------

    def observe_ingest(self, message: "Message",
                       keywords: "frozenset[str]",
                       index: "Any") -> None:
        """Record one ingested message (post-index-update).

        Weight = the length of the postings list each touched term now
        has: a term's sketch count then approximates the candidate
        fan-in it *causes*, which is the skew the prefix-filter pruning
        of ROADMAP item 3 needs — not raw occurrence frequency.
        """
        self.seen += 1
        if self.seen % self.sample_every:
            return
        self.sampled += 1
        # Sorted: frozenset iteration order varies with the per-process
        # string-hash seed, and both the sketch's evictions and the
        # histogram reservoirs are order-sensitive — fingerprints must
        # be byte-identical across processes.
        for kind, terms in (("hashtag", sorted(message.hashtags)),
                            ("url", sorted(message.urls)),
                            ("keyword", sorted(keywords)),
                            ("user", (message.user,))):
            sketch = self.sketches[kind]
            hist = self._postings_hist[kind]
            for term in terms:
                length = index.postings_length(kind, term)
                hist.observe(length)
                sketch.observe(term, length if length > 0 else 1)
        if self.publish_every and self.sampled % self.publish_every == 0:
            self.publish()

    # -- registry bridge ----------------------------------------------

    def publish(self) -> None:
        """Mirror sketch tops into ``repro_hot_terms`` gauges.

        Stale children (terms that dropped out of a top set) are zeroed
        rather than removed — the registry has no removal — so a fleet
        merge sums only currently-hot terms.  Gauge summation across
        shard dumps is the distributed SpaceSaving merge.
        """
        registry = self.registry
        if registry is None:
            return
        live: set[tuple[str, str]] = set()
        for kind in self.KINDS:
            for term, count, _ in self.sketches[kind].top(self.publish_top):
                registry.gauge(
                    "repro_hot_terms",
                    help="SpaceSaving heavy-hitter weight of currently "
                         "hot indicant terms (weight ~ caused fan-in)",
                    labels={"kind": kind, "term": term}).set(count)
                live.add((kind, term))
        family = registry._families.get("repro_hot_terms")
        if family is not None:
            for gauge in family.children.values():
                key = (gauge.labels.get("kind", ""),
                       gauge.labels.get("term", ""))
                if key not in live:
                    gauge.set(0)

    def account(self, engine: "ProvenanceIndexer",
                guard: "Any | None" = None) -> "dict[str, Any]":
        """Run the memory accountant and publish its gauges."""
        account = self.accountant.measure(engine, guard)
        registry = self.registry
        if registry is not None:
            for component in MEMORY_COMPONENTS + ("total",):
                registry.gauge(
                    "repro_memory_measured_bytes", unit="bytes",
                    help="Deep-size measured bytes per resident "
                         "structure (on-demand walk, not per-ingest)",
                    labels={"component": component},
                ).set(account["measured"][component])
            for component, ratio in account["drift"].items():
                registry.gauge(
                    "repro_memory_drift_ratio",
                    help="measured/approximate_memory_bytes() - 1 "
                         "(0 = the cheap estimate is calibrated)",
                    labels={"component": component}).set(ratio)
        self.last_account = account
        return account

    # -- fingerprints --------------------------------------------------

    def fingerprint(self, engine: "ProvenanceIndexer",
                    guard: "Any | None" = None) -> "dict[str, Any]":
        """One byte-deterministic workload-fingerprint record.

        Everything is derived from replay-deterministic state (seeded
        reservoirs, integer counters, ``getsizeof`` of identical
        structures); there is deliberately **no wall-clock field**, so
        two seeded runs emit byte-identical JSONL.
        """
        index = engine.summary_index
        account = self.account(engine, guard)
        postings = {}
        index_shape = {"terms": {}, "entries": {}}
        for kind in self.KINDS:
            lengths = index.postings_lengths(kind)
            postings[kind] = _exact_distribution(lengths)
            index_shape["terms"][kind] = index.term_count(kind)
            index_shape["entries"][kind] = index.entry_count(kind)
        messages = engine.stats.messages_ingested
        record = {
            "version": FINGERPRINT_VERSION,
            "messages": messages,
            "sample_every": self.sample_every,
            "sampled": self.sampled,
            "sketches": {kind: self.sketches[kind].dump_state()
                         for kind in self.KINDS},
            "postings": postings,
            "touched_postings": {
                kind: _hist_stats(self._postings_hist[kind])
                for kind in self.KINDS},
            "fanin": self._fanin_section(),
            "eviction": self._eviction_section(),
            "index": index_shape,
            "memory": account,
            "growth": self._growth_section(engine, account, index_shape),
        }
        self._last_fingerprint = record
        return record

    def _fanin_section(self) -> "dict[str, Any]":
        registry = self.registry
        if registry is None:
            return {}
        section: "dict[str, Any]" = {}
        for phase in ("fetched", "scored"):
            hist = registry.find("repro_candidate_fanin", {"phase": phase})
            if isinstance(hist, Histogram):
                section[phase] = _hist_stats(hist)
        capped = registry.find("repro_candidate_capped_total")
        if capped is not None:
            section["capped_ingests"] = int(capped.value)
        return section

    def _eviction_section(self) -> "dict[str, Any]":
        registry = self.registry
        if registry is None:
            return {}
        section: "dict[str, Any]" = {}
        size = registry.find("repro_evicted_bundle_size")
        if isinstance(size, Histogram):
            section["size"] = _hist_stats(size)
        age = registry.find("repro_evicted_bundle_age_seconds")
        if isinstance(age, Histogram):
            section["age_seconds"] = _hist_stats(age)
        return section

    def _growth_section(self, engine: "ProvenanceIndexer",
                        account: "dict[str, Any]",
                        index_shape: "dict[str, Any]",
                        ) -> "dict[str, Any]":
        messages = engine.stats.messages_ingested
        terms = sum(index_shape["terms"].values())
        entries = sum(index_shape["entries"].values())
        per_1k = 1000.0 / messages if messages else 0.0
        growth = {
            "terms_per_1k_msgs": round(terms * per_1k, 6),
            "entries_per_1k_msgs": round(entries * per_1k, 6),
            "measured_bytes_per_msg": round(
                account["measured"]["total"] / messages, 6
            ) if messages else 0.0,
        }
        previous = self._last_fingerprint
        if previous is not None:
            dm = messages - previous["messages"]
            if dm > 0:
                prev_terms = sum(previous["index"]["terms"].values())
                prev_entries = sum(previous["index"]["entries"].values())
                growth["interval"] = {
                    "messages": dm,
                    "new_terms_per_1k_msgs": round(
                        (terms - prev_terms) * 1000.0 / dm, 6),
                    "new_entries_per_1k_msgs": round(
                        (entries - prev_entries) * 1000.0 / dm, 6),
                }
        return growth

    @staticmethod
    def write_fingerprint(path: "str | os.PathLike[str]",
                          record: "Mapping[str, Any]") -> None:
        """Append one fingerprint as canonical JSONL (byte-stable)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")) + "\n")


def read_fingerprints(path: "str | os.PathLike[str]",
                      ) -> "Iterator[dict[str, Any]]":
    """Yield fingerprint records back out of a JSONL file."""
    source = Path(path)
    if not source.exists():
        return
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError:
                continue


# ----------------------------------------------------------------------
# Derived statistics helpers
# ----------------------------------------------------------------------


def _hist_stats(hist: "Histogram") -> "dict[str, float]":
    """Rounded registry-histogram stats (p95 swapped for p90-free set)."""
    if hist is NULL_HISTOGRAM or not hist.count:
        return {"count": 0}
    return {
        "count": int(hist.count),
        "mean": round(hist.mean, 6),
        "p50": round(hist.percentile(50), 6),
        "p95": round(hist.percentile(95), 6),
        "p99": round(hist.percentile(99), 6),
        "max": round(hist.max, 6),
    }


def _exact_distribution(lengths: "list[int]") -> "dict[str, float]":
    """Exact quantiles of one kind's postings-length population."""
    if not lengths:
        return {"count": 0}
    ordered = sorted(lengths)
    total = len(ordered)

    def rank(q: float) -> int:
        return ordered[min(total - 1, int(q * (total - 1) + 0.5))]

    return {
        "count": total,
        "sum": sum(ordered),
        "mean": round(sum(ordered) / total, 6),
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "max": ordered[-1],
        "singleton_fraction": round(
            sum(1 for n in ordered if n == 1) / total, 6),
    }


def _next_pow2(value: float) -> int:
    n = max(1, int(value + 0.999999))
    return 1 << (n - 1).bit_length()


# ----------------------------------------------------------------------
# Capacity projection (consumed by the ROADMAP item-1 PR)
# ----------------------------------------------------------------------


def capacity_report(fingerprint: "Mapping[str, Any]") -> "dict[str, Any]":
    """Project a fingerprint into slab + pruning recommendations.

    Slab schedule per indicant kind, after Asadi & Lin's
    exponentially-growing slices: the initial slice holds the median
    postings list outright, doubles per growth step, and caps at the
    p99 (lists beyond it spill to an overflow arena).  Prune
    thresholds for item 3's prefix filtering: the per-kind hot-term
    fan-in share says how much of Algorithm 1's candidate mass the
    sketch's tracked terms account for, and the recommended
    posting-scan cap bounds what one term may contribute.
    """
    slabs: "dict[str, Any]" = {}
    for kind, stats in fingerprint.get("postings", {}).items():
        if not stats.get("count"):
            continue
        initial = _next_pow2(stats["p50"])
        ceiling = _next_pow2(max(stats["p99"], initial))
        steps = max(0, (ceiling // initial).bit_length() - 1)
        entries = stats["sum"]
        # Every list rounds up to its power-of-two slice: the waste the
        # growth schedule pays for O(1) append.
        slabs[kind] = {
            "initial_slice": initial,
            "growth_factor": 2,
            "growth_steps_to_p99": steps,
            "max_slice": ceiling,
            "lists": stats["count"],
            "entries": entries,
            "singleton_fraction": stats.get("singleton_fraction", 0.0),
            "projected_slab_bytes": entries * 8,  # id + count, packed
        }
    pruning: "dict[str, Any]" = {}
    for kind, sketch in fingerprint.get("sketches", {}).items():
        weight = sketch.get("observed_weight", 0)
        items = sketch.get("items", [])
        if not weight or not items:
            continue
        hot_weight = sum(int(row[1]) for row in items)
        stats = fingerprint.get("postings", {}).get(kind, {})
        pruning[kind] = {
            "hot_terms_tracked": len(items),
            "hot_fanin_share": round(min(1.0, hot_weight / weight), 6),
            "posting_scan_cap": int(stats.get("p99", 0)) or None,
        }
    fanin = fingerprint.get("fanin", {})
    fetched = fanin.get("fetched", {})
    recommendations = []
    if slabs:
        widest = max(slabs, key=lambda k: slabs[k]["max_slice"])
        recommendations.append(
            f"slab schedule: start slices at "
            f"{ {k: v['initial_slice'] for k, v in slabs.items()} }, "
            f"double per growth step, overflow arena beyond "
            f"{slabs[widest]['max_slice']} ({widest})")
        singleton = {k: v["singleton_fraction"] for k, v in slabs.items()}
        hungriest = max(singleton, key=lambda k: singleton[k])
        if singleton[hungriest] > 0.5:
            recommendations.append(
                f"{singleton[hungriest]:.0%} of {hungriest} lists are "
                "singletons: inline the first posting in the term slot "
                "before allocating a slice")
    if fetched.get("count"):
        recommendations.append(
            f"candidate cap: fetched fan-in p99 is {fetched['p99']:.0f} "
            f"(p50 {fetched['p50']:.0f}); a prefix-filter cap near the "
            "p99 prunes only tail ingests")
    for kind, rule in pruning.items():
        if rule["hot_fanin_share"] >= 0.3:
            recommendations.append(
                f"{kind}: {rule['hot_terms_tracked']} hot terms cause "
                f"{rule['hot_fanin_share']:.0%} of scanned fan-in — "
                "prefix-filter these first")
    return {
        "slab_schedule": slabs,
        "prune_thresholds": pruning,
        "fanin": fanin,
        "memory": fingerprint.get("memory", {}),
        "recommendations": recommendations,
    }


# ----------------------------------------------------------------------
# Rendering (repro anatomy / repro top)
# ----------------------------------------------------------------------


def _format_stats_row(stats: "Mapping[str, Any]") -> str:
    if not stats.get("count"):
        return "no data"
    parts = [f"n={stats['count']}"]
    for key in ("p50", "p90", "p95", "p99", "max"):
        if key in stats:
            value = stats[key]
            parts.append(f"{key}={value:g}")
    return "  ".join(parts)


def render_fingerprint(record: "Mapping[str, Any]") -> str:
    """Human-readable report of one fingerprint record."""
    from repro.bench.reporting import ascii_table, human_bytes

    sections = []
    rows = []
    for kind, sketch in sorted(record.get("sketches", {}).items()):
        items = sketch.get("items", [])[:5]
        rows.append([kind, sketch.get("observed", 0),
                     ", ".join(f"{item}({count})"
                               for item, count, _ in items) or "—"])
    sections.append(ascii_table(
        ["kind", "observed", "top terms (sketch weight ~ fan-in)"], rows,
        title=f"workload fingerprint — {record.get('messages', 0)} msgs, "
              f"1/{record.get('sample_every', 1)} sampled"))

    rows = [[kind, _format_stats_row(stats)]
            for kind, stats in sorted(record.get("postings", {}).items())]
    for phase, stats in sorted(record.get("fanin", {}).items()):
        if isinstance(stats, dict):
            rows.append([f"fan-in {phase}", _format_stats_row(stats)])
        else:
            rows.append([f"fan-in {phase}", str(stats)])
    for name, stats in sorted(record.get("eviction", {}).items()):
        rows.append([f"eviction {name}", _format_stats_row(stats)])
    sections.append(ascii_table(["distribution", "shape"], rows,
                                title="shape distributions"))

    memory = record.get("memory", {})
    if memory:
        rows = []
        for component in MEMORY_COMPONENTS + ("total",):
            measured = memory.get("measured", {}).get(component, 0)
            estimate = memory.get("estimated", {}).get(component)
            drift = memory.get("drift", {}).get(component)
            rows.append([
                component, human_bytes(measured),
                human_bytes(estimate) if estimate is not None else "—",
                f"{drift * 100:+.1f}%" if drift is not None else "—"])
        sections.append(ascii_table(
            ["component", "measured", "estimated", "drift"], rows,
            title="memory attribution (deep-size walk)"))

    growth = record.get("growth", {})
    if growth:
        rows = [[key, f"{value:g}"] for key, value in sorted(growth.items())
                if not isinstance(value, dict)]
        interval = growth.get("interval")
        if interval:
            rows.extend([[f"interval.{key}", f"{value:g}"]
                         for key, value in sorted(interval.items())])
        sections.append(ascii_table(["growth", "value"], rows,
                                    title="growth rates"))
    return "\n\n".join(sections)


def render_capacity_report(report: "Mapping[str, Any]") -> str:
    """Human-readable capacity projection."""
    from repro.bench.reporting import ascii_table

    sections = []
    slabs = report.get("slab_schedule", {})
    if slabs:
        sections.append(ascii_table(
            ["kind", "initial", "steps", "max", "lists", "entries",
             "singletons"],
            [[kind, plan["initial_slice"], plan["growth_steps_to_p99"],
              plan["max_slice"], plan["lists"], plan["entries"],
              f"{plan['singleton_fraction']:.0%}"]
             for kind, plan in sorted(slabs.items())],
            title="slab slice schedule (power-of-two growth)"))
    pruning = report.get("prune_thresholds", {})
    if pruning:
        sections.append(ascii_table(
            ["kind", "hot terms", "fan-in share", "scan cap"],
            [[kind, rule["hot_terms_tracked"],
              f"{rule['hot_fanin_share']:.1%}",
              rule["posting_scan_cap"] or "—"]
             for kind, rule in sorted(pruning.items())],
            title="prefix-filter prune thresholds"))
    recommendations = report.get("recommendations", [])
    if recommendations:
        sections.append("recommendations:\n" + "\n".join(
            f"  - {line}" for line in recommendations))
    return "\n\n".join(sections) if sections else "no capacity data"


def diff_fingerprints(before: "Mapping[str, Any]",
                      after: "Mapping[str, Any]") -> "dict[str, Any]":
    """Structured drift between two fingerprints (same schema)."""
    hot_moves = {}
    for kind in INDICANT_KINDS:
        old_top = [row[0] for row in
                   before.get("sketches", {}).get(kind, {}).get("items", [])]
        new_top = [row[0] for row in
                   after.get("sketches", {}).get(kind, {}).get("items", [])]
        entered = [t for t in new_top[:10] if t not in old_top[:10]]
        left = [t for t in old_top[:10] if t not in new_top[:10]]
        if entered or left:
            hot_moves[kind] = {"entered": entered, "left": left}
    scalars = {}
    for label, path in (
            ("messages", ("messages",)),
            ("terms_per_1k_msgs", ("growth", "terms_per_1k_msgs")),
            ("entries_per_1k_msgs", ("growth", "entries_per_1k_msgs")),
            ("measured_bytes_per_msg", ("growth", "measured_bytes_per_msg")),
            ("measured_total_bytes", ("memory", "measured", "total")),
            ("index_drift", ("memory", "drift", "index")),
            ("pool_drift", ("memory", "drift", "pool")),
            ("fanin_fetched_p99", ("fanin", "fetched", "p99")),
            ("fanin_scored_p99", ("fanin", "scored", "p99")),
    ):
        old = _dig(before, path)
        new = _dig(after, path)
        if old is None and new is None:
            continue
        scalars[label] = {"before": old, "after": new}
    return {"scalars": scalars, "hot_terms": hot_moves}


def _dig(record: "Mapping[str, Any]", path: "tuple[str, ...]"):
    node: Any = record
    for key in path:
        if not isinstance(node, Mapping) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def render_diff(diff: "Mapping[str, Any]") -> str:
    """Human-readable fingerprint drift."""
    from repro.bench.reporting import ascii_table

    rows = []
    for label, pair in sorted(diff.get("scalars", {}).items()):
        old, new = pair.get("before"), pair.get("after")
        delta = ""
        if isinstance(old, (int, float)) and isinstance(new, (int, float)):
            delta = f"{new - old:+g}"
        rows.append([label,
                     "—" if old is None else f"{old:g}",
                     "—" if new is None else f"{new:g}", delta])
    sections = [ascii_table(["indicator", "before", "after", "delta"],
                            rows, title="fingerprint drift")]
    hot = diff.get("hot_terms", {})
    if hot:
        sections.append(ascii_table(
            ["kind", "entered top-10", "left top-10"],
            [[kind, ", ".join(moves["entered"]) or "—",
              ", ".join(moves["left"]) or "—"]
             for kind, moves in sorted(hot.items())],
            title="heavy-hitter churn"))
    return "\n\n".join(sections)
