"""Metrics registry: named counters, gauges and streaming histograms.

The evaluation of the paper (Figs. 11-13) is all about *measuring the
maintenance pipeline* — per-stage time cost, pool memory, throughput —
and the degradation ladder of :mod:`repro.reliability.overload` *acts*
on those same signals.  Before this module, each consumer kept its own
ad-hoc copy (``StageTimers`` floats, benchmark-only memory sampling, a
private EWMA inside the ladder).  The registry makes every signal a
named, labelled metric with exactly one producer:

* :class:`Counter` — a monotonically increasing total.  A counter may
  instead be *callback-backed*: its value is computed on read from an
  existing authoritative field (e.g. ``EngineStats.messages_ingested``),
  so exporting it adds **zero** hot-path work and can never disagree
  with the engine's own accounting.
* :class:`Gauge` — a point-in-time value, settable or callback-backed
  (e.g. ``pool.approximate_memory_bytes``).  Callback gauges are *views*:
  reading one re-computes the truth, so the dashboard, ``repro health``
  and the benchmarks all see the identical number.
* :class:`Histogram` — fixed cumulative buckets (Prometheus-style) plus
  a bounded reservoir (Vitter's Algorithm R, seeded RNG) for streaming
  p50/p95/p99 estimates.  The ``sum`` doubles as the stage-time
  accumulator that used to live in ``StageTimers``.

Labels are supported with a per-family cardinality cap: once a family
holds ``max_label_sets`` children, further label sets collapse into one
shared ``overflow="true"`` child (and are counted), so a bug that
interpolates user input into a label cannot eat the heap.

A registry built with ``enabled=False`` hands out shared no-op counter /
histogram singletons whose ``inc``/``observe`` do nothing, keeping the
disabled hot path at the cost of one method call.  Gauges stay real even
when disabled — they are cheap (reads happen at export/decision time,
not per message) and the overload ladder's pressure inputs must keep
working with telemetry off.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Callable, Iterator, Mapping

from repro.core.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_HISTOGRAM",
    "DEFAULT_LATENCY_BUCKETS",
    "COUNT_BUCKETS",
]

#: Log-spaced latency buckets (seconds) covering ~1 µs .. 10 s.  The
#: sub-10 µs decade exists for the vectorized hot path the roadmap
#: targets: a post-10x per-message ingest lands well under a
#: millisecond, and a histogram that bottoms out at 10 µs would lump
#: the entire distribution into its first two buckets.  Dumps recorded
#: under the old (10 µs-bottom) bucket layout still merge — see
#: :meth:`Histogram.merge_state`.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-two count buckets for cardinality-shaped distributions —
#: postings-list lengths, per-ingest candidate fan-in, bundle sizes.
#: Lives here (not in ``obs.anatomy``) because the engine's always-on
#: fan-in histograms use it too and the engine must not import anatomy.
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

#: Label set assigned to the shared overflow child of a capped family.
OVERFLOW_LABELS: Mapping[str, str] = {"overflow": "true"}

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: "Mapping[str, str] | None") -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def series_name(name: str, labels: "Mapping[str, str] | None") -> str:
    """Canonical ``name{k=v,...}`` series identifier (stable ordering)."""
    key = _label_key(labels)
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total, optionally callback-backed."""

    __slots__ = ("name", "labels", "_value", "_callback")

    def __init__(self, name: str, *,
                 labels: "Mapping[str, str] | None" = None,
                 callback: "Callable[[], float] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._callback = callback

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        """Current total (computed on read when callback-backed)."""
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Gauge:
    """A point-in-time value, settable or a callback-backed view."""

    __slots__ = ("name", "labels", "_value", "_callback")

    def __init__(self, name: str, *,
                 labels: "Mapping[str, str] | None" = None,
                 callback: "Callable[[], float] | None" = None) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        """Overwrite the gauge (ignored for callback-backed gauges)."""
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the stored value by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the stored value by ``-amount``."""
        self._value -= amount

    @property
    def value(self) -> float:
        """Current value (computed on read when callback-backed)."""
        if self._callback is not None:
            return float(self._callback())
        return self._value


class Histogram:
    """Fixed cumulative buckets plus a bounded quantile reservoir.

    ``observe`` is the only hot-path operation: one bisect over the
    bucket bounds, two float adds, and (once the reservoir is full) one
    RNG draw for Vitter's Algorithm R.  Percentile reads sort the
    reservoir and are meant for export/dashboard time.

    The reservoir RNG is seeded, so a replayed stream produces the exact
    same quantile estimates run after run.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "sum", "min", "max", "_reservoir", "_reservoir_size",
                 "_rng")

    def __init__(self, name: str, *,
                 labels: "Mapping[str, str] | None" = None,
                 buckets: "tuple[float, ...] | None" = None,
                 reservoir_size: int = 512,
                 seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ConfigurationError(
                f"reservoir_size must be >= 1, got {reservoir_size}")
        bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram buckets must be sorted, got {bounds}")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._reservoir: list[float] = []
        self._reservoir_size = reservoir_size
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        reservoir = self._reservoir
        if len(reservoir) < self._reservoir_size:
            reservoir.append(value)
        else:
            # int(random() * count) over randrange(count): same uniform
            # slot choice (float bias is ~2^-53), a fraction of the
            # cost — this runs once per observation on the ingest hot
            # path, and randrange's rejection sampling dominated the
            # whole metrics overhead budget.
            slot = int(self._rng.random() * self.count)
            if slot < self._reservoir_size:
                reservoir[slot] = value

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile estimate from the reservoir.

        ``q`` in [0, 100].  Returns 0.0 before the first observation.
        Exact while the observation count fits the reservoir; an
        unbiased uniform-sample estimate afterwards.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        rank = max(0, min(len(ordered) - 1,
                          int(round(q / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> "list[tuple[float, int]]":
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def stats(self) -> "dict[str, float]":
        """Summary dict for snapshots / the dashboard."""
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def dump_state(self) -> "dict[str, object]":
        """Full JSON-able internal state (buckets included).

        Unlike :meth:`stats` this loses nothing: another process can
        rebuild an equivalent histogram from it with
        :meth:`merge_state`.  This is how :mod:`repro.runtime` workers
        ship their latency histograms to the coordinator's fleet view.
        """
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: "Mapping[str, object]") -> None:
        """Fold a :meth:`dump_state` payload into this histogram.

        Bucket bounds must match — or be a *subset* of this histogram's
        bounds, the shape produced when the default bucket layout gains
        finer buckets between releases.  A subset dump is migrated by
        crediting each incoming bucket to the local bucket sharing its
        upper bound, which preserves every cumulative count at the
        bounds both layouts share (the finer intermediate buckets
        simply see none of the old observations).  Anything else raises.

        The reservoir is merged by filling remaining capacity in
        arrival order — deterministic, and exact until the combined
        sample count exceeds the reservoir size (after which merged
        percentiles are an approximation, which is all a fleet-wide
        view needs).
        """
        bounds = tuple(state["bounds"])  # type: ignore[arg-type]
        counts = [int(b) for b in state["bucket_counts"]]  # type: ignore[call-overload]
        if bounds != self.bounds:
            if not set(bounds) <= set(self.bounds):
                raise ConfigurationError(
                    f"histogram {self.name}: cannot merge mismatched "
                    f"buckets {bounds} into {self.bounds}")
            remapped = [0] * (len(self.bounds) + 1)
            for index, bound in enumerate(bounds):
                remapped[self.bounds.index(bound)] += counts[index]
            remapped[-1] += counts[-1]
            counts = remapped
        for index, bucket in enumerate(counts):
            self.bucket_counts[index] += bucket
        self.count += int(state["count"])  # type: ignore[call-overload]
        self.sum += float(state["sum"])  # type: ignore[arg-type]
        low, high = state.get("min"), state.get("max")
        if low is not None:
            self.min = min(self.min, float(low))  # type: ignore[arg-type]
        if high is not None:
            self.max = max(self.max, float(high))  # type: ignore[arg-type]
        reservoir = state.get("reservoir") or ()
        room = self._reservoir_size - len(self._reservoir)
        if room > 0:
            self._reservoir.extend(
                float(v) for v in tuple(reservoir)[:room])  # type: ignore[arg-type]


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by a disabled registry."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op
        pass


NULL_COUNTER = _NullCounter("null")
NULL_HISTOGRAM = _NullHistogram("null", buckets=(1.0,), reservoir_size=1)


class MetricFamily:
    """All children of one metric name (same kind, varying labels)."""

    __slots__ = ("name", "kind", "help", "unit", "children", "overflow")

    def __init__(self, name: str, kind: str, help_text: str,
                 unit: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.unit = unit
        self.children: "dict[_LabelKey, Counter | Gauge | Histogram]" = {}
        self.overflow: "Counter | Gauge | Histogram | None" = None

    def samples(self) -> "Iterator[Counter | Gauge | Histogram]":
        """Children in stable label order, overflow last."""
        for key in sorted(self.children):
            yield self.children[key]
        if self.overflow is not None:
            yield self.overflow


class MetricsRegistry:
    """Get-or-create factory and catalog for every telemetry signal.

    Parameters
    ----------
    enabled:
        ``False`` hands out shared no-op counters/histograms, so an
        uninstrumented run pays one dynamic call per would-be sample and
        nothing else.  Gauges stay live regardless (see module docs).
    max_label_sets:
        Per-family cardinality cap; label sets beyond it collapse into
        one shared ``overflow="true"`` child and bump
        :attr:`dropped_label_sets`.
    seed:
        Seed for histogram reservoirs (per-child sub-seeded by creation
        order so siblings do not mirror each other's samples).
    """

    def __init__(self, *, enabled: bool = True, max_label_sets: int = 64,
                 seed: int = 0) -> None:
        if max_label_sets < 1:
            raise ConfigurationError(
                f"max_label_sets must be >= 1, got {max_label_sets}")
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self.seed = seed
        self._families: "dict[str, MetricFamily]" = {}
        self._created = 0
        self.dropped_label_sets = 0

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------

    def counter(self, name: str, *, help: str = "", unit: str = "",
                labels: "Mapping[str, str] | None" = None,
                callback: "Callable[[], float] | None" = None) -> Counter:
        """Get or create a counter (callback-backed when given one)."""
        if not self.enabled:
            return NULL_COUNTER
        return self._child(
            "counter", name, help, unit, labels,
            lambda lbl: Counter(name, labels=lbl, callback=callback),
            callback)

    def gauge(self, name: str, *, help: str = "", unit: str = "",
              labels: "Mapping[str, str] | None" = None,
              callback: "Callable[[], float] | None" = None) -> Gauge:
        """Get or create a gauge.  Live even on a disabled registry."""
        return self._child(
            "gauge", name, help, unit, labels,
            lambda lbl: Gauge(name, labels=lbl, callback=callback),
            callback)

    def histogram(self, name: str, *, help: str = "", unit: str = "",
                  labels: "Mapping[str, str] | None" = None,
                  buckets: "tuple[float, ...] | None" = None,
                  reservoir_size: int = 512) -> Histogram:
        """Get or create a streaming histogram."""
        if not self.enabled:
            return NULL_HISTOGRAM

        def factory(lbl: "Mapping[str, str] | None") -> Histogram:
            self._created += 1
            return Histogram(name, labels=lbl, buckets=buckets,
                             reservoir_size=reservoir_size,
                             seed=self.seed * 1_000_003 + self._created)

        return self._child("histogram", name, help, unit, labels,
                           factory, None)

    def _child(self, kind, name, help_text, unit, labels, factory,
               callback):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(
                name, kind, help_text, unit)
        elif family.kind != kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}")
        key = _label_key(labels)
        child = family.children.get(key)
        if child is not None:
            if callback is not None:
                # Re-registration refreshes the view (e.g. an engine
                # recovered from a snapshot re-binds its pool gauge).
                child._callback = callback
            return child
        if len(family.children) >= self.max_label_sets:
            self.dropped_label_sets += 1
            if family.overflow is None:
                family.overflow = factory(dict(OVERFLOW_LABELS))
            return family.overflow
        child = family.children[key] = factory(labels)
        return child

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def families(self) -> "list[MetricFamily]":
        """Families in name order (empty for a disabled registry)."""
        if not self.enabled:
            return []
        return [self._families[name] for name in sorted(self._families)]

    def find(self, name: str,
             labels: "Mapping[str, str] | None" = None,
             ) -> "Counter | Gauge | Histogram | None":
        """Look up one existing series without creating it."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))

    def value(self, name: str,
              labels: "Mapping[str, str] | None" = None,
              default: float = 0.0) -> float:
        """Value of one counter/gauge series, or ``default`` if absent."""
        metric = self.find(name, labels)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def snapshot(self) -> "dict[str, dict[str, object]]":
        """JSON-able point-in-time dump of every series.

        Shape: ``{"counters": {series: value}, "gauges": {...},
        "histograms": {series: {count, sum, mean, min, max, p50, p95,
        p99}}}`` with canonical ``name{k=v}`` series keys.
        """
        counters: "dict[str, object]" = {}
        gauges: "dict[str, object]" = {}
        histograms: "dict[str, object]" = {}
        for family in self.families():
            for metric in family.samples():
                key = series_name(family.name, metric.labels)
                if family.kind == "counter":
                    counters[key] = metric.value
                elif family.kind == "gauge":
                    gauges[key] = metric.value
                else:
                    assert isinstance(metric, Histogram)
                    histograms[key] = metric.stats()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # ------------------------------------------------------------------
    # Cross-process transfer (the runtime's fleet telemetry)
    # ------------------------------------------------------------------

    def dump(self) -> "dict[str, object]":
        """Full-fidelity, picklable dump of every series.

        Where :meth:`snapshot` summarises (histograms lose their
        buckets), this round-trips: :meth:`merge_dump` on another
        registry rebuilds equivalent series.  Callback-backed series are
        materialised to their current values — a dump is a point-in-time
        cut, which is exactly what a :mod:`repro.runtime` worker ships
        to the coordinator.
        """
        families: "list[dict[str, object]]" = []
        for family in self.families():
            children: "list[dict[str, object]]" = []
            for metric in family.samples():
                entry: "dict[str, object]" = {"labels": dict(metric.labels)}
                if isinstance(metric, Histogram):
                    entry["histogram"] = metric.dump_state()
                else:
                    entry["value"] = metric.value
                children.append(entry)
            families.append({
                "name": family.name, "kind": family.kind,
                "help": family.help, "unit": family.unit,
                "children": children,
            })
        return {"families": families}

    def merge_dump(self, dump: "Mapping[str, object]", *,
                   labels: "Mapping[str, str] | None" = None,
                   aggregate: bool = True) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        ``labels`` are added to every merged series (the runtime passes
        ``{"shard": "2"}``), keeping each worker's signals separable in
        the Prometheus export.  With ``aggregate=True`` each value is
        *also* folded into the label-less series of the same family, so
        unlabeled reads — ``registry.value("repro_messages_ingested_total")``
        as the dashboard and ``repro top`` do — see fleet-wide totals.
        Aggregated gauges sum across shards (right for memory/depth
        gauges; read per-shard children for mode-style gauges like the
        overload rung).
        """
        extra = dict(labels) if labels else {}
        for family in dump["families"]:  # type: ignore[union-attr]
            name = str(family["name"])
            kind = str(family["kind"])
            help_text = str(family.get("help", ""))
            unit = str(family.get("unit", ""))
            for child in family["children"]:
                merged = dict(child.get("labels") or {})
                merged.update(extra)
                targets: "list[Mapping[str, str] | None]" = [merged]
                if aggregate:
                    base = dict(child.get("labels") or {})
                    targets.append(base or None)
                for target in targets:
                    if kind == "histogram":
                        state = child["histogram"]
                        hist = self.histogram(
                            name, help=help_text, unit=unit, labels=target,
                            buckets=tuple(state["bounds"]))
                        if not isinstance(hist, _NullHistogram):
                            hist.merge_state(state)
                    elif kind == "counter":
                        counter = self.counter(
                            name, help=help_text, unit=unit, labels=target)
                        counter.inc(float(child["value"]))
                    else:
                        gauge = self.gauge(
                            name, help=help_text, unit=unit, labels=target)
                        gauge.inc(float(child["value"]))
