"""Keyword search over micro-blog messages (the Fig. 1 baseline).

:class:`SearchEngine` indexes :class:`~repro.core.message.Message` objects
and answers ranked keyword queries the way the paper's "common micro-blog
message search" does: a flat, recency-ordered or relevance-ordered list of
individual messages.  The provenance-based bundle search of
:mod:`repro.query.bundle_search` is evaluated against this baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

from repro.core.message import Message
from repro.text.analyzer import Analyzer
from repro.text.inverted_index import InvertedIndex
from repro.text.postings import intersect_postings, union_postings
from repro.text.scoring import BM25Scorer, TfIdfScorer

__all__ = ["SearchHit", "SearchEngine"]


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One ranked result: the message and its lexical score."""

    message: Message
    score: float


class SearchEngine:
    """Ranked and boolean keyword search over messages.

    Parameters
    ----------
    analyzer:
        Shared analysis chain (also used for queries).
    scorer:
        ``"bm25"`` (default) or ``"tfidf"``.
    """

    def __init__(self, analyzer: Analyzer | None = None, *,
                 scorer: Literal["bm25", "tfidf"] = "bm25") -> None:
        self.analyzer = analyzer or Analyzer()
        self.index = InvertedIndex(self.analyzer)
        self._messages: dict[int, Message] = {}
        # Field maps for the boolean query language (user:/tag:/url:).
        self._by_user: dict[str, set[int]] = {}
        self._by_tag: dict[str, set[int]] = {}
        self._by_url: dict[str, set[int]] = {}
        if scorer == "bm25":
            self._scorer: BM25Scorer | TfIdfScorer = BM25Scorer(self.index)
        elif scorer == "tfidf":
            self._scorer = TfIdfScorer(self.index)
        else:
            raise ValueError(f"unknown scorer {scorer!r}")

    def __len__(self) -> int:
        return len(self._messages)

    def add(self, message: Message) -> None:
        """Index one message (id must be new)."""
        self.index.add_document(message.msg_id, message.text)
        self._messages[message.msg_id] = message
        self._by_user.setdefault(message.user, set()).add(message.msg_id)
        for tag in message.hashtags:
            self._by_tag.setdefault(tag, set()).add(message.msg_id)
        for url in message.urls:
            self._by_url.setdefault(url, set()).add(message.msg_id)

    def add_all(self, messages: Iterable[Message]) -> int:
        """Index many messages; return how many were added."""
        count = 0
        for message in messages:
            self.add(message)
            count += 1
        return count

    def get(self, msg_id: int) -> Message | None:
        """Fetch an indexed message by id."""
        return self._messages.get(msg_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Top-``k`` messages by lexical relevance, recency as tie-break.

        This mirrors Fig. 1: each hit is an isolated message with no
        provenance context.
        """
        terms = self.analyzer.analyze(query)
        if not terms:
            return []
        scores = self._scorer.score_all(terms)
        ranked = sorted(
            scores.items(),
            key=lambda kv: (-kv[1], -self._date_of_internal(kv[0])),
        )[:k]
        return [
            SearchHit(self._messages[self.index.external_id(doc)], score)
            for doc, score in ranked
        ]

    def search_boolean(self, query: str, *, mode: Literal["and", "or"] = "and",
                       k: int = 50) -> list[Message]:
        """Boolean retrieval ordered newest-first (Fig. 1's presentation)."""
        terms = self.analyzer.analyze(query)
        if not terms:
            return []
        lists = [self.index.postings(t) for t in terms]
        if mode == "and":
            if any(plist is None for plist in lists):
                return []
            internal_ids = intersect_postings([p for p in lists if p])
        elif mode == "or":
            internal_ids = union_postings([p for p in lists if p])
        else:
            raise ValueError(f"unknown boolean mode {mode!r}")
        messages = [
            self._messages[self.index.external_id(internal)]
            for internal in internal_ids
        ]
        messages.sort(key=lambda m: m.sort_key(), reverse=True)
        return messages[:k]

    def search_phrase(self, phrase: str, k: int = 50) -> list[Message]:
        """Messages containing the analyzed terms of ``phrase`` adjacently."""
        terms = self.analyzer.analyze(phrase)
        if not terms:
            return []
        lists = [self.index.postings(t) for t in terms]
        if any(plist is None for plist in lists):
            return []
        candidates = intersect_postings([p for p in lists if p])
        hits = []
        for internal in candidates:
            positions = [set((plist.get(internal) or _EMPTY).positions)
                         for plist in lists if plist]
            if _has_adjacent_run(positions):
                hits.append(self._messages[self.index.external_id(internal)])
        hits.sort(key=lambda m: m.sort_key(), reverse=True)
        return hits[:k]

    def search_query(self, raw_query: str, k: int = 50) -> list[Message]:
        """Boolean query-language search (see :mod:`repro.text.query_parser`).

        Supports AND/OR/NOT, parentheses, quoted phrases and the field
        filters ``user:``, ``tag:``/``#tag`` and ``url:``.  Results are
        ordered newest-first.
        """
        from repro.text.query_parser import evaluate, parse_query

        node = parse_query(raw_query)
        matched = evaluate(node, self)
        messages = [self._messages[msg_id] for msg_id in matched]
        messages.sort(key=lambda m: m.sort_key(), reverse=True)
        return messages[:k]

    # -- QueryTarget protocol (repro.text.query_parser) -------------------

    def all_ids(self) -> set[int]:
        """Every indexed message id (used by NOT)."""
        return set(self._messages)

    def ids_for_term(self, term: str) -> set[int]:
        """Messages containing the analyzed form of ``term``."""
        analyzed = self.analyzer.analyze(term)
        if not analyzed:
            return set()
        result: set[int] | None = None
        for sub_term in analyzed:
            plist = self.index.postings(sub_term)
            ids = ({self.index.external_id(p.doc_id) for p in plist}
                   if plist else set())
            result = ids if result is None else result & ids
        return result or set()

    def ids_for_phrase(self, phrase: str) -> set[int]:
        """Messages containing ``phrase`` adjacently."""
        return {m.msg_id for m in self.search_phrase(phrase, k=len(self))}

    def ids_for_field(self, name: str, value: str) -> set[int]:
        """Messages matching ``user:``/``tag:``/``url:`` filters."""
        if name == "user":
            return set(self._by_user.get(value, ()))
        if name == "tag":
            return set(self._by_tag.get(value, ()))
        if name == "url":
            return set(self._by_url.get(value, ()))
        return set()

    def _date_of_internal(self, internal_id: int) -> float:
        message = self._messages[self.index.external_id(internal_id)]
        return message.date


class _EmptyPosting:
    positions: list[int] = []


_EMPTY = _EmptyPosting()


def _has_adjacent_run(position_sets: list[set[int]]) -> bool:
    """True if positions p, p+1, ..., p+n-1 exist across the n sets."""
    if not position_sets:
        return False
    for start in position_sets[0]:
        if all(start + offset in later
               for offset, later in enumerate(position_sets[1:], start=1)):
            return True
    return False
