"""Document-level inverted index.

This is the core retrieval structure of the Lucene-substitute: it maps terms
to :class:`~repro.text.postings.PostingsList` objects and keeps per-document
lengths for length-normalised ranking.  Documents are arbitrary external ids
mapped to dense internal ids so postings stay merge-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.text.analyzer import Analyzer
from repro.text.postings import PostingsList

__all__ = ["DocumentStats", "InvertedIndex"]


@dataclass(slots=True)
class DocumentStats:
    """Per-document bookkeeping needed by the scorers."""

    external_id: int
    length: int  # number of index terms


class InvertedIndex:
    """An in-memory inverted index with add/remove and TF/DF statistics.

    Parameters
    ----------
    analyzer:
        The text-to-terms pipeline; defaults to the standard
        :class:`~repro.text.analyzer.Analyzer`.
    store_positions:
        Whether postings keep token positions (needed for phrase queries;
        costs memory).
    """

    def __init__(self, analyzer: Analyzer | None = None, *,
                 store_positions: bool = True) -> None:
        self.analyzer = analyzer or Analyzer()
        self.store_positions = store_positions
        self._postings: dict[str, PostingsList] = {}
        self._docs: dict[int, DocumentStats] = {}   # internal id -> stats
        self._internal_by_external: dict[int, int] = {}
        self._next_internal_id = 0
        self._total_length = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, external_id: int) -> bool:
        return external_id in self._internal_by_external

    @property
    def doc_count(self) -> int:
        """Number of indexed documents."""
        return len(self._docs)

    @property
    def term_count(self) -> int:
        """Number of distinct terms in the dictionary."""
        return len(self._postings)

    @property
    def average_doc_length(self) -> float:
        """Mean document length in terms (0.0 on an empty index)."""
        if not self._docs:
            return 0.0
        return self._total_length / len(self._docs)

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (0 if unseen)."""
        plist = self._postings.get(term)
        return plist.doc_freq if plist else 0

    def postings(self, term: str) -> PostingsList | None:
        """The postings list of ``term`` or ``None``."""
        return self._postings.get(term)

    def terms(self) -> Iterator[str]:
        """Iterate over the dictionary."""
        return iter(self._postings)

    def doc_length(self, external_id: int) -> int:
        """Indexed term count of a document (0 if absent)."""
        internal = self._internal_by_external.get(external_id)
        if internal is None:
            return 0
        return self._docs[internal].length

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_document(self, external_id: int, text: str) -> int:
        """Index ``text`` under ``external_id``; return the term count.

        Re-adding an existing external id raises ``ValueError`` — micro-blog
        messages are immutable, so updates are a caller bug.
        """
        if external_id in self._internal_by_external:
            raise ValueError(f"document {external_id} already indexed")
        internal = self._next_internal_id
        self._next_internal_id += 1
        terms = self.analyzer.analyze(text)
        for position, term in enumerate(terms):
            plist = self._postings.get(term)
            if plist is None:
                plist = self._postings[term] = PostingsList()
            plist.add(internal, position if self.store_positions else None)
        self._docs[internal] = DocumentStats(external_id, len(terms))
        self._internal_by_external[external_id] = internal
        self._total_length += len(terms)
        return len(terms)

    def add_terms(self, external_id: int, terms: Iterable[str]) -> int:
        """Index pre-analyzed ``terms`` (used by the bundle-level index)."""
        if external_id in self._internal_by_external:
            raise ValueError(f"document {external_id} already indexed")
        internal = self._next_internal_id
        self._next_internal_id += 1
        count = 0
        for position, term in enumerate(terms):
            plist = self._postings.get(term)
            if plist is None:
                plist = self._postings[term] = PostingsList()
            plist.add(internal, position if self.store_positions else None)
            count += 1
        self._docs[internal] = DocumentStats(external_id, count)
        self._internal_by_external[external_id] = internal
        self._total_length += count
        return count

    def remove_document(self, external_id: int) -> bool:
        """Drop a document from the index; return whether it existed."""
        internal = self._internal_by_external.pop(external_id, None)
        if internal is None:
            return False
        stats = self._docs.pop(internal)
        self._total_length -= stats.length
        emptied = []
        for term, plist in self._postings.items():
            if plist.remove(internal) and not len(plist):
                emptied.append(term)
        for term in emptied:
            del self._postings[term]
        return True

    # ------------------------------------------------------------------
    # Lookup helpers used by the search layer
    # ------------------------------------------------------------------

    def external_id(self, internal_id: int) -> int:
        """Map a postings doc id back to the caller's document id."""
        return self._docs[internal_id].external_id

    def internal_id(self, external_id: int) -> int | None:
        """Map an external id to the postings doc id (or ``None``)."""
        return self._internal_by_external.get(external_id)

    def internal_doc_length(self, internal_id: int) -> int:
        """Term count of a document by internal id."""
        return self._docs[internal_id].length
