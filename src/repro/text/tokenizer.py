"""Micro-blog aware tokenizer.

Splits raw message text into typed tokens while keeping Twitter-specific
surface forms intact: hashtags (``#redsox``), mentions (``@mlb``) and URLs
stay single tokens so the indexing layers can treat them as indicants rather
than as word soup.  Positions are recorded to support phrase queries in
:mod:`repro.text.search`.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator

__all__ = ["TokenType", "Token", "tokenize", "word_tokens"]


class TokenType(str, enum.Enum):
    """Lexical category of a token."""

    WORD = "word"
    HASHTAG = "hashtag"
    MENTION = "mention"
    URL = "url"
    NUMBER = "number"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Token:
    """One token with its surface text, category and token position."""

    text: str
    kind: TokenType
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<url>https?://\S+
        |(?:bit\.ly|ow\.ly|is\.gd|tinyurl\.com|t\.co|goo\.gl|twitpic\.com)/\S+)
    |(?P<hashtag>\#\w+)
    |(?P<mention>@\w+)
    |(?P<number>\d+(?:[.,]\d+)*)
    |(?P<word>[A-Za-z]+(?:'[A-Za-z]+)?)
    """,
    re.VERBOSE | re.IGNORECASE,
)

_KIND_BY_GROUP = {
    "url": TokenType.URL,
    "hashtag": TokenType.HASHTAG,
    "mention": TokenType.MENTION,
    "number": TokenType.NUMBER,
    "word": TokenType.WORD,
}


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into typed, positioned tokens.

    >>> [t.text for t in tokenize("Lester down #redsox http://bit.ly/x")]
    ['Lester', 'down', '#redsox', 'http://bit.ly/x']
    """
    tokens: list[Token] = []
    for position, match in enumerate(_TOKEN_RE.finditer(text)):
        group = match.lastgroup
        assert group is not None  # the regex has no empty alternative
        surface = match.group(group).rstrip(".,;:!?)'\"")
        tokens.append(Token(surface, _KIND_BY_GROUP[group], position))
    return tokens


def word_tokens(text: str) -> Iterator[str]:
    """Yield only plain word surfaces (lower-cased) from ``text``.

    Hashtag bodies are included as words (``#redsox`` contributes
    ``redsox``) because the paper's ``text`` connection treats hashtag terms
    as topical words too; mentions and URLs are excluded.
    """
    for token in tokenize(text):
        if token.kind is TokenType.WORD:
            yield token.text.lower()
        elif token.kind is TokenType.HASHTAG:
            yield token.text.lstrip("#").lower()
