"""TI-style tiered real-time indexing (the related-work baseline).

The paper's related work cites Chen et al., *"TI: an efficient indexing
mechanism for real-time search on tweets"* (SIGMOD 2011, ref. [17]): a
"partial indexing design to immediately classify the incoming tweet
content into high quality and noisy ones — the former category is indexed
in real time and the latter one in a batch way."  This module implements
that scheme so the provenance system can be compared against the indexing
baseline it is positioned next to:

* :class:`QualityClassifier` — a transparent feature gate (length,
  indicant presence, noise-phrase match, duplication) scoring a message's
  likely search value,
* :class:`TieredSearchEngine` — high-quality messages enter the
  real-time index immediately; noisy ones queue and are merged in batches
  (by size or by stream-time interval), exactly the TI trade: query
  freshness for the content that matters, amortised cost for the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dedup import DuplicateDetector
from repro.core.message import Message
from repro.text.analyzer import Analyzer
from repro.text.search import SearchEngine, SearchHit

__all__ = ["QualityClassifier", "QualityVerdict", "TieredSearchEngine"]

_HOUR = 3600.0


@dataclass(frozen=True, slots=True)
class QualityVerdict:
    """Outcome of classifying one message."""

    high_quality: bool
    score: float
    reasons: tuple[str, ...]


class QualityClassifier:
    """Feature-based high-quality / noisy gate.

    The score starts at 0 and accumulates evidence; the message is high
    quality when the score reaches ``threshold``.  Features (each worth
    one point unless noted):

    * enough real words (≥ ``min_words`` after analysis),
    * carries a topical indicant (hashtag or URL),
    * is a re-share of someone (RT implies the content had an audience),
    * **not** a near-duplicate of an earlier message (−2 when it is),
    * **not** dominated by a known noise fragment (−1).
    """

    def __init__(self, *, threshold: float = 2.0, min_words: int = 4,
                 dedup: DuplicateDetector | None = None) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_words <= 0:
            raise ValueError(f"min_words must be positive, got {min_words}")
        self.threshold = threshold
        self.min_words = min_words
        self.analyzer = Analyzer()
        self.dedup = dedup if dedup is not None else DuplicateDetector(
            threshold=0.8)

    def classify(self, message: Message) -> QualityVerdict:
        """Score one message; registers it with the duplicate detector."""
        score = 0.0
        reasons = []
        words = self.analyzer.analyze(message.text)
        if len(words) >= self.min_words:
            score += 1.0
            reasons.append("wordy")
        if message.hashtags or message.urls:
            score += 1.0
            reasons.append("indicants")
        if message.is_retweet:
            score += 1.0
            reasons.append("reshare")
        duplicate_of = self.dedup.check_and_add(message)
        if duplicate_of is not None:
            score -= 2.0
            reasons.append("duplicate")
        if len(words) <= 1 and len(message.plain_text()) < 20:
            score -= 1.0
            reasons.append("fragment")
        return QualityVerdict(
            high_quality=score >= self.threshold,
            score=score,
            reasons=tuple(reasons),
        )


@dataclass(slots=True)
class _TierStats:
    """Operational counters of the tiered engine."""

    realtime_indexed: int = 0
    queued: int = 0
    batches_flushed: int = 0


class TieredSearchEngine:
    """TI's two-tier ingestion in front of one searchable index.

    Parameters
    ----------
    classifier:
        The quality gate; defaults to :class:`QualityClassifier`.
    batch_size:
        Flush the noisy queue when it reaches this many messages.
    batch_interval:
        Also flush when stream time advances this far (seconds) past the
        oldest queued message, so quiet periods still drain the queue.
    """

    def __init__(self, *, classifier: QualityClassifier | None = None,
                 batch_size: int = 256,
                 batch_interval: float = 6 * _HOUR) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_interval <= 0:
            raise ValueError(
                f"batch_interval must be positive, got {batch_interval}")
        self.classifier = classifier or QualityClassifier()
        self.batch_size = batch_size
        self.batch_interval = batch_interval
        self.engine = SearchEngine()
        self.stats = _TierStats()
        self._queue: list[Message] = []
        self._oldest_queued: float | None = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(self, message: Message) -> QualityVerdict:
        """Classify and route one message; returns the verdict."""
        verdict = self.classifier.classify(message)
        if verdict.high_quality:
            self.engine.add(message)
            self.stats.realtime_indexed += 1
        else:
            self._queue.append(message)
            self.stats.queued += 1
            if self._oldest_queued is None:
                self._oldest_queued = message.date
        if (len(self._queue) >= self.batch_size
                or (self._oldest_queued is not None
                    and message.date - self._oldest_queued
                    >= self.batch_interval)):
            self.flush()
        return verdict

    def flush(self) -> int:
        """Merge the noisy queue into the index; returns flushed count."""
        flushed = len(self._queue)
        for message in self._queue:
            self.engine.add(message)
        self._queue.clear()
        self._oldest_queued = None
        if flushed:
            self.stats.batches_flushed += 1
        return flushed

    # ------------------------------------------------------------------
    # Retrieval / introspection
    # ------------------------------------------------------------------

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Ranked search over everything indexed so far.

        Queued noisy messages are *not* yet visible — that is TI's
        freshness trade, measured by :meth:`pending`.
        """
        return self.engine.search(query, k=k)

    @property
    def pending(self) -> int:
        """Messages queued but not yet searchable."""
        return len(self._queue)

    def __len__(self) -> int:
        """Messages currently searchable."""
        return len(self.engine)
