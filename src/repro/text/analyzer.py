"""Analysis chain: tokenize → normalize → filter → (optionally) stem.

The :class:`Analyzer` converts raw text into the index terms used by the
inverted index and into the *keyword indicants* the summary index stores for
Table II ``text`` connections.  It is deliberately small but complete:
lower-casing, English stopword removal, minimum-length filtering and a light
suffix stemmer (plural/-ing/-ed stripping) that avoids the precision traps
of full Porter stemming on 140-character messages.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.text.tokenizer import word_tokens

__all__ = ["STOPWORDS", "Analyzer", "light_stem"]

# A compact English stopword list; micro-blog chatter additions at the end.
STOPWORDS: frozenset[str] = frozenset("""
a about above after again against all am an and any are aren as at be because
been before being below between both but by can cannot could couldn did didn
do does doesn doing don down during each few for from further had hadn has
hasn have haven having he her here hers herself him himself his how i if in
into is isn it its itself just me more most mustn my myself no nor not now of
off on once only or other our ours ourselves out over own same shan she
should shouldn so some such than that the their theirs them themselves then
there these they this those through to too under until up very was wasn we
were weren what when where which while who whom why will with won would
wouldn you your yours yourself yourselves
rt via amp im dont cant wont ur u r lol omg wow
""".split())


def light_stem(word: str) -> str:
    """Strip the most common English suffixes without over-stemming.

    Handles plural ``-s``/``-es``/``-ies`` and the progressive/past
    ``-ing``/``-ed`` forms when enough stem remains:

    >>> [light_stem(w) for w in ("games", "parties", "running", "played")]
    ['game', 'party', 'run', 'played']

    ``played`` is left intact: ``-ed`` is only stripped after a consonant
    pair, which keeps short irregulars (``used``, ``red``) stable.
    """
    if len(word) > 4 and word.endswith("ies"):
        return word[:-3] + "y"
    if len(word) > 3 and word.endswith("es") and not word.endswith("ses"):
        return word[:-1]
    if len(word) > 3 and word.endswith("s") and not word.endswith("ss"):
        return word[:-1]
    if len(word) > 5 and word.endswith("ing"):
        stem = word[:-3]
        # "running" -> "runn" -> undouble -> "run"
        if len(stem) > 2 and stem[-1] == stem[-2]:
            stem = stem[:-1]
        return stem
    if len(word) > 5 and word.endswith("ed") and word[-3] == word[-4]:
        return word[:-3]
    return word


@dataclass(frozen=True)
class Analyzer:
    """Configurable text-to-terms pipeline.

    Attributes
    ----------
    stopwords:
        Terms dropped after normalization.
    min_length:
        Words shorter than this are dropped (kills emotional fragments
        like "ugh", "ow" that the paper calls noise).
    stem:
        Whether to apply :func:`light_stem`.
    """

    stopwords: frozenset[str] = STOPWORDS
    min_length: int = 3
    stem: bool = True
    _cache: dict[str, str] = field(default_factory=dict, repr=False,
                                   compare=False)

    def analyze(self, text: str) -> list[str]:
        """Return the index terms of ``text`` in order (with duplicates)."""
        terms = []
        for word in word_tokens(text):
            if len(word) < self.min_length or word in self.stopwords:
                continue
            if self.stem:
                stemmed = self._cache.get(word)
                if stemmed is None:
                    stemmed = light_stem(word)
                    self._cache[word] = stemmed
                word = stemmed
            terms.append(word)
        return terms

    def term_set(self, text: str) -> frozenset[str]:
        """The distinct terms of ``text`` (order-free)."""
        return frozenset(self.analyze(text))

    def keywords(self, text: str, limit: int = 6) -> list[str]:
        """The ``limit`` most frequent terms of ``text``, ties by lexicon.

        These are the keyword indicants inserted into the summary index;
        on 140-character messages the frequency signal is weak, so the
        deterministic lexical tie-break matters for reproducibility.
        """
        counts = Counter(self.analyze(text))
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [term for term, _ in ranked[:limit]]
