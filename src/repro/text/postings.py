"""Postings lists for the inverted index.

A :class:`PostingsList` maps document ids to term frequency and (optionally)
token positions, kept in insertion order (document ids are assigned
monotonically by the index, so insertion order is id order and merge-style
intersection stays linear).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Posting", "PostingsList", "intersect_postings", "union_postings"]


@dataclass(slots=True)
class Posting:
    """Occurrences of one term in one document."""

    doc_id: int
    term_freq: int = 0
    positions: list[int] = field(default_factory=list)

    def add_occurrence(self, position: int | None = None) -> None:
        """Record one more occurrence, optionally with its token position."""
        self.term_freq += 1
        if position is not None:
            self.positions.append(position)


class PostingsList:
    """All postings of a single term, ordered by ascending document id."""

    __slots__ = ("_postings", "_by_doc")

    def __init__(self) -> None:
        self._postings: list[Posting] = []
        self._by_doc: dict[int, Posting] = {}

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._by_doc

    @property
    def doc_freq(self) -> int:
        """Number of distinct documents containing the term."""
        return len(self._postings)

    def add(self, doc_id: int, position: int | None = None) -> Posting:
        """Record an occurrence of the term in ``doc_id``.

        Documents must be added in non-decreasing id order (the index
        assigns ids monotonically); re-adding the current last document
        only bumps its frequency.
        """
        posting = self._by_doc.get(doc_id)
        if posting is None:
            if self._postings and doc_id < self._postings[-1].doc_id:
                raise ValueError(
                    f"doc ids must be non-decreasing: got {doc_id} after "
                    f"{self._postings[-1].doc_id}")
            posting = Posting(doc_id)
            self._postings.append(posting)
            self._by_doc[doc_id] = posting
        posting.add_occurrence(position)
        return posting

    def get(self, doc_id: int) -> Posting | None:
        """The posting for ``doc_id`` or ``None``."""
        return self._by_doc.get(doc_id)

    def remove(self, doc_id: int) -> bool:
        """Delete the posting for ``doc_id``; return whether it existed.

        Removal is O(n) and rare (only bundle eviction uses it), so a
        simple rebuild keeps the id-ordered invariant.
        """
        if doc_id not in self._by_doc:
            return False
        del self._by_doc[doc_id]
        self._postings = [p for p in self._postings if p.doc_id != doc_id]
        return True

    def doc_ids(self) -> list[int]:
        """Ascending list of document ids containing the term."""
        return [p.doc_id for p in self._postings]


def intersect_postings(lists: list[PostingsList]) -> list[int]:
    """Document ids present in *every* postings list (boolean AND).

    Uses the classic smallest-first merge: start from the rarest term and
    probe the hash maps of the others, which is the fast path for the
    short conjunctive queries micro-blog search sees.
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = []
    for posting in ordered[0]:
        if all(posting.doc_id in other for other in ordered[1:]):
            result.append(posting.doc_id)
    return result


def union_postings(lists: list[PostingsList]) -> list[int]:
    """Document ids present in *any* postings list (boolean OR), ascending."""
    seen: set[int] = set()
    for plist in lists:
        seen.update(p.doc_id for p in plist)
    return sorted(seen)
