"""A small boolean query language for the search engines.

Grammar (case-insensitive keywords, left-associative, AND binds tighter
than OR)::

    query    := or_expr
    or_expr  := and_expr ( OR and_expr )*
    and_expr := unary ( [AND] unary )*        # juxtaposition = AND
    unary    := NOT unary | atom
    atom     := '(' or_expr ')' | '"' phrase '"' | field ':' value | term

Field filters: ``user:alice``, ``tag:redsox`` (or ``#redsox``),
``url:bit.ly/x``.  Examples::

    yankee redsox                  # implicit AND
    yankee OR redsox               # union
    redsox NOT noise               # difference
    "yankee stadium" tag:redsox    # phrase + field filter
    (lester OR ovation) user:amalie

The parser builds a small AST; :func:`evaluate` runs it against any
corpus that supports the :class:`QueryTarget` protocol (the message
search engine does).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Protocol

from repro.core.errors import QueryError

__all__ = [
    "Term", "Phrase", "Field", "And", "Or", "Not",
    "parse_query", "evaluate", "QueryTarget",
]


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Term:
    """A single analyzed term."""

    text: str


@dataclass(frozen=True, slots=True)
class Phrase:
    """A quoted adjacent-terms phrase."""

    text: str


@dataclass(frozen=True, slots=True)
class Field:
    """A ``field:value`` filter (user / tag / url)."""

    name: str
    value: str


@dataclass(frozen=True, slots=True)
class And:
    """Conjunction of sub-queries."""

    children: tuple[object, ...]


@dataclass(frozen=True, slots=True)
class Or:
    """Disjunction of sub-queries."""

    children: tuple[object, ...]


@dataclass(frozen=True, slots=True)
class Not:
    """Negation of a sub-query (evaluated against the full corpus)."""

    child: object


# ---------------------------------------------------------------------------
# Lexer / parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r'\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<quote>"[^"]*")'
    r'|(?P<word>[^\s()"]+))')

_FIELDS = {"user", "tag", "url"}


def _lex(raw: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(raw):
        match = _TOKEN_RE.match(raw, position)
        if match is None or match.end() == position:
            break
        position = match.end()
        for group in ("lparen", "rparen", "quote", "word"):
            value = match.group(group)
            if value is not None:
                tokens.append(value)
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> str | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def parse(self) -> object:
        node = self.or_expr()
        if self.peek() is not None:
            raise QueryError(f"unexpected token {self.peek()!r}")
        return node

    def or_expr(self) -> object:
        children = [self.and_expr()]
        while self.peek() is not None and self.peek().upper() == "OR":
            self.take()
            children.append(self.and_expr())
        if len(children) == 1:
            return children[0]
        return Or(tuple(children))

    def and_expr(self) -> object:
        children = [self.unary()]
        while True:
            token = self.peek()
            if token is None or token == ")" or token.upper() == "OR":
                break
            if token.upper() == "AND":
                self.take()
                continue
            children.append(self.unary())
        if len(children) == 1:
            return children[0]
        return And(tuple(children))

    def unary(self) -> object:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        if token.upper() == "NOT":
            self.take()
            return Not(self.unary())
        return self.atom()

    def atom(self) -> object:
        token = self.take()
        if token == "(":
            node = self.or_expr()
            if self.peek() != ")":
                raise QueryError("missing closing parenthesis")
            self.take()
            return node
        if token == ")":
            raise QueryError("unexpected ')'")
        if token.startswith('"'):
            return Phrase(token.strip('"'))
        if token.startswith("#") and len(token) > 1:
            return Field("tag", token[1:].lower())
        name, sep, value = token.partition(":")
        if sep and name.lower() in _FIELDS:
            if not value:
                raise QueryError(f"empty value for field {name!r}")
            return Field(name.lower(), value.lower())
        return Term(token)


def parse_query(raw: str) -> object:
    """Parse ``raw`` into a query AST; raise :class:`QueryError` on junk."""
    if not raw or not raw.strip():
        raise QueryError("empty query")
    tokens = _lex(raw)
    if not tokens:
        raise QueryError("query contains no tokens")
    return _Parser(tokens).parse()


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


class QueryTarget(Protocol):
    """What :func:`evaluate` needs from a searchable corpus."""

    def all_ids(self) -> set[int]:  # pragma: no cover - protocol
        """Every document id in the corpus."""
        ...

    def ids_for_term(self, term: str) -> set[int]:  # pragma: no cover
        """Documents containing the (raw, unanalyzed) term."""
        ...

    def ids_for_phrase(self, phrase: str) -> set[int]:  # pragma: no cover
        """Documents containing the phrase adjacently."""
        ...

    def ids_for_field(self, name: str, value: str) -> set[int]:  # pragma: no cover
        """Documents matching a field filter."""
        ...


def evaluate(node: object, target: QueryTarget) -> set[int]:
    """Run a parsed query against a corpus; returns matching doc ids."""
    if isinstance(node, Term):
        return target.ids_for_term(node.text)
    if isinstance(node, Phrase):
        return target.ids_for_phrase(node.text)
    if isinstance(node, Field):
        return target.ids_for_field(node.name, node.value)
    if isinstance(node, And):
        result: set[int] | None = None
        for child in node.children:
            matched = evaluate(child, target)
            result = matched if result is None else result & matched
            if not result:
                return set()
        return result or set()
    if isinstance(node, Or):
        result = set()
        for child in node.children:
            result |= evaluate(child, target)
        return result
    if isinstance(node, Not):
        return target.all_ids() - evaluate(node.child, target)
    raise QueryError(f"unknown query node {node!r}")
