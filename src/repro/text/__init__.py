"""From-scratch text retrieval substrate (the paper's Lucene substitute).

The paper implements its query support "using Lucene"; no network access is
available here, so this subpackage provides the pieces the provenance system
needs from a lexical search engine:

* :mod:`repro.text.tokenizer` — micro-blog aware tokenization,
* :mod:`repro.text.analyzer` — normalization, stopwords, keyword extraction,
* :mod:`repro.text.postings` — postings lists with positions,
* :mod:`repro.text.inverted_index` — the document-level inverted index,
* :mod:`repro.text.scoring` — TF-IDF and BM25 ranking functions,
* :mod:`repro.text.search` — the keyword-search engine used both as the
  Fig. 1 baseline and as the ``s(q, B)`` component of Eq. 7.
"""

from repro.text.analyzer import Analyzer, STOPWORDS
from repro.text.highlight import HighlightSpan, find_spans, highlight
from repro.text.inverted_index import InvertedIndex
from repro.text.persistence import load_search_engine, save_search_engine
from repro.text.query_parser import evaluate, parse_query
from repro.text.scoring import BM25Scorer, TfIdfScorer
from repro.text.tiered_index import (QualityClassifier, QualityVerdict,
                                     TieredSearchEngine)
from repro.text.search import SearchEngine, SearchHit
from repro.text.tokenizer import Token, tokenize

__all__ = [
    "Analyzer",
    "STOPWORDS",
    "HighlightSpan",
    "find_spans",
    "highlight",
    "InvertedIndex",
    "load_search_engine",
    "save_search_engine",
    "evaluate",
    "parse_query",
    "BM25Scorer",
    "QualityClassifier",
    "QualityVerdict",
    "TieredSearchEngine",
    "TfIdfScorer",
    "SearchEngine",
    "SearchHit",
    "Token",
    "tokenize",
]
