"""Persistence for the text search engine.

Saves a :class:`~repro.text.search.SearchEngine` — messages, postings and
field maps — to one JSON file and restores it exactly.  Postings are not
serialized term-by-term; instead the messages are stored and re-indexed
on load through the same analyzer configuration, which guarantees the
restored index is bit-identical to a fresh build (and keeps the format
robust to postings-layout changes).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.errors import StorageError
from repro.text.analyzer import Analyzer
from repro.text.search import SearchEngine

# NOTE: repro.storage.serializer is imported lazily inside the functions:
# a module-level import would cycle (text.__init__ -> persistence ->
# storage.__init__ -> snapshot -> core.engine -> text.analyzer).

__all__ = ["save_search_engine", "load_search_engine"]

_FORMAT_VERSION = 1


def save_search_engine(engine: SearchEngine,
                       path: "str | os.PathLike[str]") -> int:
    """Write the engine's corpus + analyzer config; returns message count.

    Atomic (temp file + rename).
    """
    from repro.storage.serializer import message_to_dict

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scorer = "bm25" if engine._scorer.__class__.__name__ == "BM25Scorer" \
        else "tfidf"
    messages = sorted(
        (engine.get(msg_id) for msg_id in engine.all_ids()),
        key=lambda m: m.msg_id)
    state = {
        "v": _FORMAT_VERSION,
        "scorer": scorer,
        "analyzer": {
            "min_length": engine.analyzer.min_length,
            "stem": engine.analyzer.stem,
            "extra_stopwords": sorted(
                engine.analyzer.stopwords - Analyzer().stopwords),
        },
        "messages": [message_to_dict(m) for m in messages],
    }
    tmp = target.with_suffix(target.suffix + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"), sort_keys=True)
    tmp.replace(target)
    return len(messages)


def load_search_engine(path: "str | os.PathLike[str]") -> SearchEngine:
    """Rebuild a search engine saved by :func:`save_search_engine`."""
    from repro.storage.serializer import message_from_dict

    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read search index {source}: {exc}") \
            from exc
    if not isinstance(state, dict) or state.get("v") != _FORMAT_VERSION:
        raise StorageError(f"{source}: unsupported search-index format")

    analyzer_state = state.get("analyzer", {})
    analyzer = Analyzer(
        stopwords=Analyzer().stopwords
        | frozenset(analyzer_state.get("extra_stopwords", ())),
        min_length=int(analyzer_state.get("min_length", 3)),
        stem=bool(analyzer_state.get("stem", True)),
    )
    engine = SearchEngine(analyzer, scorer=state.get("scorer", "bm25"))
    for record in state.get("messages", ()):
        engine.add(message_from_dict(record))
    return engine
