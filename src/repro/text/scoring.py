"""Lexical ranking functions: TF-IDF (cosine-ish) and Okapi BM25.

Both scorers operate on an :class:`~repro.text.inverted_index.InvertedIndex`
and rank documents for a bag of query terms.  BM25 is the default used by
:class:`~repro.text.search.SearchEngine`; TF-IDF is kept as the classic
alternative and as an ablation point for the Eq. 7 text component.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict

from repro.text.inverted_index import InvertedIndex

__all__ = ["TfIdfScorer", "BM25Scorer"]


class TfIdfScorer:
    """Classic lnc.ltc-style TF-IDF scoring with document-length division.

    ``score(d, q) = Σ_t (1+log tf_{t,d}) · idf_t  / |d|`` where
    ``idf_t = log(N / df_t)``.  Simple, monotone in term overlap, and
    cheap — adequate for 140-character documents.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def idf(self, term: str) -> float:
        """Inverse document frequency; 0 for unseen terms."""
        df = self.index.doc_frequency(term)
        if df == 0:
            return 0.0
        return math.log(max(self.index.doc_count, 1) / df)

    def score_all(self, query_terms: list[str]) -> dict[int, float]:
        """Score every matching document; keys are *internal* doc ids."""
        scores: dict[int, float] = defaultdict(float)
        for term, query_tf in Counter(query_terms).items():
            plist = self.index.postings(term)
            if plist is None:
                continue
            idf = self.idf(term)
            for posting in plist:
                tf_weight = 1.0 + math.log(posting.term_freq)
                scores[posting.doc_id] += query_tf * tf_weight * idf
        for doc_id in scores:
            length = self.index.internal_doc_length(doc_id)
            if length > 0:
                scores[doc_id] /= math.sqrt(length)
        return dict(scores)


class BM25Scorer:
    """Okapi BM25 with the standard ``k1``/``b`` parameterisation.

    ``score(d, q) = Σ_t idf_t · tf·(k1+1) / (tf + k1·(1-b+b·|d|/avgdl))``
    with the non-negative idf variant
    ``idf_t = log(1 + (N - df + 0.5)/(df + 0.5))``.
    """

    def __init__(self, index: InvertedIndex, *, k1: float = 1.2,
                 b: float = 0.75) -> None:
        if k1 < 0:
            raise ValueError(f"k1 must be >= 0, got {k1}")
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.index = index
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        """BM25's smoothed, non-negative idf."""
        df = self.index.doc_frequency(term)
        if df == 0:
            return 0.0
        n = self.index.doc_count
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def score_all(self, query_terms: list[str]) -> dict[int, float]:
        """Score every matching document; keys are *internal* doc ids."""
        scores: dict[int, float] = defaultdict(float)
        avgdl = self.index.average_doc_length or 1.0
        for term, query_tf in Counter(query_terms).items():
            plist = self.index.postings(term)
            if plist is None:
                continue
            idf = self.idf(term)
            for posting in plist:
                tf = posting.term_freq
                length = self.index.internal_doc_length(posting.doc_id)
                denom = tf + self.k1 * (
                    1.0 - self.b + self.b * length / avgdl)
                scores[posting.doc_id] += (
                    query_tf * idf * tf * (self.k1 + 1.0) / denom)
        return dict(scores)
