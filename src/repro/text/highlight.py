"""Search-result snippet highlighting.

Marks query-term occurrences in message text for terminal or HTML-ish
display — the piece of search UX the paper's demo site provides around
its result tables.  Highlighting is analyzer-aware: a query for ``games``
highlights ``game`` and ``Games`` too, because matching happens on
analyzed forms while offsets come from the raw surface tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.text.analyzer import Analyzer
from repro.text.tokenizer import TokenType, tokenize

__all__ = ["HighlightSpan", "find_spans", "highlight"]


@dataclass(frozen=True, slots=True)
class HighlightSpan:
    """A matched region of the raw text: ``text[start:end]``."""

    start: int
    end: int
    term: str  # the analyzed term that matched


def find_spans(text: str, query_terms: "list[str] | frozenset[str]",
               analyzer: Analyzer | None = None) -> list[HighlightSpan]:
    """Locate query-term occurrences in ``text`` (analyzed matching).

    Word and hashtag tokens are compared by their analyzed form; matching
    spans cover the raw surface (including the ``#`` sigil of hashtags).
    Spans are returned in text order and never overlap.
    """
    analyzer = analyzer or Analyzer()
    wanted = set()
    for raw_term in query_terms:
        wanted.update(analyzer.analyze(raw_term))
    if not wanted:
        return []

    spans = []
    search_from = 0
    for token in tokenize(text):
        if token.kind not in (TokenType.WORD, TokenType.HASHTAG):
            continue
        analyzed = analyzer.analyze(token.text)
        if not analyzed or analyzed[0] not in wanted:
            continue
        start = text.find(token.text, search_from)
        if start < 0:
            continue
        end = start + len(token.text)
        spans.append(HighlightSpan(start, end, analyzed[0]))
        search_from = end
    return spans


def highlight(text: str, query_terms: "list[str] | frozenset[str]", *,
              prefix: str = "[", suffix: str = "]",
              analyzer: Analyzer | None = None) -> str:
    """Return ``text`` with matched regions wrapped in prefix/suffix.

    >>> highlight("Lester down #redsox", ["redsox", "lester"])
    '[Lester] down [#redsox]'
    """
    spans = find_spans(text, query_terms, analyzer)
    if not spans:
        return text
    parts = []
    cursor = 0
    for span in spans:
        parts.append(text[cursor:span.start])
        parts.append(prefix + text[span.start:span.end] + suffix)
        cursor = span.end
    parts.append(text[cursor:])
    return "".join(parts)
