"""Message connections (Table II of the paper).

Two messages ``t_i`` (earlier) and ``t_j`` (later) can be connected by:

========  ==========================================================
RT        ``t_j`` re-shares ``t_i`` (``RT @user`` marker matches)
URL       they share at least one URL
hashtag   they share at least one hashtag
text      they share at least one plain-text keyword
========  ==========================================================

Provenance (Definition 2) keeps, for each message, one maximum-scored
connection to a prior message; within a bundle these directed edges form a
forest.  :class:`Connection` is that edge record.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.message import Message

__all__ = ["ConnectionType", "Connection", "connection_types_between"]


class ConnectionType(str, enum.Enum):
    """The connection categories of Table II, strongest first."""

    RT = "rt"
    URL = "url"
    HASHTAG = "hashtag"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class Connection:
    """A directed provenance edge from a later message to a prior one.

    Attributes
    ----------
    src_id:
        The later message (the one that was aligned on insertion).
    dst_id:
        The prior message it connects to (its provenance parent).
    kind:
        The dominant connection type that produced the edge.
    score:
        The aggregated similarity (Eq. 5) at alignment time.
    """

    src_id: int
    dst_id: int
    kind: ConnectionType
    score: float

    def as_pair(self) -> tuple[int, int]:
        """The (src, dst) id pair — the unit compared by Section VI-B."""
        return (self.src_id, self.dst_id)


def connection_types_between(
    later: Message,
    earlier: Message,
    *,
    later_keywords: frozenset[str] | None = None,
    earlier_keywords: frozenset[str] | None = None,
) -> list[ConnectionType]:
    """Return every Table II connection type holding between two messages.

    ``later`` must have been posted after ``earlier`` for RT to be
    meaningful; the function does not enforce the ordering because Alg. 2
    already iterates prior messages only.

    Keyword sets are optional because extraction needs the analyzer from
    :mod:`repro.text`; when omitted the ``text`` connection is not tested.
    """
    kinds: list[ConnectionType] = []
    if earlier.user in later.rt_users:
        kinds.append(ConnectionType.RT)
    if later.urls & earlier.urls:
        kinds.append(ConnectionType.URL)
    if later.hashtags & earlier.hashtags:
        kinds.append(ConnectionType.HASHTAG)
    if (later_keywords and earlier_keywords
            and later_keywords & earlier_keywords):
        kinds.append(ConnectionType.TEXT)
    return kinds
