"""The provenance indexing engine (Algorithm 1 + system framework, Fig. 4).

:class:`ProvenanceIndexer` wires together the in-memory processing unit
(summary index + bundle pool), the optional on-disk back-end and the text
analyzer, and exposes the single streaming entry point :meth:`ingest`:

1. **bundle match** — fetch candidate bundles from the summary index,
   score them with Eq. 1, pick the best (or create a fresh bundle),
2. **message placement** — Algorithm 2 inside the chosen bundle,
3. **index update** — register the message's indicants,
4. **memory refinement** — Algorithm 3 when the pool trigger fires.

Every per-stage duration is observed into the engine's
:class:`~repro.obs.MetricsRegistry` (``repro_stage_seconds{stage=…}``),
and :class:`StageTimers` is a *view* over those histograms' sums — the
registry is the one source of truth behind Fig. 12/13, ``repro top``,
the Prometheus export and the overload ladder.  When the engine's
:class:`~repro.obs.Observability` carries a tracer, sampled messages
additionally record a span trace of the pipeline (see
``docs/observability.md`` for the schema).  The ground-truth edge
ledger backs the accuracy/return evaluation of Section VI-B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from importlib import import_module
from itertools import islice
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.api import deprecated
from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import Connection
from repro.core.errors import BundleNotFoundError
from repro.core.message import Message
from repro.core.pool import BundlePool, BundleSink, RefinementReport
from repro.core.postings import CandidateGather
from repro.core.scoring import (bundle_match_score, bundle_match_scores,
                                message_similarity)
from repro.core.summary_index import SummaryIndex

try:
    _np: Any = import_module("numpy")
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None
from repro.obs import (COUNT_BUCKETS, DEFAULT_LATENCY_BUCKETS, Histogram,
                       Observability)
from repro.obs.audit import (IngestOutcome, RefinementEvent,
                             _RawCandidates)
from repro.text.analyzer import Analyzer

if TYPE_CHECKING:
    from repro.query.bundle_search import BundleHit, BundleSearchEngine

__all__ = [
    "ProvenanceIndexer",
    "IngestResult",
    "StageTimers",
    "StageSnapshot",
    "EngineStats",
    "MemorySnapshot",
]


@dataclass(frozen=True, slots=True)
class StageSnapshot:
    """Immutable per-stage accumulated seconds at one point in time."""

    bundle_match: float = 0.0
    message_placement: float = 0.0
    index_update: float = 0.0
    memory_refinement: float = 0.0

    @property
    def total(self) -> float:
        """Total maintenance time across the four stages."""
        return (self.bundle_match + self.message_placement
                + self.index_update + self.memory_refinement)

    def delta(self, earlier: "StageSnapshot") -> "StageSnapshot":
        """Per-stage seconds accumulated since ``earlier``."""
        return StageSnapshot(
            bundle_match=self.bundle_match - earlier.bundle_match,
            message_placement=(self.message_placement
                               - earlier.message_placement),
            index_update=self.index_update - earlier.index_update,
            memory_refinement=(self.memory_refinement
                               - earlier.memory_refinement),
        )


class StageTimers:
    """Accumulated wall-clock seconds per processing stage (Fig. 13).

    A read-only *view* over the engine's ``repro_stage_seconds``
    histograms: each property returns the histogram's running sum minus
    the baseline set by the last :meth:`reset`, so long-lived indexers
    can report per-interval stage costs instead of only cumulative
    totals.  Constructed bare (no histograms) it owns private ones, so
    ``StageTimers()`` keeps working standalone.
    """

    STAGES = ("bundle_match", "message_placement", "index_update",
              "memory_refinement")

    __slots__ = ("_histograms", "_baseline")

    def __init__(self, histograms: "Mapping[str, Histogram] | None" = None,
                 ) -> None:
        if histograms is None:
            histograms = {
                stage: Histogram("repro_stage_seconds",
                                 labels={"stage": stage},
                                 buckets=DEFAULT_LATENCY_BUCKETS)
                for stage in self.STAGES
            }
        self._histograms = dict(histograms)
        self._baseline = dict.fromkeys(self.STAGES, 0.0)

    def observe(self, stage: str, seconds: float) -> None:
        """Record one stage execution (also feeds the latency buckets)."""
        self._histograms[stage].observe(seconds)

    def histogram(self, stage: str) -> Histogram:
        """The underlying latency histogram of one stage."""
        return self._histograms[stage]

    def _value(self, stage: str) -> float:
        return self._histograms[stage].sum - self._baseline[stage]

    @property
    def bundle_match(self) -> float:
        """Seconds in Algorithm 1 candidate fetch + Eq. 1 scoring."""
        return self._value("bundle_match")

    @property
    def message_placement(self) -> float:
        """Seconds in Algorithm 2 placement."""
        return self._value("message_placement")

    @property
    def index_update(self) -> float:
        """Seconds updating the summary index."""
        return self._value("index_update")

    @property
    def memory_refinement(self) -> float:
        """Seconds in Algorithm 3 refinement scans."""
        return self._value("memory_refinement")

    @property
    def total(self) -> float:
        """Total maintenance time (Fig. 12's series)."""
        return (self.bundle_match + self.message_placement
                + self.index_update + self.memory_refinement)

    # -- interval accounting ------------------------------------------------

    def snapshot(self) -> StageSnapshot:
        """Immutable copy of the current (since-reset) accumulations."""
        return StageSnapshot(
            bundle_match=self.bundle_match,
            message_placement=self.message_placement,
            index_update=self.index_update,
            memory_refinement=self.memory_refinement,
        )

    def interval(self, since: StageSnapshot) -> StageSnapshot:
        """Per-stage seconds accumulated after ``since`` was taken."""
        return self.snapshot().delta(since)

    def reset(self) -> StageSnapshot:
        """Start a new reporting interval; returns the one just closed.

        The underlying histograms are never cleared (their bucket
        counts stay monotonic for the Prometheus export); only this
        view's baseline moves.
        """
        closing = self.snapshot()
        for stage in self.STAGES:
            self._baseline[stage] = self._histograms[stage].sum
        return closing


@dataclass(slots=True)
class EngineStats:
    """Counters the benchmarks and examples report.

    The registry exports each field as a callback-backed counter
    (``repro_messages_ingested_total`` …), so reading the metric and
    reading the field can never disagree.

    Calling the instance returns the unified counter mapping of the
    :class:`repro.api.Indexer` protocol, so ``indexer.stats()`` works on
    every backend while ``indexer.stats.messages_ingested`` keeps
    working on the engine.
    """

    messages_ingested: int = 0
    bundles_created: int = 0
    bundles_matched: int = 0
    edges_created: int = 0
    refinements: int = 0
    bundles_closed: int = 0
    skeleton_ingests: int = 0

    FIELDS = ("messages_ingested", "bundles_created", "bundles_matched",
              "edges_created", "refinements", "bundles_closed",
              "skeleton_ingests")

    def as_dict(self) -> dict[str, int]:
        """The unified ``stats()`` mapping (``repro.api.STATS_KEYS``)."""
        out = {name: getattr(self, name) for name in EngineStats.FIELDS}
        out["shard_count"] = 1
        return out

    def __call__(self) -> dict[str, int]:
        return self.as_dict()


@dataclass(frozen=True, slots=True)
class IngestResult:
    """Outcome of ingesting one message."""

    msg_id: int
    bundle_id: int
    created_bundle: bool
    edge: Connection | None
    refinement: RefinementReport | None = None


class ProvenanceIndexer:
    """Streaming provenance discovery over micro-blog messages.

    Parameters
    ----------
    config:
        Weights and limits; use the
        :class:`~repro.core.config.IndexerConfig` factories to get the
        paper's three experiment variants.
    analyzer:
        Keyword extraction chain; shared with retrieval layers.
    store:
        Optional :class:`~repro.core.pool.BundleSink` receiving evicted /
        closed bundles (the on-disk back-end of Fig. 4).
    track_edges:
        Keep the cumulative ``(src, dst)`` edge ledger used by the
        Section VI-B evaluation.  Costs one set entry per message; disable
        for pure-throughput runs.
    obs:
        The engine's :class:`~repro.obs.Observability` (metrics registry
        + optional tracer).  Defaults to a fresh enabled registry with
        tracing off; pass ``Observability.disabled()`` for
        pure-throughput runs (stage timers then read zero).
    """

    def __init__(self, config: IndexerConfig | None = None, *,
                 analyzer: Analyzer | None = None,
                 store: BundleSink | None = None,
                 track_edges: bool = True,
                 obs: Observability | None = None) -> None:
        self.config = config or IndexerConfig()
        self.analyzer = analyzer or Analyzer()
        self.store = store
        self.obs = obs or Observability()
        self.summary_index = SummaryIndex(
            backend=self.config.postings_backend)
        self.pool = BundlePool(self.config)
        self.stats = EngineStats()
        self.current_date = 0.0
        self.track_edges = track_edges
        self._edge_ledger: set[tuple[int, int]] = set()
        #: Candidate fan-in of the most recent Algorithm 1 run:
        #: ``(bundles hit by postings, bundles fully scored)``.
        self.last_candidate_fanin: tuple[int, int] = (0, 0)
        # Degradation knobs, driven by the overload ladder
        # (:mod:`repro.reliability.overload`).  ``candidate_cap`` tightens
        # the bundle-match fan-in below ``config.max_candidates`` (REDUCED
        # mode); ``skeleton_matching`` skips keyword extraction and
        # keyword-similarity scoring entirely, matching on the exact
        # indicants only — RT ancestry, URLs, hashtags (SKELETON mode).
        self.candidate_cap: int | None = None
        self.skeleton_matching: bool = False
        #: The admission ladder's current rung as an ``int`` (0=NORMAL),
        #: pushed by :meth:`OverloadController.apply_mode` so every
        #: audit record carries the mode it was decided under.
        self.current_rung: int = 0
        self._searcher: "BundleSearchEngine | None" = None
        if self.obs.audit is not None:
            self.obs.audit.bind(self.pool)
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Wire this engine's signals into its registry.

        Counters are callback-backed over :class:`EngineStats` (zero
        hot-path cost); the pool and summary index register their own
        gauges; stage latencies are real histograms observed per ingest.
        """
        registry = self.obs.registry
        stats = self.stats
        for name, field_name, help_text in (
                ("repro_messages_ingested_total", "messages_ingested",
                 "Messages routed through Algorithm 1"),
                ("repro_bundles_created_total", "bundles_created",
                 "Fresh bundles allocated (no candidate matched)"),
                ("repro_bundles_matched_total", "bundles_matched",
                 "Messages placed into an existing bundle"),
                ("repro_edges_created_total", "edges_created",
                 "Provenance connections discovered (Algorithm 2)"),
                ("repro_refinements_total", "refinements",
                 "Memory refinement scans (Algorithm 3)"),
                ("repro_bundles_closed_total", "bundles_closed",
                 "Bundles closed by the bundle-size constraint"),
                ("repro_skeleton_ingests_total", "skeleton_ingests",
                 "Messages ingested in SKELETON (exact-indicant) mode"),
        ):
            registry.counter(
                name, help=help_text,
                callback=(lambda f=field_name: getattr(stats, f)))
        self._stage_histograms = {
            stage: registry.histogram(
                "repro_stage_seconds", unit="seconds",
                help="Per-stage maintenance latency (Fig. 13's signals)",
                labels={"stage": stage}, buckets=DEFAULT_LATENCY_BUCKETS)
            for stage in StageTimers.STAGES
        }
        self.timers = StageTimers(self._stage_histograms)
        # Candidate fan-in shape: how many bundles Algorithm 1 fetched
        # vs actually scored per ingest.  The gap is what the candidate
        # cap (REDUCED rung included) cut — the scaling wall ROADMAP
        # item 3's prefix-filter pruning attacks.
        fanin_help = ("Per-ingest Algorithm 1 candidate bundles, by "
                      "phase (fetched = postings hits, scored = after "
                      "the candidate cap)")
        self._fanin_fetched_hist = registry.histogram(
            "repro_candidate_fanin", help=fanin_help,
            labels={"phase": "fetched"}, buckets=COUNT_BUCKETS)
        self._fanin_scored_hist = registry.histogram(
            "repro_candidate_fanin", help=fanin_help,
            labels={"phase": "scored"}, buckets=COUNT_BUCKETS)
        self._fanin_capped = registry.counter(
            "repro_candidate_capped_total",
            help="Ingests whose candidate set was cut by the cap")
        self.pool.bind_registry(registry)
        self.summary_index.bind_registry(registry)
        self._pool_memory_gauge = registry.gauge(
            "repro_pool_memory_bytes",
            callback=self.pool.approximate_memory_bytes)
        self._index_memory_gauge = registry.gauge(
            "repro_index_memory_bytes",
            callback=self.summary_index.approximate_memory_bytes)
        if self.store is not None and hasattr(self.store, "bind_registry"):
            self.store.bind_registry(registry)
        tracer = self.obs.tracer
        if tracer is not None:
            registry.counter("repro_traces_offered_total",
                             help="Messages considered for tracing",
                             callback=lambda: tracer.offered)
            registry.counter("repro_traces_sampled_total",
                             help="Messages actually traced",
                             callback=lambda: tracer.sampled)
        audit = self.obs.audit
        if audit is not None:
            registry.counter("repro_audit_records_total",
                             help="Decision records written to the audit "
                                  "ring",
                             callback=lambda: audit.recorded)
            registry.counter("repro_audit_dropped_total",
                             help="Audit records evicted from the ring "
                                  "(non-resident only)",
                             callback=lambda: audit.dropped)

    # ------------------------------------------------------------------
    # Ingestion — Algorithm 1
    # ------------------------------------------------------------------

    def ingest(self, message: Message) -> IngestResult:
        """Route one incoming message into the provenance index.

        A thin batch-of-one wrapper over :meth:`ingest_batch` (the
        primary ingest spelling); the result is identical to the
        message's entry in a larger batch.  The stream replays in date
        order; the latest message's date becomes the simulated current
        date (Section VI-A).
        """
        results = self.ingest_batch((message,))
        assert isinstance(results, list)
        return results[0]

    def _ingest_one(self, message: Message,
                    keywords: "frozenset[str] | None" = None,
                    ) -> IngestResult:
        """The per-message pipeline behind :meth:`ingest_batch`.

        ``keywords`` carries the batch-hoisted analyzer output; ``None``
        (the batch-of-one path, or SKELETON mode where extraction is
        skipped) analyses inline.  Either way the downstream stages see
        exactly the same frozenset.
        """
        tracer = self.obs.tracer
        trace = (tracer.begin(message.msg_id)
                 if tracer is not None else None)
        cell = self.obs.profile
        audit = self.obs.audit
        candidate_scores: "list | None" = [] if audit is not None else None
        allocation_scores: "list | None" = [] if audit is not None else None
        refinement_events: "list[RefinementEvent] | None" = None
        if self.skeleton_matching:
            # SKELETON mode: keyword extraction and keyword scoring are
            # the expensive, fuzzy part of Eq. 1; under overload the
            # engine falls back to the cheap exact indicants.  Messages
            # ingested this way register no keyword postings — the
            # measurable accuracy cost of the mode.
            keywords = frozenset()
            self.stats.skeleton_ingests += 1
        elif keywords is None:
            keywords = frozenset(
                self.analyzer.keywords(message.text,
                                       self.config.max_keywords))

        # -- Step 1+2a: fetch candidates and pick the max-scored bundle.
        if cell is not None:
            cell.stage = "bundle_match"
        t0 = time.perf_counter()
        bundle = self._select_bundle(message, keywords,
                                     collect=candidate_scores)
        created = bundle is None
        if bundle is None:
            bundle = self.pool.create_bundle()
            self.stats.bundles_created += 1
        else:
            self.stats.bundles_matched += 1
        t1 = time.perf_counter()
        self.timers.observe("bundle_match", t1 - t0)
        fetched, scored = self.last_candidate_fanin
        self._fanin_fetched_hist.observe(fetched)
        self._fanin_scored_hist.observe(scored)
        if scored < fetched:
            self._fanin_capped.inc()

        # -- Step 2b: allocation inside the bundle (Algorithm 2).
        if cell is not None:
            cell.stage = "message_placement"
        edge = bundle.insert(message, keywords, collect=allocation_scores)
        if edge is not None:
            self.stats.edges_created += 1
            if self.track_edges:
                self._edge_ledger.add(edge.as_pair())
        t2 = time.perf_counter()
        self.timers.observe("message_placement", t2 - t1)

        # -- Step 3: update the summary index.
        if cell is not None:
            cell.stage = "index_update"
        self.summary_index.add_message(bundle.bundle_id, message, keywords)
        if (self.config.max_bundle_size is not None
                and len(bundle) >= self.config.max_bundle_size
                and not bundle.closed):
            bundle.close()
            self.stats.bundles_closed += 1
        t3 = time.perf_counter()
        self.timers.observe("index_update", t3 - t2)
        anatomy = self.obs.anatomy
        if anatomy is not None:
            # Post-index-update so touched postings lengths include the
            # message just placed (a brand-new term observes length 1).
            anatomy.observe_ingest(message, keywords, self.summary_index)

        self.current_date = max(self.current_date, message.date)
        # Arrival floor: an out-of-order (late) message must not leave
        # the receiving bundle timestamped in the past — Algorithm 3's
        # G(B) ranks by last_update, so a stale-dated insert (worst: a
        # late message opening a *fresh* bundle) would make the bundle
        # instant eviction bait.  For date-ordered streams
        # current_date == message.date here, so this is a no-op.
        if bundle.last_update < self.current_date:
            bundle.last_update = self.current_date
        self.stats.messages_ingested += 1

        # -- Memory refinement (Algorithm 3) when the trigger fires.
        report = None
        t4 = t3
        if self.pool.needs_refinement():
            if cell is not None:
                cell.stage = "memory_refinement"
            if audit is not None:
                refinement_events = []
            report = self.pool.refine(
                self.current_date, self.summary_index, self.store,
                collect=refinement_events)
            self.stats.refinements += 1
            t4 = time.perf_counter()
            self.timers.observe("memory_refinement", t4 - t3)
        if cell is not None:
            cell.stage = ""

        outcome = (IngestOutcome.NEW_BUNDLE if created
                   else IngestOutcome.MATCHED)
        if trace is not None:
            hit, scored = self.last_candidate_fanin
            trace.span("candidate_selection", 0.0, t1 - t0,
                       candidates=hit, scored=scored,
                       skeleton=self.skeleton_matching)
            trace.span("placement", t1 - t0, t2 - t1,
                       edge=edge is not None,
                       parent=(edge.as_pair()[1]
                               if edge is not None else None))
            trace.span("index_update", t2 - t0, t3 - t2,
                       closed=bundle.closed)
            if report is not None:
                trace.span("refinement", t3 - t0, t4 - t3,
                           removed=report.removed,
                           pool_after=report.pool_size_after)
            assert tracer is not None
            tracer.finish(
                trace, duration=t4 - t0,
                msg_id=message.msg_id,
                outcome=outcome.value,
                bundle_id=bundle.bundle_id)

        if audit is not None:
            cap = self.config.max_candidates
            if self.candidate_cap is not None:
                cap = min(cap, self.candidate_cap)
            audit.record_decision(
                msg_id=message.msg_id,
                outcome=outcome,
                rung=self.current_rung,
                bundle_id=bundle.bundle_id,
                parent_id=(edge.as_pair()[1] if edge is not None else None),
                edge_kind=(edge.kind.value if edge is not None else None),
                skeleton=self.skeleton_matching,
                candidate_cap=cap,
                threshold=self.config.min_match_score,
                candidates=candidate_scores,
                allocation=allocation_scores,
                refinement=refinement_events)

        result = IngestResult(
            msg_id=message.msg_id,
            bundle_id=bundle.bundle_id,
            created_bundle=created,
            edge=edge,
            refinement=report,
        )
        quality = self.obs.quality
        if quality is not None:
            quality.observe(message, result)
        return result

    def ingest_folded(self, message: Message, bundle_id: int,
                      duplicate_of: "int | None" = None) -> IngestResult:
        """Place a guard-folded near-duplicate straight into its bundle.

        The ingest guard's LSH screen already decided the destination
        (the bundle holding the message this one near-duplicates), so
        Algorithm 1's candidate scoring is skipped entirely; Algorithm 2
        still aligns the message *inside* the bundle, so a duplicate
        that declares an RT keeps its provenance edge.  When
        ``duplicate_of`` names a member still in the bundle, its
        registered keywords stand in for the copy's — the content is
        the same by construction, and skipping the re-analysis is most
        of the fold path's speedup.  When the target bundle has been
        evicted or closed in the meantime the call falls back to the
        full :meth:`ingest` — deterministically, so a WAL replay of a
        journaled fold reproduces the same placement (the pool state at
        the same sequence number is identical, and the origin's
        keywords are journaled state too: snapshots persist per-member
        keywords verbatim).
        """
        bundle = self.pool.try_get(bundle_id)
        if bundle is None or bundle.closed:
            return self.ingest(message)
        tracer = self.obs.tracer
        trace = (tracer.begin(message.msg_id)
                 if tracer is not None else None)
        cell = self.obs.profile
        audit = self.obs.audit
        allocation_scores: "list | None" = [] if audit is not None else None
        refinement_events: "list[RefinementEvent] | None" = None
        if self.skeleton_matching:
            keywords: frozenset[str] = frozenset()
            self.stats.skeleton_ingests += 1
        else:
            origin_keywords = (bundle.keywords_of(duplicate_of)
                               if duplicate_of is not None else None)
            if origin_keywords:
                keywords = origin_keywords
            else:
                keywords = frozenset(
                    self.analyzer.keywords(message.text,
                                           self.config.max_keywords))
        self.last_candidate_fanin = (0, 0)
        self.stats.bundles_matched += 1

        if cell is not None:
            cell.stage = "message_placement"
        t0 = time.perf_counter()
        edge = bundle.insert(message, keywords, collect=allocation_scores)
        if edge is not None:
            self.stats.edges_created += 1
            if self.track_edges:
                self._edge_ledger.add(edge.as_pair())
        t1 = time.perf_counter()
        self.timers.observe("message_placement", t1 - t0)

        if cell is not None:
            cell.stage = "index_update"
        self.summary_index.add_message(bundle.bundle_id, message, keywords)
        if (self.config.max_bundle_size is not None
                and len(bundle) >= self.config.max_bundle_size
                and not bundle.closed):
            bundle.close()
            self.stats.bundles_closed += 1
        t2 = time.perf_counter()
        self.timers.observe("index_update", t2 - t1)
        anatomy = self.obs.anatomy
        if anatomy is not None:
            # Folded ingests skip Algorithm 1, so no fan-in observation
            # (zeros would pollute that distribution) — but their terms
            # still land in the index, so the postings shape counts them.
            anatomy.observe_ingest(message, keywords, self.summary_index)

        self.current_date = max(self.current_date, message.date)
        if bundle.last_update < self.current_date:
            bundle.last_update = self.current_date
        self.stats.messages_ingested += 1

        report = None
        t3 = t2
        if self.pool.needs_refinement():
            if cell is not None:
                cell.stage = "memory_refinement"
            if audit is not None:
                refinement_events = []
            report = self.pool.refine(
                self.current_date, self.summary_index, self.store,
                collect=refinement_events)
            self.stats.refinements += 1
            t3 = time.perf_counter()
            self.timers.observe("memory_refinement", t3 - t2)
        if cell is not None:
            cell.stage = ""

        outcome = IngestOutcome.FOLDED
        if trace is not None:
            trace.span("placement", 0.0, t1 - t0,
                       edge=edge is not None,
                       parent=(edge.as_pair()[1]
                               if edge is not None else None),
                       folded=True)
            trace.span("index_update", t1 - t0, t2 - t1,
                       closed=bundle.closed)
            if report is not None:
                trace.span("refinement", t2 - t0, t3 - t2,
                           removed=report.removed,
                           pool_after=report.pool_size_after)
            assert tracer is not None
            tracer.finish(
                trace, duration=t3 - t0,
                msg_id=message.msg_id,
                outcome=outcome.value,
                bundle_id=bundle.bundle_id)

        if audit is not None:
            audit.record_decision(
                msg_id=message.msg_id,
                outcome=outcome,
                rung=self.current_rung,
                bundle_id=bundle.bundle_id,
                parent_id=(edge.as_pair()[1] if edge is not None else None),
                edge_kind=(edge.kind.value if edge is not None else None),
                skeleton=self.skeleton_matching,
                candidate_cap=0,
                threshold=self.config.min_match_score,
                allocation=allocation_scores,
                refinement=refinement_events)

        result = IngestResult(
            msg_id=message.msg_id,
            bundle_id=bundle.bundle_id,
            created_bundle=False,
            edge=edge,
            refinement=report,
        )
        quality = self.obs.quality
        if quality is not None:
            quality.observe(message, result)
        return result

    #: Messages analysed per hoisted keyword-extraction chunk in
    #: :meth:`ingest_batch` — bounds the buffered slice of a streaming
    #: iterable while amortising the text-analysis stage.
    BATCH_CHUNK = 512

    def ingest_batch(self, messages: "Iterable[Message]", *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Ingest a date-ordered batch — the primary ingest spelling.

        Returns the per-message results in input order, or just the
        count when ``count_only=True`` (the hot path: no result list is
        accumulated).

        The batch is processed in :data:`BATCH_CHUNK` slices: keyword
        extraction (the stateless analyzer stage) is hoisted and run
        for the whole slice up front, then each message runs the
        candidate gather + vectorised Eq. 1 scoring of
        :meth:`_select_bundle`.  Placement itself stays sequential by
        construction — message *i+1*'s candidate set depends on the
        index and pool updates of message *i* — so results are
        identical to one-at-a-time ingestion, which the conformance
        suite asserts.
        """
        results: "list[IngestResult]" = []
        count = 0
        iterator = iter(messages)
        analyze = self.analyzer.keywords
        max_keywords = self.config.max_keywords
        while True:
            chunk = list(islice(iterator, self.BATCH_CHUNK))
            if not chunk:
                break
            if self.skeleton_matching:
                # SKELETON mode skips extraction; _ingest_one handles it.
                batch_keywords: "list[frozenset[str] | None]" = (
                    [None] * len(chunk))
            else:
                batch_keywords = [
                    frozenset(analyze(message.text, max_keywords))
                    for message in chunk
                ]
            for message, keywords in zip(chunk, batch_keywords):
                result = self._ingest_one(message, keywords)
                if count_only:
                    count += 1
                else:
                    results.append(result)
        return count if count_only else results

    @deprecated("ingest_batch(messages, count_only=True)")
    def ingest_all(self, messages: "list[Message]") -> int:
        """Deprecated spelling of ``ingest_batch(..., count_only=True)``."""
        count = self.ingest_batch(messages, count_only=True)
        assert isinstance(count, int)
        return count

    def _select_bundle(self, message: Message,
                       keywords: frozenset[str], *,
                       collect: "list[CandidateScore] | None" = None,
                       ) -> Bundle | None:
        """Algorithm 1 steps 1-2: best candidate bundle above threshold.

        One :meth:`~repro.core.summary_index.SummaryIndex.
        gather_candidates` call returns every candidate with its
        per-kind postings-hit counts — which *are* the Eq. 1 shared
        counts, because the index keeps one posting per (term, bundle)
        in lockstep with the pool — so scoring needs no per-candidate
        ``Bundle.shared_counts`` intersections.  With numpy present the
        whole candidate set is scored in a few array ops; the pure-
        Python fallback walks the same gather and produces bit-
        identical scores, selections and audit rows.

        ``collect``, when given, receives the Eq. 1 evidence the audit
        layer records: the vectorised path appends six raw scalars per
        fully-scored candidate (flat, stride 6), the scalar path one
        deferred :class:`~repro.obs.audit._RawCandidates` capture.
        ``DecisionRecord.materialize`` turns either form into
        :class:`~repro.obs.audit.CandidateScore` rows on first read.
        """
        gather = self.summary_index.gather_candidates(message, keywords)
        fetched = len(gather)
        if not fetched:
            self.last_candidate_fanin = (0, 0)
            return None
        # Cap full scoring at the strongest posting hits; REDUCED mode
        # tightens the cap further via ``candidate_cap``.  The gather's
        # ids ascend, so a stable sort on hit count breaks count ties
        # on bundle id — the capped set, and with it the audit log, is
        # identical across processes and backends.
        cap = self.config.max_candidates
        if self.candidate_cap is not None:
            cap = min(cap, self.candidate_cap)
        # Representation-driven dispatch: the storage hands small
        # candidate sets over as plain lists (vector maths loses to a
        # dict walk there) and heavy-hitter sets as numpy arrays.  The
        # two scoring paths are bit-identical, so this is purely a
        # speed decision — asserted by the conformance matrix, where
        # the dict backend always takes the scalar path.
        if _np is not None and type(gather.ids) is not list:
            return self._select_vectorised(message, keywords, gather, cap,
                                           collect)
        return self._select_scalar(message, keywords, gather, cap, collect)

    def _select_vectorised(self, message: Message,
                           keywords: frozenset[str],
                           gather: CandidateGather, cap: int,
                           collect: "list[CandidateScore] | None",
                           ) -> Bundle | None:
        """Numpy path of :meth:`_select_bundle` (see its docstring)."""
        ids = gather.ids
        fetched = len(ids)
        order = _np.argsort(-gather.hits, kind="stable")
        if fetched > cap:
            order = order[:cap]
        self.last_candidate_fanin = (fetched, len(order))
        # Only liveness needs the bundle objects: candidates whose
        # bundle was evicted mid-flight (defensive; eviction purges
        # postings) or closed are skipped before scoring, exactly as
        # the per-candidate loop did.
        live = self.pool.live()
        keep: "list[int]" = []
        bundles: "list[Bundle]" = []
        for position in order.tolist():
            bundle = live.get(int(ids[position]))
            if bundle is None or bundle.closed:
                continue
            keep.append(position)
            bundles.append(bundle)
        if not bundles:
            return None
        rows = _np.array(keep, dtype=_np.intp)
        tag_hits, url_hits, kw_hits, user_hits = gather.kind_hits
        shared_urls = url_hits[rows]
        shared_tags = tag_hits[rows]
        shared_kws = kw_hits[rows]
        rt_hits = user_hits[rows] > 0
        last_dates = _np.fromiter(
            (bundle.last_update for bundle in bundles),
            dtype=_np.float64, count=len(bundles))
        scores = bundle_match_scores(
            message.date,
            shared_urls=shared_urls,
            shared_hashtags=shared_tags,
            shared_keywords=shared_kws,
            rt_hits=rt_hits,
            bundle_last_dates=last_dates,
            config=self.config,
        )
        selected_ids = ids[rows]
        if collect is not None:
            # Raw capture: six *Python* scalars per candidate appended
            # to one flat list (stride 6), in capped scoring order —
            # numpy scalars would poison the byte-deterministic audit
            # JSONL, so each column is bulk-converted via tolist()
            # (far cheaper than per-element extraction).
            # DecisionRecord.materialize rebuilds CandidateScore rows
            # on first read.
            columns = zip(selected_ids.tolist(), shared_urls.tolist(),
                          shared_tags.tolist(), shared_kws.tolist(),
                          rt_hits.tolist(), scores.tolist())
            for row in columns:
                collect += row
        best_score = float(scores.max())
        if best_score < self.config.min_match_score:
            return None
        # Max score wins; ties go to the smallest bundle id.
        best_id = int(selected_ids[scores == best_score].min())
        return live[best_id]

    def _select_scalar(self, message: Message,
                       keywords: frozenset[str],
                       gather: CandidateGather, cap: int,
                       collect: "list[CandidateScore] | None",
                       ) -> Bundle | None:
        """Pure-Python fallback of :meth:`_select_bundle` (no numpy)."""
        ids = gather.ids
        hits = gather.hits
        fetched = len(ids)
        order = sorted(range(fetched),
                       key=lambda index: (-hits[index], ids[index]))[:cap]
        self.last_candidate_fanin = (fetched, len(order))
        tag_hits, url_hits, kw_hits, user_hits = gather.kind_hits
        live = self.pool.live()
        best_bundle: "Bundle | None" = None
        best_score = float("-inf")
        if collect is not None:
            kept_positions: "list[int]" = []
            kept_scores: "list[float]" = []
        for position in order:
            bundle = live.get(ids[position])
            if bundle is None or bundle.closed:
                continue
            score = bundle_match_score(
                message,
                shared_urls=url_hits[position],
                shared_hashtags=tag_hits[position],
                shared_keywords=kw_hits[position],
                rt_hit=user_hits[position] > 0,
                bundle_last_date=bundle.last_update,
                config=self.config,
            )
            if collect is not None:
                # Deferred capture: the per-kind counts already live in
                # the gather, so the loop saves only the position and
                # the compared score; _RawCandidates.rows rebuilds the
                # stride-6 evidence when the record is read.
                kept_positions.append(position)
                kept_scores.append(score)
            if score > best_score or (
                    score == best_score and best_bundle is not None
                    and bundle.bundle_id < best_bundle.bundle_id):
                best_bundle = bundle
                best_score = score
        if collect is not None and kept_positions:
            collect.append(_RawCandidates(gather, kept_positions,
                                          kept_scores))
        if best_bundle is None or best_score < self.config.min_match_score:
            return None
        return best_bundle

    # ------------------------------------------------------------------
    # Inspection used by retrieval, metrics and benchmarks
    # ------------------------------------------------------------------

    def bundle(self, bundle_id: int) -> Bundle:
        """Fetch a pooled bundle by id (raises if evicted)."""
        bundle = self.pool.try_get(bundle_id)
        if bundle is None:
            raise BundleNotFoundError(
                f"bundle {bundle_id} is not in the pool (evicted or unknown)")
        return bundle

    def bundles(self) -> "list[Bundle]":
        """All bundles currently pooled in memory."""
        return list(self.pool)

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Cumulative (src, dst) connection pairs this engine discovered.

        Includes edges inside bundles that were later evicted or closed —
        Section VI-B compares what each method *found*, and eviction does
        not un-find a connection.
        """
        return set(self._edge_ledger)

    # ------------------------------------------------------------------
    # Cross-shard edge repair hooks (:mod:`repro.runtime.repair`)
    # ------------------------------------------------------------------

    def best_alignment(self, message: Message,
                       ) -> "tuple[float, float, int] | None":
        """Probe: this engine's best provenance parent for ``message``.

        Runs Algorithm 1 bundle selection followed by Algorithm 2
        candidate-member alignment *without mutating any state* — the
        read side of asynchronous cross-shard edge repair.  Only members
        strictly earlier than ``message`` (by ``(date, msg_id)``) are
        eligible, so probing a peer shard can never produce a
        time-travelling edge.  Returns the winner as
        ``(similarity, member_date, member_msg_id)`` — comparable with
        ``(score, date, -msg_id)`` max-keys after negating the id — or
        ``None`` when no bundle clears Eq. 1 or no member shares an
        indicant.
        """
        keywords = frozenset(
            self.analyzer.keywords(message.text, self.config.max_keywords))
        bundle = self._select_bundle(message, keywords)
        if bundle is None:
            return None
        best_key: "tuple[float, float, int] | None" = None
        probe = (message.date, message.msg_id)
        for member in bundle._candidate_members(message, keywords):
            if (member.date, member.msg_id) >= probe:
                continue
            key = (message_similarity(message, member, self.config),
                   member.date, -member.msg_id)
            if best_key is None or key > best_key:
                best_key = key
        if best_key is None:
            return None
        return (best_key[0], best_key[1], -best_key[2])

    def has_edge(self, src_id: int, dst_id: int) -> bool:
        """Ledger membership probe (O(1); used by idempotent repair)."""
        return (src_id, dst_id) in self._edge_ledger

    def repair_edge(self, src_id: int, old_dst: "int | None",
                    new_dst: int) -> bool:
        """Replace ``src_id``'s ledger edge — idempotent, match-on-old.

        The mutation side of asynchronous cross-shard edge repair: flips
        the ledger entry ``(src, old_dst) -> (src, new_dst)`` (or
        installs a fresh edge when ``old_dst`` is ``None``).  Returns
        ``True`` when the ledger changed; a no-op ``False`` means the
        repair was already applied (journal replay, duplicate RPC) or
        superseded by a later one — exactly the idempotence the repair
        journal's replay relies on.  Only the ledger moves: bundle
        membership and the summary index stay untouched, so repeated
        ingest of the stream still reproduces the same placements.
        """
        if not self.track_edges:
            return False
        pair = (src_id, new_dst)
        if pair in self._edge_ledger:
            return False
        if old_dst is not None:
            if (src_id, old_dst) not in self._edge_ledger:
                return False
            self._edge_ledger.discard((src_id, old_dst))
        self._edge_ledger.add(pair)
        return True

    def snapshot(self) -> "MemorySnapshot":
        """Deterministic memory accounting for Fig. 11.

        Reads through the registry's callback gauges — the same series
        ``repro top``, ``repro health`` and the Prometheus export show —
        so the CLI and the benchmarks can never disagree.
        """
        return MemorySnapshot(
            pool_bytes=int(self._pool_memory_gauge.value),
            index_bytes=int(self._index_memory_gauge.value),
            message_count=self.pool.message_count(),
            bundle_count=len(self.pool),
        )

    @deprecated("snapshot()")
    def memory_snapshot(self) -> "MemorySnapshot":
        """Deprecated spelling of :meth:`snapshot`."""
        return self.snapshot()

    def search(self, raw_query: str, k: int = 10) -> "list[BundleHit]":
        """Ranked Eq. 7 retrieval over this engine's live pool.

        Lazily constructs one :class:`~repro.query.bundle_search.
        BundleSearchEngine` on first use (a local import — the query
        layer imports this module).
        """
        if self._searcher is None:
            from repro.query.bundle_search import BundleSearchEngine
            self._searcher = BundleSearchEngine(self)
        return self._searcher.search(raw_query, k=k)

    def close(self) -> None:
        """Release resources (:class:`repro.api.Indexer`); idempotent.

        The bare engine owns no OS handles — its optional store sink is
        closed by whoever opened it — so this only drops the lazy
        searcher.
        """
        self._searcher = None

    def __enter__(self) -> "ProvenanceIndexer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass(frozen=True, slots=True)
class MemorySnapshot:
    """Point-in-time memory accounting (Fig. 11a/11b series)."""

    pool_bytes: int
    index_bytes: int
    message_count: int
    bundle_count: int

    @property
    def total_bytes(self) -> int:
        """Pool plus summary-index footprint."""
        return self.pool_bytes + self.index_bytes

    @property
    def total_megabytes(self) -> float:
        """Footprint in MB (the unit of Fig. 11a)."""
        return self.total_bytes / (1024 * 1024)
