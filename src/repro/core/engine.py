"""The provenance indexing engine (Algorithm 1 + system framework, Fig. 4).

:class:`ProvenanceIndexer` wires together the in-memory processing unit
(summary index + bundle pool), the optional on-disk back-end and the text
analyzer, and exposes the single streaming entry point :meth:`ingest`:

1. **bundle match** — fetch candidate bundles from the summary index,
   score them with Eq. 1, pick the best (or create a fresh bundle),
2. **message placement** — Algorithm 2 inside the chosen bundle,
3. **index update** — register the message's indicants,
4. **memory refinement** — Algorithm 3 when the pool trigger fires.

Per-stage wall-clock accumulators back Fig. 13; the ground-truth edge
ledger backs the accuracy/return evaluation of Section VI-B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import Connection
from repro.core.errors import BundleNotFoundError
from repro.core.message import Message
from repro.core.pool import BundlePool, BundleSink, RefinementReport
from repro.core.scoring import bundle_match_score
from repro.core.summary_index import SummaryIndex
from repro.text.analyzer import Analyzer

__all__ = [
    "ProvenanceIndexer",
    "IngestResult",
    "StageTimers",
    "EngineStats",
    "MemorySnapshot",
]


@dataclass(slots=True)
class StageTimers:
    """Accumulated wall-clock seconds per processing stage (Fig. 13)."""

    bundle_match: float = 0.0
    message_placement: float = 0.0
    index_update: float = 0.0
    memory_refinement: float = 0.0

    @property
    def total(self) -> float:
        """Total maintenance time (Fig. 12's series)."""
        return (self.bundle_match + self.message_placement
                + self.index_update + self.memory_refinement)


@dataclass(slots=True)
class EngineStats:
    """Counters the benchmarks and examples report."""

    messages_ingested: int = 0
    bundles_created: int = 0
    bundles_matched: int = 0
    edges_created: int = 0
    refinements: int = 0
    bundles_closed: int = 0
    skeleton_ingests: int = 0


@dataclass(frozen=True, slots=True)
class IngestResult:
    """Outcome of ingesting one message."""

    msg_id: int
    bundle_id: int
    created_bundle: bool
    edge: Connection | None
    refinement: RefinementReport | None = None


class ProvenanceIndexer:
    """Streaming provenance discovery over micro-blog messages.

    Parameters
    ----------
    config:
        Weights and limits; use the
        :class:`~repro.core.config.IndexerConfig` factories to get the
        paper's three experiment variants.
    analyzer:
        Keyword extraction chain; shared with retrieval layers.
    store:
        Optional :class:`~repro.core.pool.BundleSink` receiving evicted /
        closed bundles (the on-disk back-end of Fig. 4).
    track_edges:
        Keep the cumulative ``(src, dst)`` edge ledger used by the
        Section VI-B evaluation.  Costs one set entry per message; disable
        for pure-throughput runs.
    """

    def __init__(self, config: IndexerConfig | None = None, *,
                 analyzer: Analyzer | None = None,
                 store: BundleSink | None = None,
                 track_edges: bool = True) -> None:
        self.config = config or IndexerConfig()
        self.analyzer = analyzer or Analyzer()
        self.store = store
        self.summary_index = SummaryIndex()
        self.pool = BundlePool(self.config)
        self.timers = StageTimers()
        self.stats = EngineStats()
        self.current_date = 0.0
        self.track_edges = track_edges
        self._edge_ledger: set[tuple[int, int]] = set()
        # Degradation knobs, driven by the overload ladder
        # (:mod:`repro.reliability.overload`).  ``candidate_cap`` tightens
        # the bundle-match fan-in below ``config.max_candidates`` (REDUCED
        # mode); ``skeleton_matching`` skips keyword extraction and
        # keyword-similarity scoring entirely, matching on the exact
        # indicants only — RT ancestry, URLs, hashtags (SKELETON mode).
        self.candidate_cap: int | None = None
        self.skeleton_matching: bool = False

    # ------------------------------------------------------------------
    # Ingestion — Algorithm 1
    # ------------------------------------------------------------------

    def ingest(self, message: Message) -> IngestResult:
        """Route one incoming message into the provenance index.

        The stream replays in date order; the latest message's date becomes
        the simulated current date (Section VI-A).
        """
        if self.skeleton_matching:
            # SKELETON mode: keyword extraction and keyword scoring are
            # the expensive, fuzzy part of Eq. 1; under overload the
            # engine falls back to the cheap exact indicants.  Messages
            # ingested this way register no keyword postings — the
            # measurable accuracy cost of the mode.
            keywords: frozenset[str] = frozenset()
            self.stats.skeleton_ingests += 1
        else:
            keywords = frozenset(
                self.analyzer.keywords(message.text,
                                       self.config.max_keywords))

        # -- Step 1+2a: fetch candidates and pick the max-scored bundle.
        started = time.perf_counter()
        bundle = self._select_bundle(message, keywords)
        created = bundle is None
        if bundle is None:
            bundle = self.pool.create_bundle()
            self.stats.bundles_created += 1
        else:
            self.stats.bundles_matched += 1
        self.timers.bundle_match += time.perf_counter() - started

        # -- Step 2b: allocation inside the bundle (Algorithm 2).
        started = time.perf_counter()
        edge = bundle.insert(message, keywords)
        if edge is not None:
            self.stats.edges_created += 1
            if self.track_edges:
                self._edge_ledger.add(edge.as_pair())
        self.timers.message_placement += time.perf_counter() - started

        # -- Step 3: update the summary index.
        started = time.perf_counter()
        self.summary_index.add_message(bundle.bundle_id, message, keywords)
        if (self.config.max_bundle_size is not None
                and len(bundle) >= self.config.max_bundle_size
                and not bundle.closed):
            bundle.close()
            self.stats.bundles_closed += 1
        self.timers.index_update += time.perf_counter() - started

        self.current_date = max(self.current_date, message.date)
        self.stats.messages_ingested += 1

        # -- Memory refinement (Algorithm 3) when the trigger fires.
        report = None
        if self.pool.needs_refinement():
            started = time.perf_counter()
            report = self.pool.refine(
                self.current_date, self.summary_index, self.store)
            self.stats.refinements += 1
            self.timers.memory_refinement += time.perf_counter() - started

        return IngestResult(
            msg_id=message.msg_id,
            bundle_id=bundle.bundle_id,
            created_bundle=created,
            edge=edge,
            refinement=report,
        )

    def ingest_all(self, messages: "list[Message]") -> int:
        """Ingest a date-ordered batch; return how many were processed."""
        for message in messages:
            self.ingest(message)
        return len(messages)

    def _select_bundle(self, message: Message,
                       keywords: frozenset[str]) -> Bundle | None:
        """Algorithm 1 steps 1-2: best candidate bundle above threshold."""
        hits = self.summary_index.candidates(message, keywords)
        if not hits:
            return None
        # Cap full scoring at the strongest posting hits; REDUCED mode
        # tightens the cap further via ``candidate_cap``.
        cap = self.config.max_candidates
        if self.candidate_cap is not None:
            cap = min(cap, self.candidate_cap)
        candidate_ids = [bundle_id for bundle_id, _ in
                         hits.most_common(cap)]
        best_bundle: Bundle | None = None
        best_score = float("-inf")
        for bundle_id in candidate_ids:
            bundle = self.pool.try_get(bundle_id)
            if bundle is None or bundle.closed:
                continue
            shared_urls, shared_tags, shared_kws, rt_hit = (
                bundle.shared_counts(message, keywords))
            score = bundle_match_score(
                message,
                shared_urls=shared_urls,
                shared_hashtags=shared_tags,
                shared_keywords=shared_kws,
                rt_hit=rt_hit,
                bundle_last_date=bundle.last_update,
                config=self.config,
            )
            if score > best_score or (
                    score == best_score and best_bundle is not None
                    and bundle.bundle_id < best_bundle.bundle_id):
                best_bundle = bundle
                best_score = score
        if best_bundle is None or best_score < self.config.min_match_score:
            return None
        return best_bundle

    # ------------------------------------------------------------------
    # Inspection used by retrieval, metrics and benchmarks
    # ------------------------------------------------------------------

    def bundle(self, bundle_id: int) -> Bundle:
        """Fetch a pooled bundle by id (raises if evicted)."""
        bundle = self.pool.try_get(bundle_id)
        if bundle is None:
            raise BundleNotFoundError(
                f"bundle {bundle_id} is not in the pool (evicted or unknown)")
        return bundle

    def bundles(self) -> "list[Bundle]":
        """All bundles currently pooled in memory."""
        return list(self.pool)

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Cumulative (src, dst) connection pairs this engine discovered.

        Includes edges inside bundles that were later evicted or closed —
        Section VI-B compares what each method *found*, and eviction does
        not un-find a connection.
        """
        return set(self._edge_ledger)

    def memory_snapshot(self) -> "MemorySnapshot":
        """Deterministic memory accounting for Fig. 11."""
        return MemorySnapshot(
            pool_bytes=self.pool.approximate_memory_bytes(),
            index_bytes=self.summary_index.approximate_memory_bytes(),
            message_count=self.pool.message_count(),
            bundle_count=len(self.pool),
        )


@dataclass(frozen=True, slots=True)
class MemorySnapshot:
    """Point-in-time memory accounting (Fig. 11a/11b series)."""

    pool_bytes: int
    index_bytes: int
    message_count: int
    bundle_count: int

    @property
    def total_bytes(self) -> int:
        """Pool plus summary-index footprint."""
        return self.pool_bytes + self.index_bytes

    @property
    def total_megabytes(self) -> float:
        """Footprint in MB (the unit of Fig. 11a)."""
        return self.total_bytes / (1024 * 1024)
