"""Postings storage backends behind the summary index (Fig. 5).

The summary index logically maps ``kind -> term -> {bundle_id: count}``;
*how* those postings are laid out in memory is this module's concern.
Two conforming backends implement the :class:`PostingsStorage` protocol:

* :class:`DictPostingsStorage` — the legacy nested-dict layout, one
  Python dict per term.  Simple, O(1) updates, but every posting entry
  costs a boxed int pair plus dict-slot overhead, and candidate
  gathering walks Python objects.
* :class:`SlabPostingsStorage` — contiguous-array slabs following the
  dynamic memory-allocation policies of Asadi & Lin's real-time Twitter
  search work: terms are interned to dense ids, each term owns one
  extent inside a per-kind arena, extents grow by power-of-two slices
  seeded from the measured workload anatomy
  (:data:`SLAB_SLICE_SCHEDULE`, projected in ``BENCH_anatomy.json``),
  and freed extents go to per-capacity free lists so eviction churn
  reuses arena space instead of fragmenting it.

Both backends produce byte-identical observable output — same candidate
sets, same counts, same term iteration order (dict insertion order of
first appearance) — which ``tests/test_api_conformance.py`` asserts on
full seeded replays.  The slab arenas are ``array('q')`` buffers, so
when numpy is available (the image ships it; see ``core/dedup.py`` for
the same pattern) :meth:`SlabPostingsStorage.gather` turns candidate
fetching into a handful of array ops over zero-copy views; without
numpy every path falls back to pure Python with identical results.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left
from collections import Counter
from importlib import import_module
from types import MappingProxyType
from typing import Any, Iterable, Iterator, Mapping, Protocol, Sequence

from repro.core.errors import IndexError_

# Optional acceleration; the importlib spelling keeps mypy --strict
# happy on machines without numpy installed (the CI typing job).
try:
    _np: Any = import_module("numpy")
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

__all__ = [
    "INDICANT_KINDS",
    "SLAB_SLICE_SCHEDULE",
    "CandidateGather",
    "PostingsStorage",
    "DictPostingsStorage",
    "SlabPostingsStorage",
    "open_storage",
]

#: The four indicant kinds of Fig. 5, in canonical order.  The gather
#: encoding below packs the kind index into the low bits of candidate
#: ids, so the tuple must stay at four entries (two bits).
INDICANT_KINDS = ("hashtag", "url", "keyword", "user")

_KIND_INDEX = {kind: index for index, kind in enumerate(INDICANT_KINDS)}
_KIND_COUNT = len(INDICANT_KINDS)

#: Initial slice capacity (postings slots) per indicant kind.  Seeded
#: from the capacity report of ``BENCH_anatomy.json``: URL and hashtag
#: postings are overwhelmingly singletons (100% / 94.5% measured), so
#: they start at one slot; keywords are the fat tail (p99 extent 32)
#: and start at eight.  Growth doubles from here, so a mis-seeded term
#: pays O(log n) copies, never a correctness cost.
SLAB_SLICE_SCHEDULE: Mapping[str, int] = MappingProxyType({
    "hashtag": 1,
    "url": 1,
    "keyword": 8,
    "user": 1,
})

# Byte model behind the legacy dict backend's deterministic memory
# estimate; least-squares calibrated against the measured deep-size
# walk in repro.obs.anatomy (see tests/obs/test_anatomy.py).
_DICT_TERM_BASE_BYTES = 242  # term str header + outer dict slot + dict base
_DICT_TERM_ENTRY_BYTES = 76  # inner dict slot + boxed bundle id + count

# Slab equivalent: arenas are measured exactly via sys.getsizeof (the
# buffers dominate), so only the interning side needs a model — term
# string header + intern-dict slot + name-list slot + boxed tid.
_SLAB_TERM_BASE_BYTES = 150


class CandidateGather:
    """Candidate bundles of one message, with per-kind postings hits.

    The vectorised replacement for ``Counter`` candidate maps: ``ids``
    holds the candidate bundle ids in ascending order, ``hits`` the
    total postings hits per candidate (the Algorithm 1 cap weight), and
    ``kind_hits`` one aligned row per :data:`INDICANT_KINDS` entry.

    The per-kind rows are the Eq. 1 inputs directly: a bundle's hit
    count under kind *url* is exactly ``|url(t) ∩ url(B)|`` because the
    summary index keeps one posting per (term, bundle) in lockstep with
    the pool — which is what lets the engine skip per-candidate
    ``Bundle.shared_counts`` set intersections entirely.

    Sequences are plain lists for small candidate sets (and always
    without numpy) and numpy ``int64`` arrays when the slab backend's
    vectorised gather produced them; both spell the same values, and
    the engine dispatches its scoring path on the representation.
    """

    __slots__ = ("ids", "hits", "kind_hits")

    def __init__(self, ids: Any, hits: Any,
                 kind_hits: "tuple[Any, Any, Any, Any]") -> None:
        self.ids = ids
        self.hits = hits
        self.kind_hits = kind_hits

    def __len__(self) -> int:
        return len(self.ids)

    def counter(self) -> "Counter[int]":
        """The legacy ``Counter`` view (ascending bundle-id order)."""
        hits: "Counter[int]" = Counter()
        for bundle_id, total in zip(self.ids, self.hits):
            hits[int(bundle_id)] = int(total)
        return hits


#: Postings-hit count below which the slab gather stays in pure Python.
#: A handful of tiny numpy kernels (slice, concatenate, unique) costs
#: more than walking a few hundred entries in a dict; sweeping the
#: cutoff over dense and sparse workloads (see
#: ``benchmarks/bench_hotpath.py``) puts the crossover near 512 on
#: CPython 3.11.  Both sides produce identical values — the cutoff is
#: a speed knob, never a semantics knob.
SMALL_GATHER_CUTOFF = 512


def _empty_gather() -> CandidateGather:
    return CandidateGather([], [], ([], [], [], []))


def _package_gather(acc: "dict[int, list[int]]") -> CandidateGather:
    """Shared pure-Python packaging: per-id kind rows -> CandidateGather.

    Always returns plain lists: the engine's scalar selection consumes
    them directly, and small candidate sets (the common case) never pay
    a numpy-array construction.  The slab backend's numpy gather builds
    arrays itself for the large sets where vector maths wins.
    """
    if not acc:
        return _empty_gather()
    ids = sorted(acc)
    rows = [acc[bundle_id] for bundle_id in ids]
    totals = [row[0] + row[1] + row[2] + row[3] for row in rows]
    columns: "tuple[Any, Any, Any, Any]" = (
        [row[0] for row in rows],
        [row[1] for row in rows],
        [row[2] for row in rows],
        [row[3] for row in rows],
    )
    return CandidateGather(ids, totals, columns)


class PostingsStorage(Protocol):
    """What the summary index requires of a postings layout.

    ``bump``/``drop`` are the Algorithm 1 index-update verbs (insertion
    and eviction); ``gather`` is the candidate-fetch step returning a
    :class:`CandidateGather`; the remaining methods are the
    introspection surface the anatomy/metrics layers read.  Unknown
    kinds raise :class:`~repro.core.errors.IndexError_` everywhere.
    """

    def bump(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        """Count one occurrence of each term under ``bundle_id``."""
        ...

    def drop(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        """Erase ``bundle_id`` from each term's postings entirely."""
        ...

    def gather(self, groups: "Sequence[tuple[str, Iterable[str]]]",
               ) -> CandidateGather:
        """Candidate bundles hit by any (kind, terms) probe group."""
        ...

    def postings(self, kind: str, term: str) -> "Mapping[int, int]":
        """Read-only ``{bundle_id: count}`` view of one term."""
        ...

    def terms(self, kind: str) -> "Iterator[str]":
        """Iterate one kind's terms (first-appearance order)."""
        ...

    def term_count(self, kind: "str | None" = None) -> int:
        ...

    def entry_count(self, kind: "str | None" = None) -> int:
        ...

    def postings_length(self, kind: str, term: str) -> int:
        ...

    def postings_lengths(self, kind: str) -> "list[int]":
        ...

    def approximate_memory_bytes(self) -> int:
        ...

    def memory_root(self) -> object:
        """The object the deep-size memory accountant should walk."""
        ...


class DictPostingsStorage:
    """The legacy layout: ``kind -> term -> {bundle_id: count}`` dicts.

    Kept as the conformance reference and as a debugging fallback —
    every observable output matches :class:`SlabPostingsStorage`
    byte-for-byte.
    """

    __slots__ = ("_maps",)

    def __init__(self) -> None:
        self._maps: "dict[str, dict[str, dict[int, int]]]" = {
            kind: {} for kind in INDICANT_KINDS
        }

    def _map_for(self, kind: str) -> "dict[str, dict[int, int]]":
        try:
            return self._maps[kind]
        except KeyError:
            raise IndexError_(f"unknown indicant kind {kind!r}") from None

    def bump(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        term_map = self._map_for(kind)
        for term in terms:
            bundles = term_map.get(term)
            if bundles is None:
                bundles = term_map[term] = {}
            bundles[bundle_id] = bundles.get(bundle_id, 0) + 1

    def drop(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        term_map = self._map_for(kind)
        for term in terms:
            bundles = term_map.get(term)
            if bundles is None:
                continue
            bundles.pop(bundle_id, None)
            if not bundles:
                del term_map[term]

    def gather(self, groups: "Sequence[tuple[str, Iterable[str]]]",
               ) -> CandidateGather:
        acc: "dict[int, list[int]]" = {}
        for kind, terms in groups:
            term_map = self._map_for(kind)
            kind_index = _KIND_INDEX[kind]
            for term in terms:
                bundles = term_map.get(term)
                if bundles is None:
                    continue
                for bundle_id in bundles:
                    row = acc.get(bundle_id)
                    if row is None:
                        row = acc[bundle_id] = [0] * _KIND_COUNT
                    row[kind_index] += 1
        return _package_gather(acc)

    def postings(self, kind: str, term: str) -> "Mapping[int, int]":
        bundles = self._map_for(kind).get(term)
        if bundles is None:
            return MappingProxyType({})
        return MappingProxyType(bundles)

    def terms(self, kind: str) -> "Iterator[str]":
        return iter(self._map_for(kind))

    def term_count(self, kind: "str | None" = None) -> int:
        if kind is not None:
            return len(self._map_for(kind))
        return sum(len(terms) for terms in self._maps.values())

    def entry_count(self, kind: "str | None" = None) -> int:
        if kind is not None:
            return sum(len(bundles)
                       for bundles in self._map_for(kind).values())
        return sum(
            len(bundles)
            for terms in self._maps.values()
            for bundles in terms.values()
        )

    def postings_length(self, kind: str, term: str) -> int:
        bundles = self._map_for(kind).get(term)
        return len(bundles) if bundles is not None else 0

    def postings_lengths(self, kind: str) -> "list[int]":
        return [len(bundles) for bundles in self._map_for(kind).values()]

    def approximate_memory_bytes(self) -> int:
        total = 0
        for terms in self._maps.values():
            for term, bundles in terms.items():
                total += (_DICT_TERM_BASE_BYTES + len(term)
                          + len(bundles) * _DICT_TERM_ENTRY_BYTES)
        return total

    def memory_root(self) -> object:
        return self._maps


class _KindSlab:
    """One indicant kind's interned terms plus its postings arena.

    Every term owns one contiguous extent ``[off, off+cap)`` inside the
    ``ids``/``cnt`` arenas (parallel ``array('q')`` buffers: bundle ids
    and occurrence counts).  Extents are kept sorted by bundle id so
    membership is a binary search; bundle ids are allocated
    monotonically, so the common case appends at the extent tail.  On
    overflow the extent doubles — into a free extent of the target
    class when eviction has produced one, else fresh arena tail — and
    the old extent joins its capacity class's free list.  Term ids are
    recycled the same way, so long-running eviction churn reuses both
    arena space and metadata slots instead of growing without bound.
    """

    __slots__ = ("initial", "tids", "names", "free_tids",
                 "off", "cap", "length", "ids", "cnt",
                 "free", "entries")

    def __init__(self, initial: int) -> None:
        self.initial = initial
        self.tids: "dict[str, int]" = {}       # term -> tid
        self.names: "list[str | None]" = []    # tid -> term (None = free)
        self.free_tids: "list[int]" = []
        self.off = array("q")                  # tid -> extent offset
        self.cap = array("q")                  # tid -> extent capacity
        self.length = array("q")               # tid -> live entries
        self.ids = array("q")                  # arena: bundle ids
        self.cnt = array("q")                  # arena: occurrence counts
        self.free: "dict[int, list[int]]" = {}  # capacity -> offsets
        self.entries = 0

    def _alloc(self, capacity: int) -> int:
        free_list = self.free.get(capacity)
        if free_list:
            return free_list.pop()
        offset = len(self.ids)
        zeros = bytes(8 * capacity)
        self.ids.frombytes(zeros)
        self.cnt.frombytes(zeros)
        return offset

    def _new_term(self, term: str) -> int:
        if self.free_tids:
            tid = self.free_tids.pop()
            self.names[tid] = term
            self.off[tid] = self._alloc(self.initial)
            self.cap[tid] = self.initial
            self.length[tid] = 0
        else:
            tid = len(self.names)
            self.names.append(term)
            self.off.append(self._alloc(self.initial))
            self.cap.append(self.initial)
            self.length.append(0)
        self.tids[term] = tid
        return tid

    def _grow(self, tid: int) -> None:
        old_cap = self.cap[tid]
        new_cap = old_cap * 2
        old_off = self.off[tid]
        new_off = self._alloc(new_cap)
        used = self.length[tid]
        self.ids[new_off:new_off + used] = self.ids[old_off:old_off + used]
        self.cnt[new_off:new_off + used] = self.cnt[old_off:old_off + used]
        self.free.setdefault(old_cap, []).append(old_off)
        self.off[tid] = new_off
        self.cap[tid] = new_cap

    def bump_one(self, term: str, bundle_id: int) -> None:
        tid = self.tids.get(term)
        if tid is None:
            tid = self._new_term(term)
        offset = self.off[tid]
        used = self.length[tid]
        end = offset + used
        ids = self.ids
        position = bisect_left(ids, bundle_id, offset, end)
        if position < end and ids[position] == bundle_id:
            self.cnt[position] += 1
            return
        if used == self.cap[tid]:
            self._grow(tid)
            offset = self.off[tid]
            end = offset + used
            position = bisect_left(ids, bundle_id, offset, end)
        if position < end:  # shift the tail right by one slot
            ids[position + 1:end + 1] = ids[position:end]
            self.cnt[position + 1:end + 1] = self.cnt[position:end]
        ids[position] = bundle_id
        self.cnt[position] = 1
        self.length[tid] = used + 1
        self.entries += 1

    def drop_one(self, term: str, bundle_id: int) -> None:
        tid = self.tids.get(term)
        if tid is None:
            return
        offset = self.off[tid]
        used = self.length[tid]
        end = offset + used
        ids = self.ids
        position = bisect_left(ids, bundle_id, offset, end)
        if position >= end or ids[position] != bundle_id:
            return
        if position < end - 1:  # close the gap, keeping the sort order
            ids[position:end - 1] = ids[position + 1:end]
            self.cnt[position:end - 1] = self.cnt[position + 1:end]
        self.length[tid] = used - 1
        self.entries -= 1
        if used == 1:  # term emptied: recycle extent and tid
            self.free.setdefault(self.cap[tid], []).append(offset)
            del self.tids[term]
            self.names[tid] = None
            self.free_tids.append(tid)


class SlabPostingsStorage:
    """Slab-allocated postings: interned terms over contiguous arenas.

    See the module docstring for the layout; per-kind initial slice
    capacities come from ``schedule`` (default
    :data:`SLAB_SLICE_SCHEDULE`, the measured workload projection).
    """

    __slots__ = ("_slabs",)

    def __init__(self, schedule: "Mapping[str, int] | None" = None) -> None:
        if schedule is None:
            schedule = SLAB_SLICE_SCHEDULE
        self._slabs: "dict[str, _KindSlab]" = {
            kind: _KindSlab(max(1, int(schedule.get(kind, 1))))
            for kind in INDICANT_KINDS
        }

    def _slab(self, kind: str) -> _KindSlab:
        try:
            return self._slabs[kind]
        except KeyError:
            raise IndexError_(f"unknown indicant kind {kind!r}") from None

    def bump(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        slab = self._slab(kind)
        for term in terms:
            slab.bump_one(term, bundle_id)

    def drop(self, kind: str, terms: "Iterable[str]",
             bundle_id: int) -> None:
        slab = self._slab(kind)
        for term in terms:
            slab.drop_one(term, bundle_id)

    def gather(self, groups: "Sequence[tuple[str, Iterable[str]]]",
               ) -> CandidateGather:
        # Probe once, collecting each hit term's extent; dispatch on the
        # total postings volume.  Small probes (the vast majority — see
        # the anatomy postings-length fingerprints) stay in pure Python;
        # heavy-hitter probes, where the same work would mean thousands
        # of dict operations, take the vectorised path.
        extents: "list[tuple[_KindSlab, int, int, int]]" = []
        total = 0
        for kind, terms in groups:
            slab = self._slab(kind)
            kind_index = _KIND_INDEX[kind]
            tids = slab.tids
            off = slab.off
            length = slab.length
            for term in terms:
                tid = tids.get(term)
                if tid is None:
                    continue
                used = length[tid]
                if used:
                    extents.append((slab, kind_index, off[tid], used))
                    total += used
        if not extents:
            return _empty_gather()
        if _np is None or total <= SMALL_GATHER_CUTOFF:
            return self._gather_small(extents)
        parts = []
        views: "dict[int, Any]" = {}  # one zero-copy view per kind
        for slab, kind_index, offset, used in extents:
            arena = views.get(kind_index)
            if arena is None:
                arena = views[kind_index] = _np.frombuffer(
                    slab.ids, dtype=_np.int64)
            # Pack the kind index into the low two bits so one
            # unique() pass yields per-(bundle, kind) hit counts.
            parts.append(arena[offset:offset + used]
                         * _KIND_COUNT + kind_index)
        encoded = _np.concatenate(parts)
        unique, counts = _np.unique(encoded, return_counts=True)
        decoded_ids = unique >> 2
        kind_column = (unique & (_KIND_COUNT - 1)).astype(_np.intp)
        boundary = _np.empty(len(decoded_ids), dtype=bool)
        boundary[0] = True
        _np.not_equal(decoded_ids[1:], decoded_ids[:-1], out=boundary[1:])
        ids = decoded_ids[boundary]
        rows = _np.cumsum(boundary) - 1
        matrix = _np.zeros((len(ids), _KIND_COUNT), dtype=_np.int64)
        matrix[rows, kind_column] = counts
        totals = matrix.sum(axis=1)
        return CandidateGather(
            ids, totals,
            (matrix[:, 0], matrix[:, 1], matrix[:, 2], matrix[:, 3]))

    @staticmethod
    def _gather_small(extents: "list[tuple[_KindSlab, int, int, int]]",
                      ) -> CandidateGather:
        """Identical-output accumulation for small (or numpy-less) probes."""
        acc: "dict[int, list[int]]" = {}
        for slab, kind_index, offset, used in extents:
            for bundle_id in slab.ids[offset:offset + used].tolist():
                row = acc.get(bundle_id)
                if row is None:
                    row = acc[bundle_id] = [0] * _KIND_COUNT
                row[kind_index] += 1
        return _package_gather(acc)

    def postings(self, kind: str, term: str) -> "Mapping[int, int]":
        slab = self._slab(kind)
        tid = slab.tids.get(term)
        if tid is None:
            return MappingProxyType({})
        offset = slab.off[tid]
        end = offset + slab.length[tid]
        return MappingProxyType(dict(zip(slab.ids[offset:end],
                                         slab.cnt[offset:end])))

    def terms(self, kind: str) -> "Iterator[str]":
        return iter(self._slab(kind).tids)

    def term_count(self, kind: "str | None" = None) -> int:
        if kind is not None:
            return len(self._slab(kind).tids)
        return sum(len(slab.tids) for slab in self._slabs.values())

    def entry_count(self, kind: "str | None" = None) -> int:
        if kind is not None:
            return self._slab(kind).entries
        return sum(slab.entries for slab in self._slabs.values())

    def postings_length(self, kind: str, term: str) -> int:
        slab = self._slab(kind)
        tid = slab.tids.get(term)
        return slab.length[tid] if tid is not None else 0

    def postings_lengths(self, kind: str) -> "list[int]":
        slab = self._slab(kind)
        length = slab.length
        return [length[tid] for tid in slab.tids.values()]

    def approximate_memory_bytes(self) -> int:
        """Deterministic footprint estimate (feeds Fig. 11a).

        The arenas and metadata arrays are measured exactly (their
        buffers dominate and ``sys.getsizeof`` is O(1) per array); the
        interning side uses a per-term byte model calibrated against
        the anatomy accountant's deep-size walk.
        """
        getsizeof = sys.getsizeof
        total = 0
        for slab in self._slabs.values():
            total += (getsizeof(slab.ids) + getsizeof(slab.cnt)
                      + getsizeof(slab.off) + getsizeof(slab.cap)
                      + getsizeof(slab.length))
            total += _SLAB_TERM_BYTES_FOR(slab)
        return total

    def memory_root(self) -> object:
        return self._slabs


def _SLAB_TERM_BYTES_FOR(slab: _KindSlab) -> int:
    total = _SLAB_TERM_BASE_BYTES * len(slab.tids)
    for term in slab.tids:
        total += len(term)
    return total


def open_storage(backend: str) -> "PostingsStorage":
    """Build a postings backend by name (``"slab"`` or ``"dict"``)."""
    if backend == "slab":
        return SlabPostingsStorage()
    if backend == "dict":
        return DictPostingsStorage()
    raise IndexError_(
        f"unknown postings backend {backend!r}; expected 'slab' or 'dict'")
