"""Provenance operators over bundles (the paper's future-work section).

A bundle's connections form a forest: every non-root message points at the
prior message it was aligned with.  This module provides the traversal
operators the paper anticipates ("the provenance operators built on these
provenance bundle and indexing structure could be investigated"):

* source finding — :func:`roots`,
* ancestry — :func:`ancestors`, :func:`path_to_root`,
* influence — :func:`descendants`, :func:`fanout`,
* shape statistics — :func:`depth`, :func:`cascade_stats`,
* presentation — :func:`render_tree` draws the Fig. 2b/Fig. 10 trees as
  indented ASCII.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.errors import BundleError

__all__ = [
    "roots",
    "parent_map",
    "children_map",
    "ancestors",
    "path_to_root",
    "descendants",
    "fanout",
    "depth",
    "CascadeStats",
    "cascade_stats",
    "render_tree",
]


def parent_map(bundle: Bundle) -> dict[int, int]:
    """``{msg_id: parent_msg_id}`` for every non-root member."""
    return {edge.src_id: edge.dst_id for edge in bundle.edges()}


def children_map(bundle: Bundle) -> dict[int, list[int]]:
    """``{msg_id: [child ids...]}`` with children in arrival order."""
    children: dict[int, list[int]] = defaultdict(list)
    for msg_id in bundle.message_ids():
        parent = bundle.parent_of(msg_id)
        if parent is not None:
            children[parent].append(msg_id)
    return dict(children)


def roots(bundle: Bundle) -> list[int]:
    """Ids of source messages (no provenance parent), in arrival order."""
    return [msg_id for msg_id in bundle.message_ids()
            if bundle.parent_of(msg_id) is None]


def ancestors(bundle: Bundle, msg_id: int) -> list[int]:
    """Provenance chain from ``msg_id``'s parent up to its root.

    Raises :class:`BundleError` if ``msg_id`` is not a member or the
    parent chain is cyclic (which would indicate a corrupted bundle).
    """
    if msg_id not in bundle:
        raise BundleError(f"message {msg_id} not in bundle {bundle.bundle_id}")
    chain: list[int] = []
    seen = {msg_id}
    current = bundle.parent_of(msg_id)
    while current is not None:
        if current in seen:
            raise BundleError(
                f"cycle detected in bundle {bundle.bundle_id} at {current}")
        chain.append(current)
        seen.add(current)
        current = bundle.parent_of(current)
    return chain


def path_to_root(bundle: Bundle, msg_id: int) -> list[int]:
    """``[msg_id, parent, ..., root]`` — the full propagation trail."""
    return [msg_id, *ancestors(bundle, msg_id)]


def descendants(bundle: Bundle, msg_id: int) -> list[int]:
    """All messages derived (transitively) from ``msg_id``, BFS order."""
    if msg_id not in bundle:
        raise BundleError(f"message {msg_id} not in bundle {bundle.bundle_id}")
    children = children_map(bundle)
    found: list[int] = []
    frontier = list(children.get(msg_id, ()))
    while frontier:
        current = frontier.pop(0)
        found.append(current)
        frontier.extend(children.get(current, ()))
    return found


def fanout(bundle: Bundle, msg_id: int) -> int:
    """Direct re-share/derivation count of one message."""
    return len(children_map(bundle).get(msg_id, ()))


def depth(bundle: Bundle, msg_id: int) -> int:
    """Distance from ``msg_id`` to its root (0 for roots)."""
    return len(ancestors(bundle, msg_id))


@dataclass(frozen=True, slots=True)
class CascadeStats:
    """Shape summary of one bundle's propagation forest."""

    size: int
    root_count: int
    max_depth: int
    max_fanout: int
    edge_count: int
    time_span: float

    @property
    def is_chain(self) -> bool:
        """True when the forest is a single linear chain."""
        return self.root_count == 1 and self.max_fanout <= 1


def cascade_stats(bundle: Bundle) -> CascadeStats:
    """Compute depth/fan-out statistics for a bundle (Fig. 10 analysis)."""
    children = children_map(bundle)
    max_fanout = max((len(kids) for kids in children.values()), default=0)
    max_depth = 0
    # Iterative depths with memoisation; bundles can be long chains.
    depths: dict[int, int] = {}
    for msg_id in bundle.message_ids():
        trail = []
        current: int | None = msg_id
        while current is not None and current not in depths:
            trail.append(current)
            current = bundle.parent_of(current)
        base = depths[current] if current is not None else -1
        for offset, node in enumerate(reversed(trail), start=1):
            depths[node] = base + offset
        max_depth = max(max_depth, depths[msg_id])
    return CascadeStats(
        size=len(bundle),
        root_count=len(roots(bundle)),
        max_depth=max_depth,
        max_fanout=max_fanout,
        edge_count=len(bundle.edges()),
        time_span=bundle.time_span,
    )


def render_tree(bundle: Bundle, *, max_text: int = 48,
                show_date: bool = True) -> str:
    """Draw the bundle's provenance forest as indented ASCII (Fig. 10).

    Roots are flush left; each child is indented under its parent with a
    ``└─`` connector labelled by the connection type.
    """
    children = children_map(bundle)
    edge_by_src = {edge.src_id: edge for edge in bundle.edges()}
    lines: list[str] = [
        f"bundle {bundle.bundle_id}  "
        f"(size={len(bundle)}, span={bundle.time_span / 3600:.1f}h, "
        f"summary: {', '.join(bundle.summary_words(6))})"
    ]

    def label(msg_id: int) -> str:
        message = bundle.get(msg_id)
        assert message is not None
        text = message.text if len(message.text) <= max_text \
            else message.text[:max_text - 1] + "…"
        stamp = f" [{_format_date(message.date)}]" if show_date else ""
        return f"@{message.user}{stamp}: {text}"

    def walk(msg_id: int, prefix: str, is_last: bool, kind: str) -> None:
        connector = "└─" if is_last else "├─"
        tag = f"({kind}) " if kind else ""
        lines.append(f"{prefix}{connector}{tag}{label(msg_id)}")
        child_prefix = prefix + ("   " if is_last else "│  ")
        kids = children.get(msg_id, [])
        for position, child in enumerate(kids):
            walk(child, child_prefix, position == len(kids) - 1,
                 str(edge_by_src[child].kind))

    for root in roots(bundle):
        lines.append("● " + label(root))
        kids = children.get(root, [])
        for position, child in enumerate(kids):
            walk(child, "  ", position == len(kids) - 1,
                 str(edge_by_src[child].kind))
    return "\n".join(lines)


def _format_date(epoch: float) -> str:
    """Compact UTC day-hour stamp without importing datetime everywhere."""
    import datetime as _dt

    stamp = _dt.datetime.fromtimestamp(epoch, tz=_dt.timezone.utc)
    return stamp.strftime("%m-%d %H:%M")
