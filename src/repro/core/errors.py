"""Exception hierarchy for the provenance indexing library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "MessageError",
    "BundleError",
    "BundleClosedError",
    "BundleNotFoundError",
    "IndexError_",
    "StorageError",
    "CorruptSegmentError",
    "RetryExhaustedError",
    "QueryError",
    "StreamError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An :class:`~repro.core.config.IndexerConfig` value is invalid."""


class MessageError(ReproError):
    """A message tuple is malformed (empty user, negative date, ...)."""


class BundleError(ReproError):
    """A bundle-level invariant was violated."""


class BundleClosedError(BundleError):
    """An insertion was attempted on a bundle marked ``closed``."""


class BundleNotFoundError(BundleError):
    """A bundle id was requested that is neither in memory nor on disk."""


class IndexError_(ReproError):
    """The summary index rejected an operation (name avoids builtin clash)."""


class StorageError(ReproError):
    """The on-disk bundle store failed (I/O, serialization, layout)."""


class CorruptSegmentError(StorageError):
    """A storage segment failed checksum or format validation on read."""


class RetryExhaustedError(StorageError):
    """A transient storage failure persisted past the retry budget."""


class QueryError(ReproError):
    """A retrieval request was malformed or unsatisfiable."""


class StreamError(ReproError):
    """The synthetic stream generator or dataset reader failed."""
