"""Evaluation metrics for provenance discovery (Section VI-B).

The paper treats the *Full Index* run's edge set ``E0`` as ground truth and
scores a partial method's edge set ``E1`` by

* **accuracy**  ``accu = |E1 ∩ E0| / |E1|`` — how many of the found
  connections are correct, and
* **return**    ``ret  = |E1 ∩ E0| / |E0|`` — how much of the ground-truth
  provenance the method covers,

plus the absolute *matched pair* count ``|E1 ∩ E0|`` drawn as bars in
Fig. 8.  Because the synthetic stream carries true cascade labels, this
module also scores against the generator's own parent edges — an
evaluation the paper could not run on real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.message import Message

__all__ = [
    "EdgeComparison",
    "compare_edge_sets",
    "ground_truth_edges",
    "label_purity",
]


@dataclass(frozen=True, slots=True)
class EdgeComparison:
    """Accuracy / return of a candidate edge set against a reference."""

    candidate_size: int
    reference_size: int
    matched: int

    @property
    def accuracy(self) -> float:
        """``|E1 ∩ E0| / |E1|`` — precision of found connections."""
        if self.candidate_size == 0:
            return 1.0 if self.reference_size == 0 else 0.0
        return self.matched / self.candidate_size

    @property
    def coverage(self) -> float:
        """``|E1 ∩ E0| / |E0|`` — the paper's *return* (recall)."""
        if self.reference_size == 0:
            return 1.0
        return self.matched / self.reference_size

    @property
    def f1(self) -> float:
        """Harmonic mean of accuracy and coverage (not in the paper;
        convenient for the pool-size sweep of Fig. 9)."""
        precision, recall = self.accuracy, self.coverage
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)


def compare_edge_sets(candidate: set[tuple[int, int]],
                      reference: set[tuple[int, int]]) -> EdgeComparison:
    """Score ``candidate`` (E1/E2) against ``reference`` (E0)."""
    return EdgeComparison(
        candidate_size=len(candidate),
        reference_size=len(reference),
        matched=len(candidate & reference),
    )


def ground_truth_edges(messages: Iterable[Message]) -> set[tuple[int, int]]:
    """The generator's true derivation edges ``(child, parent)``.

    Only available on synthetic streams where ``parent_id`` is set; real
    datasets yield the empty set.
    """
    return {
        (message.msg_id, message.parent_id)
        for message in messages
        if message.parent_id is not None
    }


def label_purity(bundle_members: Iterable[Message]) -> float:
    """Fraction of a bundle's labelled messages sharing its majority event.

    A clustering-quality check enabled by the synthetic stream's
    ``event_id`` labels; unlabelled (noise) messages are ignored.  Returns
    1.0 for bundles without any labelled member.
    """
    counts: dict[int, int] = {}
    labelled = 0
    for message in bundle_members:
        if message.event_id is None:
            continue
        labelled += 1
        counts[message.event_id] = counts.get(message.event_id, 0) + 1
    if labelled == 0:
        return 1.0
    return max(counts.values()) / labelled
