"""Structural invariant checking for bundles and whole engines.

A debugging/ops tool: verifies every invariant the provenance structures
promise, returning a list of human-readable violations instead of
asserting, so it can run inside a monitoring loop or a test.

Checked invariants:

**Bundle level** (:func:`check_bundle`)
  B1. every edge endpoint is a member,
  B2. edges point strictly backwards in arrival order,
  B3. the parent relation is acyclic (a forest),
  B4. summary counters equal recomputed member aggregates,
  B5. the time window equals the member min/max dates,
  B6. member order is consistent with membership.

**Engine level** (:func:`check_engine`)
  E1. every pooled bundle passes the bundle checks,
  E2. no message id appears in two pooled bundles,
  E3. every summary-index entry points at a pooled bundle with the
      indicant, and every pooled indicant is indexed,
  E4. pooled bundle count respects the configured bound (after a scan).
"""

from __future__ import annotations

from collections import Counter

from repro.core.bundle import Bundle
from repro.core.engine import ProvenanceIndexer
from repro.core.summary_index import INDICANT_KINDS

__all__ = ["check_bundle", "check_engine"]


def check_bundle(bundle: Bundle) -> list[str]:
    """Return all invariant violations of one bundle (empty = healthy)."""
    problems: list[str] = []
    prefix = f"bundle {bundle.bundle_id}"
    member_ids = set(bundle.message_ids())

    # B6: order vs membership.
    if len(bundle.message_ids()) != len(member_ids):
        problems.append(f"{prefix}: duplicate ids in member order")
    if len(member_ids) != len(bundle):
        problems.append(f"{prefix}: member order and map disagree")

    # B1/B2: edge endpoints and direction.  Direction is judged by the
    # bundle's own arrival order, not by message id: multi-producer
    # setups interleave disjoint id spaces, so a (valid) edge to an
    # earlier-arrived member may well point at a numerically larger id.
    position = {msg_id: rank
                for rank, msg_id in enumerate(bundle.message_ids())}
    for edge in bundle.edges():
        if edge.src_id not in member_ids:
            problems.append(
                f"{prefix}: edge source {edge.src_id} not a member")
        if edge.dst_id not in member_ids:
            problems.append(
                f"{prefix}: edge target {edge.dst_id} not a member")
        elif (edge.src_id in member_ids
                and position[edge.dst_id] >= position[edge.src_id]):
            problems.append(
                f"{prefix}: edge {edge.src_id}->{edge.dst_id} does not "
                "point backwards in arrival order")

    # B3: acyclicity via parent walk with memoisation.
    state: dict[int, int] = {}  # 0 visiting, 1 done

    def walk(msg_id: int) -> bool:
        trail = []
        current: int | None = msg_id
        while current is not None:
            mark = state.get(current)
            if mark == 1:
                break
            if mark == 0:
                return False
            state[current] = 0
            trail.append(current)
            current = bundle.parent_of(current)
        for node in trail:
            state[node] = 1
        return True

    for msg_id in member_ids:
        if not walk(msg_id):
            problems.append(f"{prefix}: cycle through message {msg_id}")
            break

    # B4: counters vs recomputation.
    tags: Counter[str] = Counter()
    urls: Counter[str] = Counter()
    keywords: Counter[str] = Counter()
    users: Counter[str] = Counter()
    for message in bundle.messages():
        tags.update(message.hashtags)
        urls.update(message.urls)
        keywords.update(bundle.keywords_of(message.msg_id))
        users[message.user] += 1
    if tags != bundle.hashtag_counts:
        problems.append(f"{prefix}: hashtag counters stale")
    if urls != bundle.url_counts:
        problems.append(f"{prefix}: url counters stale")
    if keywords != bundle.keyword_counts:
        problems.append(f"{prefix}: keyword counters stale")
    if users != bundle.user_counts:
        problems.append(f"{prefix}: user counters stale")

    # B5: time window.
    if member_ids:
        dates = [m.date for m in bundle.messages()]
        if bundle.start_time != min(dates):
            problems.append(f"{prefix}: start_time != min member date")
        if bundle.end_time != max(dates):
            problems.append(f"{prefix}: end_time != max member date")
    return problems


def check_engine(indexer: ProvenanceIndexer) -> list[str]:
    """Return all invariant violations of a live engine (empty = healthy)."""
    problems: list[str] = []

    # E1 + E2.
    owner: dict[int, int] = {}
    for bundle in indexer.pool:
        problems.extend(check_bundle(bundle))
        for msg_id in bundle.message_ids():
            previous = owner.get(msg_id)
            if previous is not None:
                problems.append(
                    f"message {msg_id} in bundles {previous} and "
                    f"{bundle.bundle_id}")
            owner[msg_id] = bundle.bundle_id

    # E3: index <-> pool consistency.
    index = indexer.summary_index
    counters_by_kind = {
        "hashtag": lambda b: b.hashtag_counts,
        "url": lambda b: b.url_counts,
        "keyword": lambda b: b.keyword_counts,
        "user": lambda b: b.user_counts,
    }
    for kind in INDICANT_KINDS:
        getter = counters_by_kind[kind]
        for term in list(index.iter_terms(kind)):
            for bundle_id, count in index.postings(kind, term).items():
                bundle = indexer.pool.try_get(bundle_id)
                if bundle is None:
                    problems.append(
                        f"index[{kind}][{term!r}] points at evicted "
                        f"bundle {bundle_id}")
                elif getter(bundle).get(term, 0) != count:
                    problems.append(
                        f"index[{kind}][{term!r}] count {count} != bundle "
                        f"{bundle_id} counter {getter(bundle).get(term, 0)}")
        for bundle in indexer.pool:
            for term, count in getter(bundle).items():
                indexed = index.postings(kind, term).get(
                    bundle.bundle_id, 0)
                if indexed != count:
                    problems.append(
                        f"bundle {bundle.bundle_id} {kind} {term!r} "
                        f"count {count} not indexed (index has {indexed})")

    # E4: pool bound (a scan may be pending, so allow the trigger slack).
    bound = indexer.config.refine_trigger or indexer.config.max_pool_size
    if bound is not None and len(indexer.pool) > bound + 1:
        problems.append(
            f"pool size {len(indexer.pool)} exceeds bound {bound}")
    return problems
