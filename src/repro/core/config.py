"""Configuration for the provenance indexer.

All tunables the paper mentions are gathered in one frozen dataclass:

* Eq. 1 / Eq. 5 weighting parameters (α, β, γ),
* the bundle-pool limitation and refinement thresholds of Algorithm 3,
* the bundle-size constraint of Section V-B,
* candidate-fetch and keyword-extraction knobs for the summary index.

The three experiment variants of Section VI map onto factory methods:
:meth:`IndexerConfig.full_index`, :meth:`IndexerConfig.partial_index`
and :meth:`IndexerConfig.bundle_limit`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigurationError

__all__ = ["IndexerConfig", "DAY_SECONDS", "HOUR_SECONDS"]

HOUR_SECONDS = 3600.0
DAY_SECONDS = 24 * HOUR_SECONDS


@dataclass(frozen=True, slots=True)
class IndexerConfig:
    """Tunable parameters of the provenance indexing engine.

    Attributes
    ----------
    url_weight, hashtag_weight, time_weight:
        α, β, γ of Eq. 1 and Eq. 5 — the relative importance of URL
        overlap, hashtag overlap and time closeness when scoring a new
        message against candidate bundles and against messages inside the
        chosen bundle.
    keyword_weight:
        Weight of shared plain-text keywords; the paper's Eq. 1 ends with
        "…" indicating further indicants can be folded in — keywords are
        the one its Table II names (``text`` connections).
    rt_weight:
        Weight of an explicit RT match (re-shared user appears in the
        bundle).  RT is the strongest provenance signal (Table II).
    min_match_score:
        A candidate bundle must reach this aggregated Eq. 1 score to absorb
        the new message; otherwise a fresh bundle is created.  The default
        (1.0) is calibrated against the default weights so that freshness
        alone — or a single shared background keyword — can never merge a
        message, while one shared hashtag or URL on a live bundle can.
    alloc_window:
        Algorithm 2 compares the new message against at most this many of
        the bundle's most recent indicant-sharing members.  Keeps
        allocation O(window) instead of O(bundle size); the paper's own
        bundles "no longer get updating after some time", so old members
        are not useful alignment targets.
    max_pool_size:
        Bundle-pool limitation *M* of Algorithm 3.  ``None`` disables the
        pool bound entirely (the *Full Index* baseline).
    refine_trigger:
        Pool occupancy (absolute bundle count) at which a refinement scan
        is invoked; the paper sets "a lower bound for the number of bundles
        to invoke the checking procedure" to avoid frequent scans.
    refine_age:
        *T* of Algorithm 3 — bundles whose last update is older than this
        (seconds) are eligible for elimination.
    refine_tiny_size:
        *R* of Algorithm 3 — an aging bundle strictly smaller than this is
        "aging tiny" and deleted directly.
    refine_target_fraction:
        After a refinement scan the pool is shrunk to
        ``refine_target_fraction * max_pool_size`` bundles; eliminations
        continue from the top of the G(B)-sorted queue until the bound is
        met (Algorithm 3, lines 14-20).
    max_bundle_size:
        Bundle-size constraint of Section V-B.  A bundle reaching this many
        messages is marked *closed*: it accepts no further insertions and is
        flushed to disk at the next pool scan.  ``None`` disables the limit
        (the *Full Index* and plain *Partial Index* variants).
    max_candidates:
        Cap on the number of candidate bundles fully scored per incoming
        message (highest-postings-count candidates are kept).  Keeps Alg. 1
        step 2 bounded under hot hashtags.
    max_keywords:
        How many plain-text keywords are extracted per message as summary-
        index indicants.
    keyword_hit_cap:
        Eq. 1 counts at most this many shared keywords per candidate
        bundle.  Keywords are the weakest Table II connection; capping
        their aggregate contribution below ``min_match_score`` keeps them
        assistive-only and prevents the mega-bundle attractor (a huge
        bundle eventually contains every common keyword, so an uncapped
        count would merge arbitrary messages into it).
    refine_policy:
        Which aging score ranks bundles for stage-two eviction:
        ``"g"`` — the paper's Eq. 6 ``G(B) = age + 1/|B|`` (default);
        ``"age"`` — pure LRU by last update;
        ``"size"`` — smallest-first regardless of age.
        The non-default policies exist for the refinement-policy ablation
        benchmark.
    postings_backend:
        Storage layout behind the summary index (Fig. 5):
        ``"slab"`` — contiguous-array slab postings with interned term
        ids and arena reuse (the default hot path; see
        :mod:`repro.core.postings`); ``"dict"`` — the legacy per-term
        nested-dict layout, kept as the conformance reference.  The two
        are byte-identical in every observable output
        (``tests/test_api_conformance.py`` asserts it), so this knob
        only trades memory layout and speed.
    """

    url_weight: float = 1.0
    hashtag_weight: float = 0.8
    time_weight: float = 0.5
    keyword_weight: float = 0.2
    rt_weight: float = 2.0
    min_match_score: float = 1.0
    alloc_window: int = 64
    max_pool_size: int | None = None
    refine_trigger: int | None = None
    refine_age: float = 2 * DAY_SECONDS
    refine_tiny_size: int = 3
    refine_target_fraction: float = 0.8
    max_bundle_size: int | None = None
    max_candidates: int = 64
    max_keywords: int = 6
    keyword_hit_cap: int = 2
    refine_policy: str = "g"
    postings_backend: str = "slab"

    def __post_init__(self) -> None:
        for name in ("url_weight", "hashtag_weight", "time_weight",
                     "keyword_weight", "rt_weight"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.min_match_score < 0:
            raise ConfigurationError(
                f"min_match_score must be >= 0, got {self.min_match_score}")
        if self.alloc_window <= 0:
            raise ConfigurationError(
                f"alloc_window must be positive, got {self.alloc_window}")
        if self.max_pool_size is not None and self.max_pool_size <= 0:
            raise ConfigurationError(
                f"max_pool_size must be positive, got {self.max_pool_size}")
        if self.refine_trigger is not None and self.refine_trigger <= 0:
            raise ConfigurationError(
                f"refine_trigger must be positive, got {self.refine_trigger}")
        if self.refine_age <= 0:
            raise ConfigurationError(
                f"refine_age must be positive, got {self.refine_age}")
        if self.refine_tiny_size < 0:
            raise ConfigurationError(
                f"refine_tiny_size must be >= 0, got {self.refine_tiny_size}")
        if not 0.0 < self.refine_target_fraction <= 1.0:
            raise ConfigurationError(
                "refine_target_fraction must be in (0, 1], got "
                f"{self.refine_target_fraction}")
        if self.max_bundle_size is not None and self.max_bundle_size <= 0:
            raise ConfigurationError(
                f"max_bundle_size must be positive, got {self.max_bundle_size}")
        if self.max_candidates <= 0:
            raise ConfigurationError(
                f"max_candidates must be positive, got {self.max_candidates}")
        if self.max_keywords < 0:
            raise ConfigurationError(
                f"max_keywords must be >= 0, got {self.max_keywords}")
        if self.keyword_hit_cap < 0:
            raise ConfigurationError(
                f"keyword_hit_cap must be >= 0, got {self.keyword_hit_cap}")
        if self.refine_policy not in ("g", "age", "size"):
            raise ConfigurationError(
                "refine_policy must be one of 'g', 'age', 'size'; got "
                f"{self.refine_policy!r}")
        if self.postings_backend not in ("slab", "dict"):
            raise ConfigurationError(
                "postings_backend must be 'slab' or 'dict'; got "
                f"{self.postings_backend!r}")

    # ------------------------------------------------------------------
    # The three experiment variants of Section VI-A.
    # ------------------------------------------------------------------

    @classmethod
    def full_index(cls, **overrides: object) -> "IndexerConfig":
        """The *Full Index* baseline: no pool bound, no bundle-size limit.

        Its output edge set is the ground truth E0 against which the
        partial variants are evaluated (Section VI-B).
        """
        return cls(max_pool_size=None, max_bundle_size=None, **overrides)  # type: ignore[arg-type]

    @classmethod
    def partial_index(cls, pool_size: int = 10_000,
                      **overrides: object) -> "IndexerConfig":
        """*Partial Index*: pool bounded at ``pool_size``, no size limit."""
        return cls(
            max_pool_size=pool_size,
            refine_trigger=pool_size,
            max_bundle_size=None,
            **overrides,  # type: ignore[arg-type]
        )

    @classmethod
    def bundle_limit(cls, pool_size: int = 10_000, bundle_size: int = 200,
                     **overrides: object) -> "IndexerConfig":
        """*Partial Index + Bundle Limit*: pool bound plus max bundle size."""
        return cls(
            max_pool_size=pool_size,
            refine_trigger=pool_size,
            max_bundle_size=bundle_size,
            **overrides,  # type: ignore[arg-type]
        )

    def with_overrides(self, **overrides: object) -> "IndexerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]
