"""The in-memory bundle pool and its refinement process (Algorithm 3).

Fresh bundles live in the pool so message matching stays memory-speed; a
periodic refinement scan keeps the pool bounded by

1. deleting *aging tiny* bundles outright (older than ``refine_age``,
   smaller than ``refine_tiny_size``),
2. dumping *closed* bundles (bundle-size constraint) to the on-disk store,
3. ranking the survivors by the aging score ``G(B)`` of Eq. 6 and evicting
   from the top until the pool is back under its bound (evicted medium
   bundles are backed up to disk, per Section V-B).

The pool never touches the summary index or the store directly beyond the
objects handed to :meth:`BundlePool.refine`, keeping the layering of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Protocol

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.errors import BundleNotFoundError
from repro.core.scoring import refinement_score
from repro.core.summary_index import SummaryIndex
from repro.obs.audit import RefinementEvent
from repro.obs.registry import (COUNT_BUCKETS, NULL_COUNTER, NULL_HISTOGRAM,
                                MetricsRegistry)

__all__ = ["BundlePool", "RefinementReport", "BundleSink"]

#: Bundle-age-at-eviction buckets (seconds): one minute .. one week,
#: bracketing the default ``refine_age`` of two days.
_EVICTION_AGE_BUCKETS: tuple[float, ...] = (
    60.0, 300.0, 900.0, 3600.0, 4 * 3600.0, 12 * 3600.0,
    86400.0, 2 * 86400.0, 4 * 86400.0, 7 * 86400.0,
)


class BundleSink(Protocol):
    """Anything that can persist an evicted bundle (the on-disk store)."""

    def append(self, bundle: Bundle) -> None:  # pragma: no cover - protocol
        """Persist one bundle."""
        ...


@dataclass(slots=True)
class RefinementReport:
    """Outcome of one refinement scan (drives Figs. 7, 11 and 13)."""

    scanned: int = 0
    deleted_tiny: int = 0
    dumped_closed: int = 0
    evicted_ranked: int = 0
    pool_size_after: int = 0

    @property
    def removed(self) -> int:
        """Total bundles taken out of the pool by this scan."""
        return self.deleted_tiny + self.dumped_closed + self.evicted_ranked


@dataclass
class _NullSink:
    """Discards evicted bundles (used when no store is attached)."""

    dumped: int = 0

    def append(self, bundle: Bundle) -> None:
        self.dumped += 1


class BundlePool:
    """Bounded in-memory collection of fresh bundles.

    Parameters
    ----------
    config:
        Supplies the pool bound and the refinement thresholds.
    on_evict:
        Optional callback fired with every bundle leaving the pool for any
        reason (tiny-deletion included); the engine uses it to keep the
        ground-truth edge ledger for Section VI-B evaluation.
    """

    def __init__(self, config: IndexerConfig | None = None, *,
                 on_evict: Callable[[Bundle], None] | None = None) -> None:
        self.config = config or IndexerConfig()
        self.on_evict = on_evict
        self._bundles: dict[int, Bundle] = {}
        self._next_bundle_id = 0
        self.refinement_count = 0
        # No-op until bind_registry(); the pool owns the eviction
        # counters so supervisor-driven sheds are not double-counted.
        self._evictions = dict.fromkeys(
            ("tiny", "closed", "ranked", "shed"), NULL_COUNTER)
        self._shed_bytes = NULL_COUNTER
        self._evicted_size_hist = NULL_HISTOGRAM
        self._evicted_age_hist = NULL_HISTOGRAM

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Export the pool's gauges and eviction counters.

        Size gauges are callback-backed (computed on read from the
        authoritative dict), so ``repro top``, ``repro health`` and the
        benchmarks all see one number.
        """
        registry.gauge("repro_pool_bundles",
                       help="Bundles currently pooled in memory",
                       callback=lambda: len(self._bundles))
        registry.gauge("repro_pool_messages",
                       help="Messages held across pooled bundles",
                       callback=self.message_count)
        help_text = "Bundles removed from the pool, by cause"
        self._evictions = {
            reason: registry.counter("repro_pool_evictions_total",
                                     help=help_text,
                                     labels={"reason": reason})
            for reason in ("tiny", "closed", "ranked", "shed")
        }
        self._shed_bytes = registry.counter(
            "repro_pool_shed_bytes_total", unit="bytes",
            help="Memory released by forced shedding")
        # Eviction *shape*: how big and how old bundles are when they
        # leave the pool — the slab arena-reuse policy of ROADMAP
        # item 1 is sized from these (see docs/observability.md).
        self._evicted_size_hist = registry.histogram(
            "repro_evicted_bundle_size",
            help="Messages per bundle at pool eviction (any cause)",
            buckets=COUNT_BUCKETS)
        self._evicted_age_hist = registry.histogram(
            "repro_evicted_bundle_age_seconds", unit="seconds",
            help="Stream age since last update at pool eviction",
            buckets=_EVICTION_AGE_BUCKETS)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._bundles)

    def __contains__(self, bundle_id: int) -> bool:
        return bundle_id in self._bundles

    def __iter__(self) -> Iterator[Bundle]:
        return iter(self._bundles.values())

    def get(self, bundle_id: int) -> Bundle:
        """Fetch a pooled bundle or raise :class:`BundleNotFoundError`."""
        try:
            return self._bundles[bundle_id]
        except KeyError:
            raise BundleNotFoundError(
                f"bundle {bundle_id} is not in the pool") from None

    def try_get(self, bundle_id: int) -> Bundle | None:
        """Fetch a pooled bundle or ``None``."""
        return self._bundles.get(bundle_id)

    def live(self) -> "dict[int, Bundle]":
        """The live ``{bundle_id: Bundle}`` map — read-only by contract.

        Exposed for the engine's candidate-selection hot loop, which
        probes dozens of ids per message; going through the authoritative
        dict directly skips a method call per probe.  Callers must not
        mutate it.
        """
        return self._bundles

    def create_bundle(self) -> Bundle:
        """Allocate a fresh, empty bundle with the next id."""
        bundle = Bundle(self._next_bundle_id, self.config)
        self._bundles[bundle.bundle_id] = bundle
        self._next_bundle_id += 1
        return bundle

    # ------------------------------------------------------------------
    # Accounting (Fig. 11)
    # ------------------------------------------------------------------

    def message_count(self) -> int:
        """Total messages held in memory across pooled bundles."""
        return sum(len(bundle) for bundle in self._bundles.values())

    def approximate_memory_bytes(self) -> int:
        """Deterministic pooled-bundle memory estimate."""
        return sum(bundle.approximate_memory_bytes()
                   for bundle in self._bundles.values())

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------

    def needs_refinement(self) -> bool:
        """Whether the trigger bound is exceeded (Section V-B's guard)."""
        trigger = self.config.refine_trigger or self.config.max_pool_size
        if trigger is None:
            return False
        return len(self._bundles) > trigger

    def refine(self, current_date: float,
               summary_index: SummaryIndex | None = None,
               sink: BundleSink | None = None, *,
               collect: "list[RefinementEvent] | None" = None,
               ) -> RefinementReport:
        """Run one refinement scan; return what was removed.

        Mirrors Algorithm 3: stage one walks the pool deleting aging tiny
        bundles and dumping aging/closed ones; stage two sorts the rest by
        ``G(B)`` descending and evicts from the top until the pool size
        reaches ``refine_target_fraction * max_pool_size``.

        ``collect``, when given, receives one
        :class:`~repro.obs.audit.RefinementEvent` (with the ``G(B)``
        eviction priority) per removed bundle — the audit layer's view
        of Algorithm 3.
        """
        config = self.config
        report = RefinementReport(scanned=len(self._bundles))
        effective_sink: BundleSink = sink if sink is not None else _NullSink()
        waiting: list[tuple[float, int]] = []

        for bundle in list(self._bundles.values()):
            age = current_date - bundle.last_update
            if age > config.refine_age and len(bundle) < config.refine_tiny_size:
                self._collect(collect, "tiny", bundle, current_date)
                self._observe_eviction(bundle, current_date)
                self._remove(bundle, summary_index)
                report.deleted_tiny += 1
                self._evictions["tiny"].inc()
            elif bundle.closed:
                # Closed bundles are flushed at the next scan (Section V-B).
                self._collect(collect, "closed", bundle, current_date)
                self._observe_eviction(bundle, current_date)
                effective_sink.append(bundle)
                self._remove(bundle, summary_index)
                report.dumped_closed += 1
                self._evictions["closed"].inc()
            else:
                score = self._policy_score(bundle, current_date)
                waiting.append((score, bundle.bundle_id))

        target = self._target_size()
        if target is not None and len(self._bundles) > target:
            waiting.sort(key=lambda pair: (-pair[0], pair[1]))
            for score, bundle_id in waiting:
                if len(self._bundles) <= target:
                    break
                bundle = self._bundles.get(bundle_id)
                if bundle is None:
                    continue
                if collect is not None:
                    collect.append(RefinementEvent(
                        reason="ranked", bundle_id=bundle.bundle_id,
                        g_score=score, size=len(bundle)))
                self._observe_eviction(bundle, current_date)
                effective_sink.append(bundle)
                self._remove(bundle, summary_index)
                report.evicted_ranked += 1
                self._evictions["ranked"].inc()

        report.pool_size_after = len(self._bundles)
        self.refinement_count += 1
        return report

    def _collect(self, collect: "list[RefinementEvent] | None",
                 reason: str, bundle: Bundle, current_date: float) -> None:
        if collect is not None:
            collect.append(RefinementEvent(
                reason=reason, bundle_id=bundle.bundle_id,
                g_score=self._policy_score(bundle, current_date),
                size=len(bundle)))

    def shed(self, current_date: float, *, target_bytes: int,
             summary_index: SummaryIndex | None = None,
             sink: BundleSink | None = None,
             collect: "list[RefinementEvent] | None" = None,
             ) -> tuple[int, int]:
        """Force-close and spill bundles until memory fits ``target_bytes``.

        The degraded-mode companion to :meth:`refine`: where refinement
        bounds the pool by *count* on its normal trigger, shedding bounds
        it by *bytes* under memory pressure, evicting in the same Eq. 6
        ``G(B)`` priority order (highest eviction score first).  Every
        shed bundle is closed and handed to ``sink`` so no discovered
        provenance is lost — only memory residency.

        Returns ``(bundles_shed, bytes_shed)``.
        """
        effective_sink: BundleSink = sink if sink is not None else _NullSink()
        total = self.approximate_memory_bytes()
        if total <= target_bytes:
            return (0, 0)
        ranked = sorted(
            self._bundles.values(),
            key=lambda b: (-self._policy_score(b, current_date), b.bundle_id))
        shed = bytes_shed = 0
        for bundle in ranked:
            if total <= target_bytes:
                break
            size = bundle.approximate_memory_bytes()
            if not bundle.closed:
                bundle.close()
            self._collect(collect, "shed", bundle, current_date)
            self._observe_eviction(bundle, current_date)
            effective_sink.append(bundle)
            self._remove(bundle, summary_index)
            total -= size
            bytes_shed += size
            shed += 1
            self._evictions["shed"].inc()
        self._shed_bytes.inc(bytes_shed)
        return (shed, bytes_shed)

    def _policy_score(self, bundle: Bundle, current_date: float) -> float:
        """Eviction priority under the configured refinement policy.

        Higher means evicted earlier.  ``"g"`` is the paper's Eq. 6;
        ``"age"`` and ``"size"`` are the ablation baselines.
        """
        policy = self.config.refine_policy
        if policy == "g":
            return refinement_score(
                bundle.last_update, max(len(bundle), 1), current_date)
        if policy == "age":
            return current_date - bundle.last_update
        return 1.0 / max(len(bundle), 1)  # "size": smallest first

    def _target_size(self) -> int | None:
        if self.config.max_pool_size is None:
            return None
        return int(self.config.max_pool_size
                   * self.config.refine_target_fraction)

    def _observe_eviction(self, bundle: Bundle,
                          current_date: float) -> None:
        """Record the size/age shape of one bundle leaving the pool."""
        self._evicted_size_hist.observe(len(bundle))
        self._evicted_age_hist.observe(
            max(current_date - bundle.last_update, 0.0))

    def _remove(self, bundle: Bundle,
                summary_index: SummaryIndex | None) -> None:
        if summary_index is not None:
            summary_index.remove_bundle(bundle)
        del self._bundles[bundle.bundle_id]
        if self.on_evict is not None:
            self.on_evict(bundle)
