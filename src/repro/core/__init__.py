"""Core provenance model and indexing engine (the paper's contribution).

Public surface:

* :class:`~repro.core.message.Message` — the Definition 1 tuple,
* :class:`~repro.core.bundle.Bundle` — Definition 3 message groups,
* :class:`~repro.core.summary_index.SummaryIndex` — Fig. 5,
* :class:`~repro.core.pool.BundlePool` — Algorithm 3 refinement,
* :class:`~repro.core.engine.ProvenanceIndexer` — Algorithm 1 ingestion,
* :mod:`~repro.core.graph` — provenance operators,
* :mod:`~repro.core.metrics` — Section VI-B evaluation.
"""

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.concurrent import ConcurrentIndexer
from repro.core.connection import Connection, ConnectionType
from repro.core.engine import (EngineStats, IngestResult, MemorySnapshot,
                               ProvenanceIndexer, StageSnapshot, StageTimers)
from repro.core.errors import (BundleClosedError, BundleError,
                               BundleNotFoundError, ConfigurationError,
                               MessageError, QueryError, ReproError,
                               StorageError, StreamError)
from repro.core.clustering_metrics import (ClusteringScores, bcubed_scores,
                                           event_fragmentation,
                                           pairwise_scores)
from repro.core.credibility import CredibilityTracker, UserRecord
from repro.core.dedup import DuplicateDetector, MinHasher, jaccard, shingles
from repro.core.message import Message, parse_message
from repro.core.operators import (BundleDiff, bundle_difference,
                                  extract_cascade, filter_bundle,
                                  merge_bundles, slice_bundle,
                                  split_bundle_at)
from repro.core.metrics import (EdgeComparison, compare_edge_sets,
                                ground_truth_edges, label_purity)
from repro.core.pipeline import (DedupStage, IngestPipeline,
                                 PipelineStats, QualityStage,
                                 SamplingStage)
from repro.core.pool import BundlePool, RefinementReport
from repro.core.sharding import ShardedIndexer, ShardStats, primary_indicant
from repro.core.summary_index import SummaryIndex
from repro.core.validation import check_bundle, check_engine

__all__ = [
    "Bundle",
    "IndexerConfig",
    "ConcurrentIndexer",
    "Connection",
    "ConnectionType",
    "EngineStats",
    "IngestResult",
    "MemorySnapshot",
    "ProvenanceIndexer",
    "StageSnapshot",
    "StageTimers",
    "BundleClosedError",
    "BundleError",
    "BundleNotFoundError",
    "ConfigurationError",
    "MessageError",
    "QueryError",
    "ReproError",
    "StorageError",
    "StreamError",
    "Message",
    "parse_message",
    "ClusteringScores",
    "bcubed_scores",
    "event_fragmentation",
    "pairwise_scores",
    "CredibilityTracker",
    "UserRecord",
    "DuplicateDetector",
    "MinHasher",
    "jaccard",
    "shingles",
    "BundleDiff",
    "bundle_difference",
    "extract_cascade",
    "filter_bundle",
    "merge_bundles",
    "slice_bundle",
    "split_bundle_at",
    "EdgeComparison",
    "compare_edge_sets",
    "ground_truth_edges",
    "label_purity",
    "DedupStage",
    "IngestPipeline",
    "PipelineStats",
    "QualityStage",
    "SamplingStage",
    "BundlePool",
    "RefinementReport",
    "ShardedIndexer",
    "ShardStats",
    "primary_indicant",
    "SummaryIndex",
    "check_bundle",
    "check_engine",
]
