"""Sharded provenance indexing: scale-out over multiple engines.

The paper motivates its design with Twitter's "230 million tweets a day";
one in-process engine cannot hold that, so this module provides the
standard scale-out shape on top of unmodified
:class:`~repro.core.engine.ProvenanceIndexer` instances:

* **routing** — each message goes to exactly one shard.  Two routers are
  provided, trading isolation against co-location:

  - ``"hash"`` — stateless BLAKE2 over the message's *primary indicant*
    (first hashtag, else URL, else re-shared user, else author).  Zero
    coordination, good balance; but an event whose messages carry
    *varying* indicant subsets gets split across shards, losing the
    connections that cross the cut (measured in
    ``benchmarks/bench_sharding.py``).
  - ``"cooccurrence"`` — a streaming union-find over indicants: every
    message unions its own indicants into one component, and routes by
    the component root's hash.  Topics therefore co-locate even when
    individual messages carry different indicant subsets — at the price
    of coarser components (recurring broad hashtags glue same-theme
    events together) and hence more load skew.

* **scatter-gather retrieval** — queries fan out to all shards and merge
  ranked results.

Both routers are deterministic, so re-ingesting a stream reproduces the
same placement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.core.config import IndexerConfig
from repro.core.engine import (EngineStats, IngestResult, MemorySnapshot,
                               ProvenanceIndexer)
from repro.core.errors import ConfigurationError
from repro.core.message import Message
from repro.query.bundle_search import BundleHit, BundleSearchEngine

__all__ = ["ShardedIndexer", "ShardStats", "ShardRouter", "HashRouter",
           "CooccurrenceRouter", "RouteDecision", "make_router",
           "primary_indicant", "ROUTERS"]

#: The deterministic router names accepted everywhere (``ShardedIndexer``,
#: ``repro.runtime``, the CLI).
ROUTERS = ("hash", "cooccurrence")


def primary_indicant(message: Message) -> str:
    """The routing key: the message's strongest topical indicant.

    Priority mirrors Table II: hashtag > URL > re-shared user > author.
    Ties inside a set are broken lexicographically so routing is stable.
    """
    if message.hashtags:
        return "t:" + min(message.hashtags)
    if message.urls:
        return "u:" + min(message.urls)
    if message.rt_users:
        return "a:" + message.rt_users[0]
    return "a:" + message.user


def _shard_of(key: str, shard_count: int) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % shard_count


def _indicant_keys(message: Message) -> list[str]:
    """All topical indicants of a message, namespaced.

    Hashtags and URLs define components; the re-shared user (and then
    the author) is only a *fallback* for messages carrying neither.
    Always-unioning the RT root looks attractive — provenance edges
    follow cascades — but measures catastrophically: high-degree
    retweeted users transitively glue unrelated events into one
    mega-component (measured on the parallel bench stream: balance
    collapses to 2.3x skew and edge coverage *drops* to 0.71 versus
    0.92 with tag/URL components).  Cross-cascade evidence is instead
    surfaced as boundary hints (:class:`CooccurrenceRouter` tracks the
    last shard each user was routed to) and handled by asynchronous
    edge repair rather than by routing.
    """
    keys = ["t:" + tag for tag in sorted(message.hashtags)]
    keys.extend("u:" + url for url in sorted(message.urls))
    if not keys and message.rt_users:
        keys.append("a:" + message.rt_users[0])
    if not keys:
        keys.append("a:" + message.user)
    return keys


@dataclass(frozen=True, slots=True)
class RouteDecision:
    """One routing verdict, with its cross-shard boundary evidence.

    ``peers`` lists the *other* shards that already hold messages of
    this message's (merged) indicant component — non-empty exactly when
    the message straddles a shard cut and its best provenance parent may
    live elsewhere.  The multiprocess runtime journals such messages to
    the owning shard's boundary log and repairs their edges
    asynchronously (:mod:`repro.runtime.repair`).
    """

    shard: int
    boundary: bool
    peers: tuple[int, ...]


class _UnionFind:
    """Union-find with path compression over string keys."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, first: str, second: str) -> str:
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        # Deterministic direction: smaller string becomes the root.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        return root_a


class ShardRouter:
    """Deterministic message → shard placement (base class).

    Routers are deliberately engine-free so the in-process
    :class:`ShardedIndexer` and the multiprocess coordinator in
    :mod:`repro.runtime` share the exact same placement: re-ingesting a
    stream — in either runtime — reproduces it bit-for-bit.
    """

    __slots__ = ("shard_count",)

    name = "abstract"

    def __init__(self, shard_count: int) -> None:
        if shard_count <= 0:
            raise ConfigurationError(
                f"shard_count must be positive, got {shard_count}")
        self.shard_count = shard_count

    def route(self, message: Message) -> int:
        """The shard index ``message`` belongs to (may mutate state)."""
        raise NotImplementedError

    def route_with_hint(self, message: Message) -> RouteDecision:
        """Route plus boundary evidence; the default never straddles."""
        return RouteDecision(self.route(message), False, ())


class HashRouter(ShardRouter):
    """Stateless BLAKE2 over the primary indicant: balanced, isolated."""

    __slots__ = ()

    name = "hash"

    def route(self, message: Message) -> int:
        return _shard_of(primary_indicant(message), self.shard_count)


class CooccurrenceRouter(ShardRouter):
    """Cascade-affine streaming union-find co-location over indicants.

    Placement is **sticky**: the first message of a component pins the
    component to ``hash(root) % shards``, and every later message of the
    component — however its indicant set grows or merges — follows that
    pin.  When two components that were pinned to *different* shards
    merge (a message carries indicants of both), the merged component
    keeps one pin deterministically and remembers every shard its
    history touched: messages of such a split component are flagged as
    **boundary** messages (:meth:`route_with_hint`) because their best
    provenance parent may live on a peer shard.  A second, cheaper hint
    follows retweet cascades across components: the router remembers the
    last shard each *user*'s message went to, so a retweet whose
    re-shared user last posted on a different shard is also flagged.
    The multiprocess runtime journals exactly those messages for
    asynchronous cross-shard edge repair (:mod:`repro.runtime.repair`).

    NOTE: :meth:`route` / :meth:`route_with_hint` *mutate* the component
    structure (they union the message's indicants), so call exactly one
    of them, once, per message.
    """

    __slots__ = ("_components", "_assigned", "_touched", "_last_shard")

    name = "cooccurrence"

    def __init__(self, shard_count: int) -> None:
        super().__init__(shard_count)
        self._components = _UnionFind()
        #: component root -> pinned shard (first-assignment sticky).
        self._assigned: dict[str, int] = {}
        #: component root -> every shard its history was routed to
        #: (pre-merge pins included; superset of {pin} once split).
        self._touched: dict[str, set[int]] = {}
        #: user -> shard of that user's most recent message.
        self._last_shard: dict[str, int] = {}

    def route(self, message: Message) -> int:
        return self.route_with_hint(message).shard

    def route_with_hint(self, message: Message) -> RouteDecision:
        keys = _indicant_keys(message)
        pre_roots = {self._components.find(key) for key in keys}
        root = keys[0]
        for key in keys[1:]:
            root = self._components.union(root, key)
        root = self._components.find(root)
        if len(pre_roots) > 1 or root not in self._assigned:
            self._merge_components(root, pre_roots)
        shard = self._assigned[root]
        touched = self._touched[root]
        peers = set(touched)
        if message.rt_users:
            rt_shard = self._last_shard.get(message.rt_users[0])
            if rt_shard is not None:
                peers.add(rt_shard)
        peers.discard(shard)
        touched.add(shard)
        self._last_shard[message.user] = shard
        return RouteDecision(shard, bool(peers), tuple(sorted(peers)))

    def _merge_components(self, root: str, pre_roots: "set[str]") -> None:
        """Consolidate pins + touched-shard memory of merged components.

        Deterministic pin choice: the pin of the lexicographically
        smallest previously-pinned root survives (mirroring the
        union-find's smallest-string-becomes-root rule); a component
        never seen before is pinned by its root's hash.
        """
        pinned = sorted((old, self._assigned[old]) for old in pre_roots
                        if old in self._assigned)
        shard = pinned[0][1] if pinned else _shard_of(root,
                                                     self.shard_count)
        touched: set[int] = set()
        for old in pre_roots:
            touched |= self._touched.pop(old, set())
            if old != root:
                self._assigned.pop(old, None)
        self._assigned[root] = shard
        self._touched[root] = touched


def make_router(router: str, shard_count: int) -> ShardRouter:
    """Build a named router (``"hash"`` or ``"cooccurrence"``)."""
    if router == "hash":
        return HashRouter(shard_count)
    if router == "cooccurrence":
        return CooccurrenceRouter(shard_count)
    raise ConfigurationError(
        f"router must be 'hash' or 'cooccurrence', got {router!r}")


@dataclass(frozen=True, slots=True)
class ShardStats:
    """Aggregate statistics across shards."""

    shard_count: int
    messages_per_shard: tuple[int, ...]
    bundles_per_shard: tuple[int, ...]

    @property
    def total_messages(self) -> int:
        """Messages ingested across all shards."""
        return sum(self.messages_per_shard)

    @property
    def imbalance(self) -> float:
        """max/mean load ratio (1.0 = perfectly balanced)."""
        if not self.messages_per_shard or self.total_messages == 0:
            return 1.0
        mean = self.total_messages / self.shard_count
        return max(self.messages_per_shard) / mean


class ShardedIndexer:
    """N provenance engines behind one ingest/search facade.

    Parameters
    ----------
    shard_count:
        Number of engines; each gets its own copy of ``config``.
    config:
        Per-shard configuration.  Note the pool bound applies *per
        shard*, so total memory scales with ``shard_count``.
    router:
        ``"hash"`` (stateless, balanced) or ``"cooccurrence"``
        (union-find co-location; see module docstring).
    """

    def __init__(self, shard_count: int,
                 config: IndexerConfig | None = None, *,
                 router: str = "hash") -> None:
        self._router = make_router(router, shard_count)
        self.shard_count = shard_count
        self.router = router
        self.shards = [ProvenanceIndexer(config or IndexerConfig())
                       for _ in range(shard_count)]
        self._searchers = [BundleSearchEngine(shard)
                           for shard in self.shards]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def route(self, message: Message) -> int:
        """The shard index ``message`` will be ingested into.

        NOTE: under the co-occurrence router this call *mutates* the
        component structure (it unions the message's indicants), so call
        it once per message — :meth:`ingest` does.
        """
        return self._router.route(message)

    def ingest(self, message: Message) -> IngestResult:
        """Route and ingest one message (:class:`repro.api.Indexer`)."""
        return self.shards[self.route(message)].ingest(message)

    def ingest_routed(self, message: Message) -> tuple[int, IngestResult]:
        """Route and ingest one message; returns (shard, result)."""
        shard = self.route(message)
        return shard, self.shards[shard].ingest(message)

    def ingest_batch(self, messages: Iterable[Message], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Route and ingest a date-ordered batch."""
        if count_only:
            count = 0
            for message in messages:
                self.ingest(message)
                count += 1
            return count
        return [self.ingest(message) for message in messages]

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def search(self, raw_query: str, k: int = 10) -> list[BundleHit]:
        """Scatter-gather Eq. 7 search, merged into one ranked list.

        Scores from different shards are comparable because every shard
        runs the same scoring function over the same global clock.
        (Bundle ids are per-shard counters — use :meth:`search_by_shard`
        when you need to know which shard owns a hit.)
        """
        return [hit for _, hit in self.search_by_shard(raw_query, k=k)]

    def search_by_shard(self, raw_query: str, k: int = 10,
                        ) -> list[tuple[int, BundleHit]]:
        """Scatter-gather Eq. 7 search; hits tagged with their shard."""
        merged: list[tuple[int, BundleHit]] = []
        for shard_index, searcher in enumerate(self._searchers):
            for hit in searcher.search(raw_query, k=k):
                merged.append((shard_index, hit))
        merged.sort(key=lambda pair: (-pair[1].score, pair[0],
                                      pair[1].bundle_id))
        return merged[:k]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> "dict[str, int]":
        """Unified counters summed across shards (``repro.api``)."""
        totals = dict.fromkeys(EngineStats.FIELDS, 0)
        for shard in self.shards:
            for name in EngineStats.FIELDS:
                totals[name] += getattr(shard.stats, name)
        totals["shard_count"] = self.shard_count
        return totals

    def shard_stats(self) -> ShardStats:
        """Load distribution across shards."""
        return ShardStats(
            shard_count=self.shard_count,
            messages_per_shard=tuple(
                shard.stats.messages_ingested for shard in self.shards),
            bundles_per_shard=tuple(
                len(shard.pool) for shard in self.shards),
        )

    def snapshot(self) -> MemorySnapshot:
        """Memory accounting summed across shards."""
        snaps = [shard.snapshot() for shard in self.shards]
        return MemorySnapshot(
            pool_bytes=sum(s.pool_bytes for s in snaps),
            index_bytes=sum(s.index_bytes for s in snaps),
            message_count=sum(s.message_count for s in snaps),
            bundle_count=sum(s.bundle_count for s in snaps),
        )

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Union of all shards' discovered connections."""
        pairs: set[tuple[int, int]] = set()
        for shard in self.shards:
            pairs |= shard.edge_pairs()
        return pairs

    def close(self) -> None:
        """Close every shard engine; idempotent."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedIndexer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
