"""Sharded provenance indexing: scale-out over multiple engines.

The paper motivates its design with Twitter's "230 million tweets a day";
one in-process engine cannot hold that, so this module provides the
standard scale-out shape on top of unmodified
:class:`~repro.core.engine.ProvenanceIndexer` instances:

* **routing** — each message goes to exactly one shard.  Two routers are
  provided, trading isolation against co-location:

  - ``"hash"`` — stateless BLAKE2 over the message's *primary indicant*
    (first hashtag, else URL, else re-shared user, else author).  Zero
    coordination, good balance; but an event whose messages carry
    *varying* indicant subsets gets split across shards, losing the
    connections that cross the cut (measured in
    ``benchmarks/bench_sharding.py``).
  - ``"cooccurrence"`` — a streaming union-find over indicants: every
    message unions its own indicants into one component, and routes by
    the component root's hash.  Topics therefore co-locate even when
    individual messages carry different indicant subsets — at the price
    of coarser components (recurring broad hashtags glue same-theme
    events together) and hence more load skew.

* **scatter-gather retrieval** — queries fan out to all shards and merge
  ranked results.

Both routers are deterministic, so re-ingesting a stream reproduces the
same placement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.core.config import IndexerConfig
from repro.core.engine import (EngineStats, IngestResult, MemorySnapshot,
                               ProvenanceIndexer)
from repro.core.errors import ConfigurationError
from repro.core.message import Message
from repro.query.bundle_search import BundleHit, BundleSearchEngine

__all__ = ["ShardedIndexer", "ShardStats", "ShardRouter", "HashRouter",
           "CooccurrenceRouter", "make_router", "primary_indicant",
           "ROUTERS"]

#: The deterministic router names accepted everywhere (``ShardedIndexer``,
#: ``repro.runtime``, the CLI).
ROUTERS = ("hash", "cooccurrence")


def primary_indicant(message: Message) -> str:
    """The routing key: the message's strongest topical indicant.

    Priority mirrors Table II: hashtag > URL > re-shared user > author.
    Ties inside a set are broken lexicographically so routing is stable.
    """
    if message.hashtags:
        return "t:" + min(message.hashtags)
    if message.urls:
        return "u:" + min(message.urls)
    if message.rt_users:
        return "a:" + message.rt_users[0]
    return "a:" + message.user


def _shard_of(key: str, shard_count: int) -> int:
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big") % shard_count


def _indicant_keys(message: Message) -> list[str]:
    """All topical indicants of a message, namespaced."""
    keys = ["t:" + tag for tag in sorted(message.hashtags)]
    keys.extend("u:" + url for url in sorted(message.urls))
    if not keys and message.rt_users:
        keys.append("a:" + message.rt_users[0])
    if not keys:
        keys.append("a:" + message.user)
    return keys


class _UnionFind:
    """Union-find with path compression over string keys."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, first: str, second: str) -> str:
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        # Deterministic direction: smaller string becomes the root.
        if root_b < root_a:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        return root_a


class ShardRouter:
    """Deterministic message → shard placement (base class).

    Routers are deliberately engine-free so the in-process
    :class:`ShardedIndexer` and the multiprocess coordinator in
    :mod:`repro.runtime` share the exact same placement: re-ingesting a
    stream — in either runtime — reproduces it bit-for-bit.
    """

    __slots__ = ("shard_count",)

    name = "abstract"

    def __init__(self, shard_count: int) -> None:
        if shard_count <= 0:
            raise ConfigurationError(
                f"shard_count must be positive, got {shard_count}")
        self.shard_count = shard_count

    def route(self, message: Message) -> int:
        """The shard index ``message`` belongs to (may mutate state)."""
        raise NotImplementedError


class HashRouter(ShardRouter):
    """Stateless BLAKE2 over the primary indicant: balanced, isolated."""

    __slots__ = ()

    name = "hash"

    def route(self, message: Message) -> int:
        return _shard_of(primary_indicant(message), self.shard_count)


class CooccurrenceRouter(ShardRouter):
    """Streaming union-find co-location over all indicants.

    NOTE: :meth:`route` *mutates* the component structure (it unions the
    message's indicants), so call it exactly once per message.
    """

    __slots__ = ("_components",)

    name = "cooccurrence"

    def __init__(self, shard_count: int) -> None:
        super().__init__(shard_count)
        self._components = _UnionFind()

    def route(self, message: Message) -> int:
        keys = _indicant_keys(message)
        root = keys[0]
        for key in keys[1:]:
            root = self._components.union(root, key)
        root = self._components.find(root)
        return _shard_of(root, self.shard_count)


def make_router(router: str, shard_count: int) -> ShardRouter:
    """Build a named router (``"hash"`` or ``"cooccurrence"``)."""
    if router == "hash":
        return HashRouter(shard_count)
    if router == "cooccurrence":
        return CooccurrenceRouter(shard_count)
    raise ConfigurationError(
        f"router must be 'hash' or 'cooccurrence', got {router!r}")


@dataclass(frozen=True, slots=True)
class ShardStats:
    """Aggregate statistics across shards."""

    shard_count: int
    messages_per_shard: tuple[int, ...]
    bundles_per_shard: tuple[int, ...]

    @property
    def total_messages(self) -> int:
        """Messages ingested across all shards."""
        return sum(self.messages_per_shard)

    @property
    def imbalance(self) -> float:
        """max/mean load ratio (1.0 = perfectly balanced)."""
        if not self.messages_per_shard or self.total_messages == 0:
            return 1.0
        mean = self.total_messages / self.shard_count
        return max(self.messages_per_shard) / mean


class ShardedIndexer:
    """N provenance engines behind one ingest/search facade.

    Parameters
    ----------
    shard_count:
        Number of engines; each gets its own copy of ``config``.
    config:
        Per-shard configuration.  Note the pool bound applies *per
        shard*, so total memory scales with ``shard_count``.
    router:
        ``"hash"`` (stateless, balanced) or ``"cooccurrence"``
        (union-find co-location; see module docstring).
    """

    def __init__(self, shard_count: int,
                 config: IndexerConfig | None = None, *,
                 router: str = "hash") -> None:
        self._router = make_router(router, shard_count)
        self.shard_count = shard_count
        self.router = router
        self.shards = [ProvenanceIndexer(config or IndexerConfig())
                       for _ in range(shard_count)]
        self._searchers = [BundleSearchEngine(shard)
                           for shard in self.shards]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def route(self, message: Message) -> int:
        """The shard index ``message`` will be ingested into.

        NOTE: under the co-occurrence router this call *mutates* the
        component structure (it unions the message's indicants), so call
        it once per message — :meth:`ingest` does.
        """
        return self._router.route(message)

    def ingest(self, message: Message) -> IngestResult:
        """Route and ingest one message (:class:`repro.api.Indexer`)."""
        return self.shards[self.route(message)].ingest(message)

    def ingest_routed(self, message: Message) -> tuple[int, IngestResult]:
        """Route and ingest one message; returns (shard, result)."""
        shard = self.route(message)
        return shard, self.shards[shard].ingest(message)

    def ingest_batch(self, messages: Iterable[Message], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Route and ingest a date-ordered batch."""
        if count_only:
            count = 0
            for message in messages:
                self.ingest(message)
                count += 1
            return count
        return [self.ingest(message) for message in messages]

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------

    def search(self, raw_query: str, k: int = 10) -> list[BundleHit]:
        """Scatter-gather Eq. 7 search, merged into one ranked list.

        Scores from different shards are comparable because every shard
        runs the same scoring function over the same global clock.
        (Bundle ids are per-shard counters — use :meth:`search_by_shard`
        when you need to know which shard owns a hit.)
        """
        return [hit for _, hit in self.search_by_shard(raw_query, k=k)]

    def search_by_shard(self, raw_query: str, k: int = 10,
                        ) -> list[tuple[int, BundleHit]]:
        """Scatter-gather Eq. 7 search; hits tagged with their shard."""
        merged: list[tuple[int, BundleHit]] = []
        for shard_index, searcher in enumerate(self._searchers):
            for hit in searcher.search(raw_query, k=k):
                merged.append((shard_index, hit))
        merged.sort(key=lambda pair: (-pair[1].score, pair[0],
                                      pair[1].bundle_id))
        return merged[:k]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> "dict[str, int]":
        """Unified counters summed across shards (``repro.api``)."""
        totals = dict.fromkeys(EngineStats.FIELDS, 0)
        for shard in self.shards:
            for name in EngineStats.FIELDS:
                totals[name] += getattr(shard.stats, name)
        totals["shard_count"] = self.shard_count
        return totals

    def shard_stats(self) -> ShardStats:
        """Load distribution across shards."""
        return ShardStats(
            shard_count=self.shard_count,
            messages_per_shard=tuple(
                shard.stats.messages_ingested for shard in self.shards),
            bundles_per_shard=tuple(
                len(shard.pool) for shard in self.shards),
        )

    def snapshot(self) -> MemorySnapshot:
        """Memory accounting summed across shards."""
        snaps = [shard.snapshot() for shard in self.shards]
        return MemorySnapshot(
            pool_bytes=sum(s.pool_bytes for s in snaps),
            index_bytes=sum(s.index_bytes for s in snaps),
            message_count=sum(s.message_count for s in snaps),
            bundle_count=sum(s.bundle_count for s in snaps),
        )

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Union of all shards' discovered connections."""
        pairs: set[tuple[int, int]] = set()
        for shard in self.shards:
            pairs |= shard.edge_pairs()
        return pairs

    def close(self) -> None:
        """Close every shard engine; idempotent."""
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedIndexer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
