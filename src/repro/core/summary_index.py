"""The summary index (Fig. 5): indicants → candidate bundles.

The index keeps one inverted map per indicant kind (hashtag, URL, keyword,
author-for-RT); each term maps to the bundles whose members carry it,
together with an occurrence count — exactly the ``{id, count}`` items the
paper draws in Fig. 5.  It supports the three phases of Algorithm 1:
candidate fetching, and incremental updates on insertion and eviction.

How the postings are laid out in memory is delegated to a
:class:`~repro.core.postings.PostingsStorage` backend — the
slab-allocated arena layout by default, the legacy nested-dict layout as
the conformance reference (``IndexerConfig.postings_backend``).  The
index's public surface is layout-free: :meth:`postings` and
:meth:`iter_terms` return read-only views, and the candidate-fetch step
returns a :class:`~repro.core.postings.CandidateGather` carrying the
per-kind hit counts Eq. 1 needs, so the engine never reaches into
postings containers.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping

from repro.api import deprecated
from repro.core.bundle import Bundle
from repro.core.message import Message
from repro.core.postings import (INDICANT_KINDS, CandidateGather,
                                 PostingsStorage, open_storage)

__all__ = ["SummaryIndex", "INDICANT_KINDS"]


class SummaryIndex:
    """Inverted index from bundle indicants to bundle ids with counts."""

    __slots__ = ("_storage",)

    def __init__(self, backend: str = "slab", *,
                 storage: "PostingsStorage | None" = None) -> None:
        self._storage: PostingsStorage = (
            storage if storage is not None else open_storage(backend))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def term_count(self, kind: "str | None" = None) -> int:
        """Distinct indexed terms, total or for one indicant kind."""
        return self._storage.term_count(kind)

    def entry_count(self, kind: "str | None" = None) -> int:
        """Total (term, bundle) entries, overall or for one kind."""
        return self._storage.entry_count(kind)

    def postings(self, kind: str, term: str) -> "Mapping[int, int]":
        """Read-only ``{bundle_id: count}`` view of one term.

        Empty mapping when the term is unseen.  The view is immutable
        (mutating it raises ``TypeError``) and may be either live or a
        snapshot depending on the backend — treat it as ephemeral and
        copy if you need to keep it across index updates.
        """
        return self._storage.postings(kind, term)

    def iter_terms(self, kind: str) -> "Iterator[str]":
        """Iterate the dictionary of one indicant kind."""
        return self._storage.terms(kind)

    @deprecated("postings(kind, term)")
    def bundles_for(self, kind: str, term: str) -> "dict[int, int]":
        """Deprecated spelling of :meth:`postings` (returns a copy)."""
        return dict(self._storage.postings(kind, term))

    @deprecated("iter_terms(kind)")
    def terms(self, kind: str) -> "Iterator[str]":
        """Deprecated spelling of :meth:`iter_terms`."""
        return self._storage.terms(kind)

    def postings_length(self, kind: str, term: str) -> int:
        """Length of one term's postings list (0 if unseen).

        This is the candidate fan-in the term contributes to
        Algorithm 1 — the workload-anatomy sketches weight hot terms
        by it.
        """
        return self._storage.postings_length(kind, term)

    def postings_lengths(self, kind: str) -> "list[int]":
        """Every postings-list length of one kind (insertion order).

        The full population, so fingerprint quantiles are exact — the
        slab slice schedule is sized from these.
        """
        return self._storage.postings_lengths(kind)

    def approximate_memory_bytes(self) -> int:
        """Deterministic footprint estimate (feeds Fig. 11a).

        The cheap fallback; the measured truth is the anatomy
        accountant's deep-size walk over :meth:`memory_root`, with
        drift exported as ``repro_memory_drift_ratio{component="index"}``.
        """
        return self._storage.approximate_memory_bytes()

    def memory_root(self) -> object:
        """The storage object the memory accountant's deep walk sizes."""
        return self._storage.memory_root()

    def bind_registry(self, registry) -> None:
        """Export the index's size gauges (callback-backed, no state)."""
        registry.gauge("repro_index_terms",
                       help="Distinct indexed indicant terms",
                       callback=self.term_count)
        registry.gauge("repro_index_entries",
                       help="Total (term, bundle) postings",
                       callback=self.entry_count)
        for kind in INDICANT_KINDS:
            registry.gauge("repro_index_terms",
                           help="Distinct indexed indicant terms",
                           labels={"kind": kind},
                           callback=lambda k=kind: self.term_count(k))
            registry.gauge("repro_index_entries",
                           help="Total (term, bundle) postings",
                           labels={"kind": kind},
                           callback=lambda k=kind: self.entry_count(k))

    # ------------------------------------------------------------------
    # Algorithm 1, step 1 — candidate fetching
    # ------------------------------------------------------------------

    @staticmethod
    def _probe_groups(message: Message, keywords: "frozenset[str]",
                      ) -> "tuple[tuple[str, Iterable[str]], ...]":
        return (("hashtag", message.hashtags),
                ("url", message.urls),
                ("keyword", keywords),
                ("user", message.rt_users))

    def gather_candidates(self, message: Message,
                          keywords: "frozenset[str]") -> CandidateGather:
        """Candidate bundles with per-kind postings-hit counts.

        The batch-first fetch: one call returns everything Eq. 1 needs
        (``kind_hits`` rows are exactly the shared-indicant counts), so
        the engine scores all candidates in a few array ops instead of
        intersecting per-bundle summaries.
        """
        return self._storage.gather(self._probe_groups(message, keywords))

    def candidates(self, message: Message,
                   keywords: "frozenset[str]") -> "Counter[int]":
        """Candidate bundles for an incoming message.

        Returns a counter of bundle ids weighted by how many indicant
        postings hit them — the engine uses the weight to cap the number
        of bundles that get fully scored (``max_candidates``).
        """
        return self.gather_candidates(message, keywords).counter()

    def candidates_batch(
        self, probes: "Iterable[tuple[Message, frozenset[str]]]",
    ) -> "list[CandidateGather]":
        """Candidate gathers for a batch of (message, keywords) probes.

        A read-only bulk probe against the *current* index state — the
        primary spelling for repair probes and offline scoring.  Note
        that live ingestion cannot reuse one batch of gathers across
        placements (each placement updates the index the next message's
        candidates depend on); the engine therefore gathers per message
        inside :meth:`~repro.core.engine.ProvenanceIndexer.ingest_batch`
        and amortises the text analysis instead.
        """
        return [self._storage.gather(self._probe_groups(message, keywords))
                for message, keywords in probes]

    # ------------------------------------------------------------------
    # Algorithm 1, step 3 — index updating
    # ------------------------------------------------------------------

    def add_message(self, bundle_id: int, message: Message,
                    keywords: "frozenset[str]") -> None:
        """Register one inserted message's indicants under its bundle."""
        storage = self._storage
        storage.bump("hashtag", message.hashtags, bundle_id)
        storage.bump("url", message.urls, bundle_id)
        storage.bump("keyword", keywords, bundle_id)
        storage.bump("user", (message.user,), bundle_id)

    def remove_bundle(self, bundle: Bundle) -> None:
        """Erase every index entry pointing at ``bundle`` (on eviction)."""
        bundle_id = bundle.bundle_id
        storage = self._storage
        storage.drop("hashtag", bundle.hashtag_counts, bundle_id)
        storage.drop("url", bundle.url_counts, bundle_id)
        storage.drop("keyword", bundle.keyword_counts, bundle_id)
        storage.drop("user", bundle.user_counts, bundle_id)
