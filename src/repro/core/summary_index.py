"""The summary index (Fig. 5): indicants → candidate bundles.

The index keeps one inverted map per indicant kind (hashtag, URL, keyword,
author-for-RT); each term maps to the bundles whose members carry it,
together with an occurrence count — exactly the ``{id, count}`` items the
paper draws in Fig. 5.  It supports the three phases of Algorithm 1:
candidate fetching, and incremental updates on insertion and eviction.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.core.bundle import Bundle
from repro.core.errors import IndexError_
from repro.core.message import Message

__all__ = ["SummaryIndex", "INDICANT_KINDS"]

INDICANT_KINDS = ("hashtag", "url", "keyword", "user")

# Byte model behind approximate_memory_bytes(), calibrated against the
# measured deep-size walk in repro.obs.anatomy (MemoryAccountant) on a
# seeded replay workload — see tests/obs/test_anatomy.py.  The constants
# are frozen (not measured at import time) so the estimate stays
# deterministic and O(1)-cheap per term; the accountant exposes live
# drift as ``repro_memory_drift_ratio{component="index"}``.
# Least-squares fit over three seeded workload scales on CPython 3.11
# (residuals within +/-9%):
_TERM_BASE_BYTES = 242   # term str header + outer dict slot + small-dict base
_TERM_ENTRY_BYTES = 76   # inner dict slot + boxed bundle id + count


class SummaryIndex:
    """Inverted index from bundle indicants to bundle ids with counts."""

    __slots__ = ("_maps",)

    def __init__(self) -> None:
        # kind -> term -> {bundle_id: count}
        self._maps: dict[str, dict[str, dict[int, int]]] = {
            kind: {} for kind in INDICANT_KINDS
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def term_count(self, kind: str | None = None) -> int:
        """Distinct indexed terms, total or for one indicant kind."""
        if kind is not None:
            return len(self._map_for(kind))
        return sum(len(terms) for terms in self._maps.values())

    def entry_count(self, kind: str | None = None) -> int:
        """Total (term, bundle) entries, overall or for one kind."""
        if kind is not None:
            return sum(len(bundles)
                       for bundles in self._map_for(kind).values())
        return sum(
            len(bundles)
            for terms in self._maps.values()
            for bundles in terms.values()
        )

    def bundles_for(self, kind: str, term: str) -> dict[int, int]:
        """The ``{bundle_id: count}`` map of one term (empty if unseen)."""
        return dict(self._map_for(kind).get(term, {}))

    def terms(self, kind: str) -> Iterator[str]:
        """Iterate the dictionary of one indicant kind."""
        return iter(self._map_for(kind))

    def postings_length(self, kind: str, term: str) -> int:
        """Length of one term's postings list (0 if unseen).

        This is the candidate fan-in the term contributes to
        Algorithm 1 — the workload-anatomy sketches weight hot terms
        by it.
        """
        bundles = self._map_for(kind).get(term)
        return len(bundles) if bundles is not None else 0

    def postings_lengths(self, kind: str) -> list[int]:
        """Every postings-list length of one kind (insertion order).

        The full population, so fingerprint quantiles are exact — the
        slab slice schedule of ROADMAP item 1 is sized from these.
        """
        return [len(bundles) for bundles in self._map_for(kind).values()]

    def approximate_memory_bytes(self) -> int:
        """Deterministic footprint estimate (feeds Fig. 11a).

        The cheap O(terms) fallback; the measured truth is the
        anatomy accountant's deep-size walk, with drift exported as
        ``repro_memory_drift_ratio{component="index"}``.
        """
        total = 0
        for terms in self._maps.values():
            for term, bundles in terms.items():
                total += (_TERM_BASE_BYTES + len(term)
                          + len(bundles) * _TERM_ENTRY_BYTES)
        return total

    def bind_registry(self, registry) -> None:
        """Export the index's size gauges (callback-backed, no state)."""
        registry.gauge("repro_index_terms",
                       help="Distinct indexed indicant terms",
                       callback=self.term_count)
        registry.gauge("repro_index_entries",
                       help="Total (term, bundle) postings",
                       callback=self.entry_count)
        for kind in INDICANT_KINDS:
            registry.gauge("repro_index_terms",
                           help="Distinct indexed indicant terms",
                           labels={"kind": kind},
                           callback=lambda k=kind: self.term_count(k))
            registry.gauge("repro_index_entries",
                           help="Total (term, bundle) postings",
                           labels={"kind": kind},
                           callback=lambda k=kind: self.entry_count(k))

    def _map_for(self, kind: str) -> dict[str, dict[int, int]]:
        try:
            return self._maps[kind]
        except KeyError:
            raise IndexError_(f"unknown indicant kind {kind!r}") from None

    # ------------------------------------------------------------------
    # Algorithm 1, step 1 — candidate fetching
    # ------------------------------------------------------------------

    def candidates(self, message: Message,
                   keywords: frozenset[str]) -> Counter[int]:
        """Candidate bundles for an incoming message.

        Returns a counter of bundle ids weighted by how many indicant
        postings hit them — the engine uses the weight to cap the number
        of bundles that get fully scored (``max_candidates``).
        """
        hits: Counter[int] = Counter()
        hashtag_map = self._maps["hashtag"]
        for tag in message.hashtags:
            for bundle_id in hashtag_map.get(tag, ()):  # keys
                hits[bundle_id] += 1
        url_map = self._maps["url"]
        for url in message.urls:
            for bundle_id in url_map.get(url, ()):
                hits[bundle_id] += 1
        keyword_map = self._maps["keyword"]
        for keyword in keywords:
            for bundle_id in keyword_map.get(keyword, ()):
                hits[bundle_id] += 1
        user_map = self._maps["user"]
        for user in message.rt_users:
            for bundle_id in user_map.get(user, ()):
                hits[bundle_id] += 1
        return hits

    # ------------------------------------------------------------------
    # Algorithm 1, step 3 — index updating
    # ------------------------------------------------------------------

    def add_message(self, bundle_id: int, message: Message,
                    keywords: frozenset[str]) -> None:
        """Register one inserted message's indicants under its bundle."""
        self._bump("hashtag", message.hashtags, bundle_id)
        self._bump("url", message.urls, bundle_id)
        self._bump("keyword", keywords, bundle_id)
        self._bump("user", (message.user,), bundle_id)

    def remove_bundle(self, bundle: Bundle) -> None:
        """Erase every index entry pointing at ``bundle`` (on eviction)."""
        bundle_id = bundle.bundle_id
        self._drop("hashtag", bundle.hashtag_counts, bundle_id)
        self._drop("url", bundle.url_counts, bundle_id)
        self._drop("keyword", bundle.keyword_counts, bundle_id)
        self._drop("user", bundle.user_counts, bundle_id)

    def _bump(self, kind: str, terms: "frozenset[str] | tuple[str, ...]",
              bundle_id: int) -> None:
        term_map = self._maps[kind]
        for term in terms:
            bundles = term_map.get(term)
            if bundles is None:
                bundles = term_map[term] = {}
            bundles[bundle_id] = bundles.get(bundle_id, 0) + 1

    def _drop(self, kind: str, counter: "Counter[str]",
              bundle_id: int) -> None:
        term_map = self._maps[kind]
        for term in counter:
            bundles = term_map.get(term)
            if bundles is None:
                continue
            bundles.pop(bundle_id, None)
            if not bundles:
                del term_map[term]
