"""Composable ingestion pipeline: gates in front of the indexer.

A production deployment rarely feeds the raw firehose straight into the
provenance engine; it samples, drops exact repeats, or gates on quality
first.  :class:`IngestPipeline` composes those pre-stages declaratively
and keeps per-stage drop counters, so the ingest path is one auditable
object instead of ad-hoc glue:

    pipeline = IngestPipeline(
        indexer,
        stages=[
            SamplingStage(rate=0.5, salt="prod"),
            DedupStage(threshold=0.9),
            QualityStage(),          # TI-style gate (ref. [17])
        ])
    for message in stream:
        pipeline.ingest(message)

Every stage sees only messages the previous stages admitted; the order
is the caller's choice and is preserved.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.dedup import DuplicateDetector
from repro.core.engine import IngestResult, ProvenanceIndexer
from repro.core.errors import ConfigurationError
from repro.core.message import Message

__all__ = [
    "IngestStage",
    "SamplingStage",
    "DedupStage",
    "QualityStage",
    "PipelineStats",
    "IngestPipeline",
]


class IngestStage(Protocol):
    """One admission gate: return True to pass the message on."""

    name: str

    def admit(self, message: Message) -> bool:  # pragma: no cover
        """Whether ``message`` continues down the pipeline."""
        ...


class SamplingStage:
    """Deterministic-hash sampling (keep a stable ``rate`` fraction)."""

    def __init__(self, rate: float, *, salt: str = "") -> None:
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"sampling rate must be in (0, 1], got {rate}")
        self.name = f"sample({rate:g})"
        self._cutoff = int(rate * (1 << 32))
        self._salt = salt

    def admit(self, message: Message) -> bool:
        """Keep iff the salted id-hash falls under the rate cutoff."""
        digest = hashlib.blake2b(
            f"{self._salt}:{message.msg_id}".encode(),
            digest_size=4).digest()
        return int.from_bytes(digest, "big") < self._cutoff


class DedupStage:
    """Drop near-duplicates of earlier admitted messages.

    Retweets are exempt: an RT is a *provenance signal*, not redundant
    content — dropping it would erase exactly the edges the engine wants.
    """

    def __init__(self, *, threshold: float = 0.9,
                 keep_retweets: bool = True) -> None:
        self.name = "dedup"
        self.keep_retweets = keep_retweets
        self._detector = DuplicateDetector(threshold=threshold)

    def admit(self, message: Message) -> bool:
        """Admit originals and (optionally) retweets; drop near-copies."""
        duplicate_of = self._detector.check_and_add(message)
        if duplicate_of is None:
            return True
        return self.keep_retweets and message.is_retweet


class QualityStage:
    """TI-style quality gate (see :mod:`repro.text.tiered_index`)."""

    def __init__(self, *, threshold: float = 2.0) -> None:
        from repro.text.tiered_index import QualityClassifier

        self.name = "quality"
        self._classifier = QualityClassifier(threshold=threshold)

    def admit(self, message: Message) -> bool:
        """Admit only messages the quality gate scores high."""
        return self._classifier.classify(message).high_quality


@dataclass(slots=True)
class PipelineStats:
    """Admission accounting, per stage and overall."""

    seen: int = 0
    ingested: int = 0
    dropped_by: dict[str, int] = field(default_factory=dict)

    @property
    def admit_rate(self) -> float:
        """Fraction of seen messages that reached the indexer."""
        if self.seen == 0:
            return 1.0
        return self.ingested / self.seen


class IngestPipeline:
    """Ordered admission stages in front of a provenance indexer."""

    def __init__(self, indexer: ProvenanceIndexer,
                 stages: "list[IngestStage] | None" = None) -> None:
        self.indexer = indexer
        self.stages = list(stages or [])
        names = [stage.name for stage in self.stages]
        if len(names) != len(set(names)):
            raise ConfigurationError(
                f"stage names must be unique, got {names}")
        self.stats = PipelineStats(
            dropped_by={name: 0 for name in names})

    def ingest(self, message: Message) -> IngestResult | None:
        """Run one message through the gates; index it if all admit.

        Returns the engine's :class:`IngestResult`, or ``None`` when a
        stage dropped the message (the stage's counter records which).
        """
        self.stats.seen += 1
        for stage in self.stages:
            if not stage.admit(message):
                self.stats.dropped_by[stage.name] += 1
                return None
        self.stats.ingested += 1
        return self.indexer.ingest(message)

    def ingest_all(self, messages: "list[Message]") -> PipelineStats:
        """Run a batch; returns the cumulative stats."""
        for message in messages:
            self.ingest(message)
        return self.stats
