"""User credibility from provenance feedback (Quality Identification).

The introduction lists *Quality Identification* as a provenance payoff:
"through the sources, developments and user feedbacks collected from
provenance discovery, users can better distinguish the credibility of
information".  This module turns the discovered connections into exactly
that signal:

* being **re-shared** (RT edges pointing at your messages) raises
  credibility — the crowd endorsed your content,
* **originating** bundles (authoring root messages that grow) raises it,
* posting messages that end up in **singleton** bundles (nobody connected
  to them) drifts a user toward the noise floor.

Scores are maintained incrementally from engine output so the tracker can
run alongside ingestion; a Bayesian-style pseudo-count prior keeps new
users at a neutral score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.connection import ConnectionType
from repro.core.graph import children_map, roots

__all__ = ["UserRecord", "CredibilityTracker"]


@dataclass(slots=True)
class UserRecord:
    """Feedback counters for one user.

    Counters start as ints; :meth:`CredibilityTracker.decay` scales them
    by a float factor, after which they carry fractional weight (the
    decayed prior of a Bayesian-style forgetting scheme).
    """

    messages: float = 0      # messages screened (near-duplicates excluded)
    reshared: float = 0      # RT edges pointing at this user's messages
    connected: float = 0     # messages that attracted any connection
    sources: float = 0       # root messages of multi-message bundles
    isolated: float = 0      # messages left in singleton bundles
    duplicates: float = 0    # undeclared near-duplicates this user posted

    _DECAYED = ("messages", "reshared", "connected", "sources",
                "isolated", "duplicates")


class CredibilityTracker:
    """Incremental credibility scores from closed/evicted bundles.

    Feed finished bundles with :meth:`observe_bundle` (e.g. from the
    engine's store sink, or over the final pool).  Scores combine the
    endorsement rate and the origination rate against the isolation rate:

    ``score = (reshared + sources + prior·0.5) /
              (messages + isolated + prior)``

    which is a smoothed fraction in (0, 1): 0.5 for unknown users, →1 for
    reliably endorsed sources, →0 for users whose output stays isolated.
    """

    def __init__(self, *, prior: float = 4.0) -> None:
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self.prior = prior
        self._records: dict[str, UserRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, user: str) -> bool:
        return user in self._records

    def record(self, user: str) -> UserRecord:
        """The raw counters for ``user`` (created empty on first access)."""
        record = self._records.get(user)
        if record is None:
            record = self._records[user] = UserRecord()
        return record

    # ------------------------------------------------------------------
    # Streaming spam signal (ingest-guard path)
    # ------------------------------------------------------------------

    def note_message(self, user: str) -> None:
        """Count one screened message that was *not* a near-duplicate."""
        self.record(user).messages += 1

    def note_duplicate(self, user: str) -> None:
        """Count one undeclared near-duplicate from ``user``.

        Declared reshares (messages carrying ``rt_users``) are legitimate
        provenance and must never reach this method — the guard only
        calls it for copies that pretend to be original content.
        """
        self.record(user).duplicates += 1

    def observe_screen(self, user: str, *, duplicate: bool,
                       ) -> "tuple[float, float]":
        """Count one screened arrival; return ``(exposure, spam_score)``.

        Semantically :meth:`note_duplicate`/:meth:`note_message` followed
        by :meth:`exposure` and :meth:`spam_score`, fused into a single
        record lookup — the ingest guard runs this on every arrival.
        """
        record = self.record(user)
        if duplicate:
            record.duplicates += 1
        else:
            record.messages += 1
        observed = record.messages + record.duplicates
        hostile = record.duplicates + record.isolated + 0.5 * self.prior
        mass = observed + record.isolated + self.prior
        return observed, hostile / mass

    def decay(self, factor: float = 0.5) -> None:
        """Scale every counter by ``factor`` (forgetting old behaviour).

        The pseudo-count prior is *not* decayed, so a user who goes
        quiet drifts back toward the neutral score instead of being
        branded forever by early behaviour.
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"decay factor must be in (0, 1], got {factor}")
        for record in self._records.values():
            for name in UserRecord._DECAYED:
                setattr(record, name, getattr(record, name) * factor)

    def spam_score(self, user: str) -> float:
        """Fraction of a user's output that looks like spam, in (0, 1).

        ``(duplicates + isolated + 0.5·prior) /
        (messages + duplicates + isolated + prior)``

        0.5 for unseen users; monotone nondecreasing in ``duplicates``
        (the denominator grows by the same amount as the numerator, and
        ``messages + 0.5·prior > 0`` keeps the derivative positive);
        :meth:`decay` moves it back toward 0.5 as the prior's relative
        weight grows.
        """
        record = self._records.get(user)
        if record is None:
            return 0.5
        hostile = record.duplicates + record.isolated + 0.5 * self.prior
        exposure = (record.messages + record.duplicates
                    + record.isolated + self.prior)
        return hostile / exposure

    def exposure(self, user: str) -> float:
        """Observed message mass for ``user`` (screen + duplicate counts)."""
        record = self._records.get(user)
        if record is None:
            return 0.0
        return record.messages + record.duplicates

    def observe_bundle(self, bundle: Bundle) -> None:
        """Fold one bundle's structure into the per-user counters."""
        children = children_map(bundle)
        root_ids = set(roots(bundle))
        is_singleton = len(bundle) == 1
        edge_by_src = {edge.src_id: edge for edge in bundle.edges()}
        for message in bundle.messages():
            record = self.record(message.user)
            record.messages += 1
            kids = children.get(message.msg_id, ())
            if kids:
                record.connected += 1
                rt_kids = sum(
                    1 for kid in kids
                    if edge_by_src[kid].kind is ConnectionType.RT)
                record.reshared += rt_kids
            if message.msg_id in root_ids and len(bundle) > 1:
                record.sources += 1
            if is_singleton:
                record.isolated += 1

    def observe_pool(self, bundles: "list[Bundle]") -> None:
        """Fold a whole pool (convenience for end-of-run scoring)."""
        for bundle in bundles:
            self.observe_bundle(bundle)

    def score(self, user: str) -> float:
        """Smoothed credibility in (0, 1); 0.5 for unseen users."""
        record = self._records.get(user)
        if record is None:
            return 0.5
        positive = record.reshared + record.sources + 0.5 * self.prior
        exposure = record.messages + record.isolated + self.prior
        return min(positive / exposure, 1.0)

    def top_users(self, k: int = 10, *,
                  min_messages: int = 3) -> list[tuple[str, float]]:
        """Most credible users with at least ``min_messages`` observed."""
        eligible = [
            (user, self.score(user))
            for user, record in self._records.items()
            if record.messages >= min_messages
        ]
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        return eligible[:k]

    def noise_users(self, k: int = 10, *,
                    min_messages: int = 3) -> list[tuple[str, float]]:
        """Least credible users (probable noise accounts)."""
        eligible = [
            (user, self.score(user))
            for user, record in self._records.items()
            if record.messages >= min_messages
        ]
        eligible.sort(key=lambda pair: (pair[1], pair[0]))
        return eligible[:k]
