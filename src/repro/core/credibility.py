"""User credibility from provenance feedback (Quality Identification).

The introduction lists *Quality Identification* as a provenance payoff:
"through the sources, developments and user feedbacks collected from
provenance discovery, users can better distinguish the credibility of
information".  This module turns the discovered connections into exactly
that signal:

* being **re-shared** (RT edges pointing at your messages) raises
  credibility — the crowd endorsed your content,
* **originating** bundles (authoring root messages that grow) raises it,
* posting messages that end up in **singleton** bundles (nobody connected
  to them) drifts a user toward the noise floor.

Scores are maintained incrementally from engine output so the tracker can
run alongside ingestion; a Bayesian-style pseudo-count prior keeps new
users at a neutral score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bundle import Bundle
from repro.core.connection import ConnectionType
from repro.core.graph import children_map, roots

__all__ = ["UserRecord", "CredibilityTracker"]


@dataclass(slots=True)
class UserRecord:
    """Feedback counters for one user."""

    messages: int = 0
    reshared: int = 0        # RT edges pointing at this user's messages
    connected: int = 0       # messages that attracted any connection
    sources: int = 0         # root messages of multi-message bundles
    isolated: int = 0        # messages left in singleton bundles


class CredibilityTracker:
    """Incremental credibility scores from closed/evicted bundles.

    Feed finished bundles with :meth:`observe_bundle` (e.g. from the
    engine's store sink, or over the final pool).  Scores combine the
    endorsement rate and the origination rate against the isolation rate:

    ``score = (reshared + sources + prior·0.5) /
              (messages + isolated + prior)``

    which is a smoothed fraction in (0, 1): 0.5 for unknown users, →1 for
    reliably endorsed sources, →0 for users whose output stays isolated.
    """

    def __init__(self, *, prior: float = 4.0) -> None:
        if prior <= 0:
            raise ValueError(f"prior must be positive, got {prior}")
        self.prior = prior
        self._records: dict[str, UserRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, user: str) -> bool:
        return user in self._records

    def record(self, user: str) -> UserRecord:
        """The raw counters for ``user`` (created empty on first access)."""
        record = self._records.get(user)
        if record is None:
            record = self._records[user] = UserRecord()
        return record

    def observe_bundle(self, bundle: Bundle) -> None:
        """Fold one bundle's structure into the per-user counters."""
        children = children_map(bundle)
        root_ids = set(roots(bundle))
        is_singleton = len(bundle) == 1
        edge_by_src = {edge.src_id: edge for edge in bundle.edges()}
        for message in bundle.messages():
            record = self.record(message.user)
            record.messages += 1
            kids = children.get(message.msg_id, ())
            if kids:
                record.connected += 1
                rt_kids = sum(
                    1 for kid in kids
                    if edge_by_src[kid].kind is ConnectionType.RT)
                record.reshared += rt_kids
            if message.msg_id in root_ids and len(bundle) > 1:
                record.sources += 1
            if is_singleton:
                record.isolated += 1

    def observe_pool(self, bundles: "list[Bundle]") -> None:
        """Fold a whole pool (convenience for end-of-run scoring)."""
        for bundle in bundles:
            self.observe_bundle(bundle)

    def score(self, user: str) -> float:
        """Smoothed credibility in (0, 1); 0.5 for unseen users."""
        record = self._records.get(user)
        if record is None:
            return 0.5
        positive = record.reshared + record.sources + 0.5 * self.prior
        exposure = record.messages + record.isolated + self.prior
        return min(positive / exposure, 1.0)

    def top_users(self, k: int = 10, *,
                  min_messages: int = 3) -> list[tuple[str, float]]:
        """Most credible users with at least ``min_messages`` observed."""
        eligible = [
            (user, self.score(user))
            for user, record in self._records.items()
            if record.messages >= min_messages
        ]
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        return eligible[:k]

    def noise_users(self, k: int = 10, *,
                    min_messages: int = 3) -> list[tuple[str, float]]:
        """Least credible users (probable noise accounts)."""
        eligible = [
            (user, self.score(user))
            for user, record in self._records.items()
            if record.messages >= min_messages
        ]
        eligible.sort(key=lambda pair: (pair[1], pair[0]))
        return eligible[:k]
