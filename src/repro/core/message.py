"""Micro-blog message model (Definition 1 of the paper).

A message is the multi-field tuple ``[date, user, msg, urls, hashtags, rt]``.
This module provides the immutable :class:`Message` record plus the entity
extraction used to populate the annotated-indicant fields from raw text:

* ``hashtags`` — tokens starting with ``#`` (``#redsox``),
* ``urls``     — ``http(s)://`` links and bare shortener links (``bit.ly/x``),
* ``rt``       — the re-share marker ``RT @user:`` identifying the user whose
  message is being re-shared (Table I of the paper).

Messages are hashable value objects; the stream layer assigns monotonically
increasing integer ids so that ``date`` ties break deterministically.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.errors import MessageError

__all__ = [
    "Message",
    "extract_hashtags",
    "extract_urls",
    "extract_rt_users",
    "extract_mentions",
    "strip_entities",
    "parse_message",
]

_HASHTAG_RE = re.compile(r"#(\w+)")
_MENTION_RE = re.compile(r"@(\w+)")
_URL_RE = re.compile(
    r"(?:https?://\S+"  # absolute http(s) URLs
    r"|(?:bit\.ly|ow\.ly|is\.gd|tinyurl\.com|t\.co|goo\.gl|twitpic\.com)/\S+)",
    re.IGNORECASE,
)
# ``RT @user:`` or ``RT @user`` — re-share marker, possibly chained.
_RT_RE = re.compile(r"\bRT\s+@(\w+)\b:?", re.IGNORECASE)


def extract_hashtags(text: str) -> frozenset[str]:
    """Return the lower-cased hashtag set of ``text`` (without the ``#``)."""
    return frozenset(tag.lower() for tag in _HASHTAG_RE.findall(text))


def extract_urls(text: str) -> frozenset[str]:
    """Return the URL set of ``text``, normalised.

    Normalisation lower-cases the host part, strips a trailing punctuation
    character (URLs at the end of a sentence frequently absorb a ``.`` or
    ``!``) and removes an ``http(s)://`` prefix so that ``http://bit.ly/x``
    and ``bit.ly/x`` compare equal — shorteners are the paper's canonical
    URL indicant (Fig. 3).
    """
    found = set()
    for raw in _URL_RE.findall(text):
        url = raw.rstrip(".,;:!?)'\"")
        url = re.sub(r"^https?://", "", url, flags=re.IGNORECASE)
        host, _, rest = url.partition("/")
        found.add(host.lower() + ("/" + rest if rest else ""))
    return frozenset(found)


def extract_rt_users(text: str) -> tuple[str, ...]:
    """Return the chain of re-shared users, outermost first.

    ``"WHEW!! RT @MLB: RT @IanMBrowne X-rays negative"`` yields
    ``("mlb", "ianmbrowne")`` — the message re-shares @MLB's re-share of
    @IanMBrowne's original post.
    """
    return tuple(user.lower() for user in _RT_RE.findall(text))


def extract_mentions(text: str) -> frozenset[str]:
    """Return all ``@user`` mentions (lower-cased), including RT targets."""
    return frozenset(user.lower() for user in _MENTION_RE.findall(text))


def strip_entities(text: str) -> str:
    """Return ``text`` with URLs, hashtag markers and RT markers removed.

    Used to obtain the plain word content for keyword extraction and for
    the ``text`` connection type of Table II.
    """
    text = _URL_RE.sub(" ", text)
    text = _RT_RE.sub(" ", text)
    text = text.replace("#", " ")
    return " ".join(text.split())


@dataclass(frozen=True, slots=True)
class Message:
    """One micro-blog message (Definition 1).

    Attributes
    ----------
    msg_id:
        Stream-unique integer id; assigned in arrival order so it also
        serves as a deterministic tie-break for equal dates.
    user:
        Author screen name (lower-cased by :func:`parse_message`).
    date:
        Publication time as POSIX seconds (float).
    text:
        The raw message text (at most a few hundred characters).
    hashtags / urls:
        Extracted annotated indicants (Table II connection keys).
    rt_users:
        Re-share chain extracted from ``RT @user:`` markers; empty tuple
        for original posts.
    event_id / parent_id:
        Optional ground-truth labels carried by the synthetic stream
        generator (``None`` on real data).  ``parent_id`` is the id of the
        message this one was derived from (re-share or follow-up); it is
        *never* consulted by the indexing algorithms, only by evaluation.
    """

    msg_id: int
    user: str
    date: float
    text: str
    hashtags: frozenset[str] = field(default_factory=frozenset)
    urls: frozenset[str] = field(default_factory=frozenset)
    rt_users: tuple[str, ...] = ()
    event_id: int | None = None
    parent_id: int | None = None

    def __post_init__(self) -> None:
        if self.msg_id < 0:
            raise MessageError(f"msg_id must be non-negative, got {self.msg_id}")
        if not self.user:
            raise MessageError("message user must be non-empty")
        if self.date < 0:
            raise MessageError(f"message date must be non-negative, got {self.date}")

    @property
    def is_retweet(self) -> bool:
        """Whether this message re-shares a previous one (has an RT marker)."""
        return bool(self.rt_users)

    @property
    def rt_source(self) -> str | None:
        """The user whose message is directly re-shared, or ``None``."""
        return self.rt_users[0] if self.rt_users else None

    def plain_text(self) -> str:
        """Message text with URLs / RT markers / hashtag sigils removed."""
        return strip_entities(self.text)

    def sort_key(self) -> tuple[float, int]:
        """Total order used by streams: by date, then by arrival id."""
        return (self.date, self.msg_id)


def parse_message(
    msg_id: int,
    user: str,
    date: float,
    text: str,
    *,
    event_id: int | None = None,
    parent_id: int | None = None,
) -> Message:
    """Build a :class:`Message`, extracting all annotated indicants.

    This is the single entry point both the dataset reader and the synthetic
    generator use, so entity extraction is applied uniformly.
    """
    return Message(
        msg_id=msg_id,
        user=user.lower(),
        date=float(date),
        text=text,
        hashtags=extract_hashtags(text),
        urls=extract_urls(text),
        rt_users=extract_rt_users(text),
        event_id=event_id,
        parent_id=parent_id,
    )
