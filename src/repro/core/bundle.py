"""Provenance bundles (Definition 3) and intra-bundle allocation (Alg. 2).

A bundle is a non-overlapping group of messages in which each message keeps
one maximum-scored connection to a prior member, so the connections form a
forest rooted at the bundle's source message(s) — the compact tree of
Fig. 3.  The bundle also maintains the indicant summaries (hashtag / URL /
keyword counters) that feed the summary index and the bundle-level match
score of Eq. 1.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.core.config import IndexerConfig
from repro.core.connection import Connection, ConnectionType
from repro.core.errors import BundleClosedError, BundleError
from repro.core.message import Message
from repro.core.scoring import dominant_connection_type, message_similarity
from repro.obs.audit import AllocationScore, _RawAllocation

__all__ = ["Bundle"]

# Per-object overheads used by the hardware-independent memory model
# (Fig. 11a), least-squares calibrated against the measured deep-size
# walk of repro.obs.anatomy (MemoryAccountant) over three seeded
# workload scales on CPython 3.11 — residuals within 2.2% — and kept
# fixed for reproducibility.  The per-message constant covers the whole
# resident Message object graph (text/user str headers, the keywords
# frozenset and its strings, hashtag/url tuples, dict slots), which is
# why it dwarfs the old guess of 320; live drift is exported as
# ``repro_memory_drift_ratio{component="pool"}``.
_MESSAGE_OVERHEAD_BYTES = 1844
_EDGE_OVERHEAD_BYTES = 96
_COUNTER_ENTRY_BYTES = 114


class Bundle:
    """A group of connected messages with summary indicants.

    Parameters
    ----------
    bundle_id:
        Pool-unique integer id.
    config:
        Scoring weights used by the allocation step.
    """

    __slots__ = (
        "bundle_id", "config", "closed",
        "_messages", "_order", "_edges", "_keywords_by_msg", "_member_index",
        "hashtag_counts", "url_counts", "keyword_counts", "user_counts",
        "start_time", "end_time", "last_update",
    )

    def __init__(self, bundle_id: int, config: IndexerConfig | None = None) -> None:
        self.bundle_id = bundle_id
        self.config = config or IndexerConfig()
        self.closed = False
        self._messages: dict[int, Message] = {}
        self._order: list[int] = []  # insertion (arrival) order of msg ids
        self._edges: dict[int, Connection] = {}  # src msg id -> edge
        self._keywords_by_msg: dict[int, frozenset[str]] = {}
        # Member-level inverted maps: indicant term -> member msg ids in
        # arrival order.  Keeps Algorithm 2's candidate gathering O(hits)
        # rather than O(bundle size).
        self._member_index: dict[str, list[int]] = {}
        self.hashtag_counts: Counter[str] = Counter()
        self.url_counts: Counter[str] = Counter()
        self.keyword_counts: Counter[str] = Counter()
        self.user_counts: Counter[str] = Counter()
        self.start_time = float("inf")
        self.end_time = float("-inf")
        self.last_update = float("-inf")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, msg_id: int) -> bool:
        return msg_id in self._messages

    def __iter__(self) -> Iterator[Message]:
        """Iterate messages in arrival order."""
        return (self._messages[msg_id] for msg_id in self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Bundle(id={self.bundle_id}, size={len(self)}, "
                f"closed={self.closed})")

    @property
    def size(self) -> int:
        """Number of messages in the bundle."""
        return len(self._messages)

    @property
    def time_span(self) -> float:
        """Seconds between the oldest and newest message (0.0 if < 2)."""
        if len(self._messages) < 2:
            return 0.0
        return self.end_time - self.start_time

    def get(self, msg_id: int) -> Message | None:
        """Fetch a member message by id."""
        return self._messages.get(msg_id)

    def messages(self) -> list[Message]:
        """Members in arrival order."""
        return [self._messages[msg_id] for msg_id in self._order]

    def message_ids(self) -> list[int]:
        """Member ids in arrival order."""
        return list(self._order)

    def edges(self) -> list[Connection]:
        """All provenance edges (one per non-root message)."""
        return list(self._edges.values())

    def edge_pairs(self) -> set[tuple[int, int]]:
        """The (src, dst) pairs — the evaluation unit of Section VI-B."""
        return {edge.as_pair() for edge in self._edges.values()}

    def parent_of(self, msg_id: int) -> int | None:
        """Provenance parent of a member message (``None`` for roots)."""
        edge = self._edges.get(msg_id)
        return edge.dst_id if edge else None

    def keywords_of(self, msg_id: int) -> frozenset[str]:
        """The keyword indicants recorded for a member message."""
        return self._keywords_by_msg.get(msg_id, frozenset())

    def summary_words(self, limit: int = 10) -> list[str]:
        """Top frequent indicant words — the bundle summary of Fig. 2a."""
        merged: Counter[str] = Counter()
        merged.update(self.keyword_counts)
        merged.update(self.hashtag_counts)
        ranked = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        return [word for word, _ in ranked[:limit]]

    def shared_counts(
        self, message: Message, keywords: frozenset[str],
    ) -> tuple[int, int, int, bool]:
        """Overlap counts between a message and this bundle's summary.

        Returns ``(shared_urls, shared_hashtags, shared_keywords, rt_hit)``
        — the inputs of Eq. 1.  ``rt_hit`` is true when the message
        re-shares an author already present in the bundle.
        """
        shared_urls = (len(message.urls & self.url_counts.keys())
                       if message.urls else 0)
        shared_tags = (len(message.hashtags & self.hashtag_counts.keys())
                       if message.hashtags else 0)
        shared_kws = (len(keywords & self.keyword_counts.keys())
                      if keywords else 0)
        rt_hit = any(user in self.user_counts for user in message.rt_users)
        return shared_urls, shared_tags, shared_kws, rt_hit

    # ------------------------------------------------------------------
    # Mutation — Algorithm 2
    # ------------------------------------------------------------------

    #: Allocation alternatives kept per audit record (chosen included).
    AUDIT_TOP_K = 8

    def insert(self, message: Message,
               keywords: frozenset[str] = frozenset(), *,
               collect: "list[AllocationScore] | None" = None,
               ) -> Connection | None:
        """Insert ``message``, aligning it with the best prior member.

        Implements Algorithm 2: gather candidate members that share any
        indicant with the new message, pick the maximum Eq. 5 similarity,
        connect, and widen the bundle's time window.  The first message of
        a bundle (and any message with an empty candidate set and an empty
        bundle history) becomes a root with no edge.

        ``collect``, when given, receives one deferred capture that
        materializes into the Eq. 2–5 component scores of the
        top-:data:`AUDIT_TOP_K` allocation alternatives (the audit
        layer's decision record); the hot path is untouched when
        ``None``.

        Returns the created :class:`Connection`, or ``None`` for roots.

        Raises
        ------
        BundleClosedError
            If the bundle was closed by the size constraint.
        BundleError
            If the message id is already a member.
        """
        if self.closed:
            raise BundleClosedError(
                f"bundle {self.bundle_id} is closed to new messages")
        if message.msg_id in self._messages:
            raise BundleError(
                f"message {message.msg_id} already in bundle {self.bundle_id}")

        edge = None
        candidates = self._candidate_members(message, keywords)
        if candidates:
            best = candidates[0]
            best_key = (message_similarity(message, best, self.config),
                        best.date, -best.msg_id)
            for prior in candidates[1:]:
                key = (message_similarity(message, prior, self.config),
                       prior.date, -prior.msg_id)
                if key > best_key:
                    best, best_key = prior, key
            if collect is not None:
                # One reference capture, no per-member work: the audit
                # layer re-derives the Eq. 2–5 breakdown from these
                # (pure) ingredients only when the record is read.  The
                # winner's score is the captured one, so the recorded
                # chosen parent is bit-identical to the created edge.
                collect.append(_RawAllocation(
                    message, tuple(candidates), best, best_key[0],
                    self.config, self.AUDIT_TOP_K))
            kind = self._edge_kind(message, best, keywords)
            edge = Connection(message.msg_id, best.msg_id, kind, best_key[0])
            self._edges[message.msg_id] = edge

        self._register_member(message, keywords)
        return edge

    def _register_member(self, message: Message,
                         keywords: frozenset[str]) -> None:
        """Shared bookkeeping for insertion and verbatim restore."""
        self._messages[message.msg_id] = message
        self._order.append(message.msg_id)
        self._keywords_by_msg[message.msg_id] = keywords
        for key in self._indicant_keys(message, keywords):
            members = self._member_index.get(key)
            if members is None:
                members = self._member_index[key] = []
            members.append(message.msg_id)
        self.hashtag_counts.update(message.hashtags)
        self.url_counts.update(message.urls)
        self.keyword_counts.update(keywords)
        self.user_counts[message.user] += 1
        # Algorithm 2 lines 8-13: widen [start_time, end_time].
        self.start_time = min(self.start_time, message.date)
        self.end_time = max(self.end_time, message.date)
        self.last_update = max(self.last_update, message.date)

    @staticmethod
    def _indicant_keys(message: Message,
                       keywords: frozenset[str]) -> Iterator[str]:
        """Namespaced member-index keys for one message's indicants."""
        for tag in message.hashtags:
            yield "t:" + tag
        for url in message.urls:
            yield "u:" + url
        for keyword in keywords:
            yield "k:" + keyword
        yield "a:" + message.user

    def close(self) -> None:
        """Mark the bundle closed (bundle-size constraint, Section V-B)."""
        self.closed = True

    def _candidate_members(
        self, message: Message, keywords: frozenset[str],
    ) -> list[Message]:
        """Members sharing any indicant with ``message`` (Alg. 2 lines 1-5).

        Gathered through the member-level inverted maps, keeping only the
        ``alloc_window`` most recent sharers per indicant — old members no
        longer attract alignments (the Fig. 6b observation), and the cap
        bounds insertion cost on huge bundles.

        Falls back to the most recent member when nothing overlaps: the
        message was routed here by the bundle-level summary (e.g. via a
        keyword that has since left a member's top-k), and the freshest
        member is the paper's intuition for alignment.
        """
        window = self.config.alloc_window
        candidate_ids: set[int] = set()
        for user in message.rt_users:
            candidate_ids.update(self._member_index.get("a:" + user, ())[-window:])
        for tag in message.hashtags:
            candidate_ids.update(self._member_index.get("t:" + tag, ())[-window:])
        for url in message.urls:
            candidate_ids.update(self._member_index.get("u:" + url, ())[-window:])
        for keyword in keywords:
            candidate_ids.update(self._member_index.get("k:" + keyword, ())[-window:])
        if not candidate_ids and self._order:
            latest_id = max(
                self._order,
                key=lambda mid: self._messages[mid].sort_key())
            candidate_ids.add(latest_id)
        # Cap the merged set as well: msg ids are arrival-ordered, so the
        # highest ids are the most recent sharers.
        recent = sorted(candidate_ids)[-window:]
        return [self._messages[msg_id] for msg_id in recent]

    def _edge_kind(self, message: Message, prior: Message,
                   keywords: frozenset[str]) -> ConnectionType:
        """Dominant Table II type, honouring keyword-only matches as TEXT."""
        kind = dominant_connection_type(message, prior)
        if kind is ConnectionType.TEXT:
            return ConnectionType.TEXT
        return kind

    # ------------------------------------------------------------------
    # Memory model (Fig. 11)
    # ------------------------------------------------------------------

    def approximate_memory_bytes(self) -> int:
        """Hardware-independent estimate of this bundle's memory footprint.

        Counts message text, indicant strings and fixed per-object
        overheads.  The paper reports both real megabytes and the
        configuration-independent message count (Fig. 11b); this model
        backs the former while staying deterministic across interpreters.
        """
        total = 0
        for message in self._messages.values():
            total += _MESSAGE_OVERHEAD_BYTES + len(message.text)
            total += sum(len(t) for t in message.hashtags)
            total += sum(len(u) for u in message.urls)
        total += len(self._edges) * _EDGE_OVERHEAD_BYTES
        for counter in (self.hashtag_counts, self.url_counts,
                        self.keyword_counts, self.user_counts):
            total += len(counter) * _COUNTER_ENTRY_BYTES
            total += sum(len(key) for key in counter)
        return total
