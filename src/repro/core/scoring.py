"""Similarity and ranking functions (Equations 1–6 of the paper).

Three scoring layers live here:

* **message ↔ message** similarity used by Algorithm 2 to align a new
  message inside its chosen bundle — Eq. 2 (URL overlap ``U``), Eq. 3
  (hashtag overlap ``H``), Eq. 4 (time closeness ``T``) and their weighted
  combination Eq. 5 (``S``);
* **message ↔ bundle** relevance used by Algorithm 1 to pick the best
  candidate bundle — Eq. 1, extended with keyword and RT indicants exactly
  as the paper's trailing "…" invites;
* **bundle aging** score ``G(B)`` of Eq. 6 that drives pool refinement.

All functions are pure; weights come from
:class:`~repro.core.config.IndexerConfig`.
"""

from __future__ import annotations

from importlib import import_module
from typing import Any

from repro.core.config import HOUR_SECONDS, IndexerConfig
from repro.core.connection import ConnectionType
from repro.core.message import Message

try:
    _np: Any = import_module("numpy")
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

__all__ = [
    "url_overlap",
    "hashtag_overlap",
    "time_closeness",
    "message_similarity",
    "similarity_components",
    "dominant_connection_type",
    "bundle_match_score",
    "bundle_match_scores",
    "refinement_score",
]


def url_overlap(later: Message, earlier: Message) -> float:
    """Eq. 2 — fraction of ``later``'s URLs shared with ``earlier``.

    ``U(t_i, t_j) = |url(t_i) ∩ url(t_j)| / |url(t_i)|`` with the incoming
    message in the numerator's perspective; 0.0 when it carries no URL.
    """
    if not later.urls:
        return 0.0
    return len(later.urls & earlier.urls) / len(later.urls)


def hashtag_overlap(later: Message, earlier: Message) -> float:
    """Eq. 3 — fraction of ``later``'s hashtags shared with ``earlier``."""
    if not later.hashtags:
        return 0.0
    return len(later.hashtags & earlier.hashtags) / len(later.hashtags)


def time_closeness(later: Message, earlier: Message, *,
                   scale: float = HOUR_SECONDS) -> float:
    """Eq. 4 — inverse time span, ``T = 1 / (|Δdate| + 1)``.

    The paper leaves the time unit implicit; we measure the span in hours
    (``scale``) so that messages a few hours apart still score visibly
    above zero while week-old ones vanish — matching the bundle time-span
    statistics of Fig. 6b.
    """
    span = abs(later.date - earlier.date) / scale
    return 1.0 / (span + 1.0)


def message_similarity(later: Message, earlier: Message,
                       config: IndexerConfig) -> float:
    """Eq. 5 — ``S = α·U + β·H + γ·T``, plus the RT bonus.

    An explicit re-share of ``earlier``'s author is the strongest
    provenance evidence (Table II lists RT first), so it contributes
    ``rt_weight`` on top of the lexical overlaps.
    """
    # Hot path (called per candidate per insertion): inline the overlap
    # fractions instead of delegating to url_overlap/hashtag_overlap.
    score = 0.0
    later_urls = later.urls
    if later_urls:
        score += (config.url_weight
                  * len(later_urls & earlier.urls) / len(later_urls))
    later_tags = later.hashtags
    if later_tags:
        score += (config.hashtag_weight
                  * len(later_tags & earlier.hashtags) / len(later_tags))
    span = abs(later.date - earlier.date) / HOUR_SECONDS
    score += config.time_weight / (span + 1.0)
    if earlier.user in later.rt_users:
        score += config.rt_weight
    return score


def similarity_components(
        later: Message, earlier: Message,
) -> tuple[float, float, float, bool]:
    """The raw, unweighted Eq. 2–4 inputs of :func:`message_similarity`.

    Returns ``(U, H, T, rt_hit)``.  The audit layer records these per
    allocation candidate so ``repro explain`` can show *which* indicant
    carried a placement; weighting them per the active config recovers
    the Eq. 5 score exactly.
    """
    return (
        url_overlap(later, earlier),
        hashtag_overlap(later, earlier),
        time_closeness(later, earlier),
        earlier.user in later.rt_users,
    )


def dominant_connection_type(later: Message, earlier: Message) -> ConnectionType:
    """The strongest Table II connection type holding between two messages.

    Order of precedence mirrors the table: RT > URL > hashtag > text.
    Falls back to TEXT when only weak evidence (time/keywords) linked them.
    """
    if earlier.user in later.rt_users:
        return ConnectionType.RT
    if later.urls & earlier.urls:
        return ConnectionType.URL
    if later.hashtags & earlier.hashtags:
        return ConnectionType.HASHTAG
    return ConnectionType.TEXT


def bundle_match_score(
    message: Message,
    *,
    shared_urls: int,
    shared_hashtags: int,
    shared_keywords: int,
    rt_hit: bool,
    bundle_last_date: float,
    config: IndexerConfig,
) -> float:
    """Eq. 1 — relevance of an incoming message to a candidate bundle.

    ``S(t, B) = α·|url(t)∩url(B)| + β·|tag(t)∩tag(B)| + γ·T(date) + …``
    where the trailing terms are the keyword overlap and the RT hit the
    paper's summary index also stores (Fig. 5).  The raw counts (not
    fractions) follow the equation as printed; the time term reuses Eq. 4's
    inverse-span shape so fresher bundles win ties, which is the stated
    intuition ("under similar overlapping conditions … a fresh bundle is
    more suitable").  The keyword count is capped at ``keyword_hit_cap``
    so the weakest indicant stays assistive-only (see
    :class:`~repro.core.config.IndexerConfig`).
    """
    span_hours = abs(message.date - bundle_last_date) / HOUR_SECONDS
    freshness = 1.0 / (span_hours + 1.0)
    score = (config.url_weight * shared_urls
             + config.hashtag_weight * shared_hashtags
             + config.keyword_weight * min(shared_keywords,
                                           config.keyword_hit_cap)
             + config.time_weight * freshness)
    if rt_hit:
        score += config.rt_weight
    return score


def bundle_match_scores(
    message_date: float,
    *,
    shared_urls: Any,
    shared_hashtags: Any,
    shared_keywords: Any,
    rt_hits: Any,
    bundle_last_dates: Any,
    config: IndexerConfig,
) -> Any:
    """Vectorised Eq. 1 over aligned per-candidate arrays (numpy).

    Element ``i`` equals ``bundle_match_score(...)`` for candidate ``i``
    *bit-for-bit*: the float64 expression tree mirrors the scalar
    function term by term (same left-associated additions, same
    ``min``-then-multiply shape, RT bonus added only where it applies
    via ``where`` so untouched lanes keep their exact bits).  That
    identity is what lets the audit log and the candidate tie-breaks
    stay byte-deterministic across the scalar and batched paths —
    asserted by the dict-vs-slab conformance matrix.

    Requires numpy; the engine falls back to the scalar
    :func:`bundle_match_score` loop when it is unavailable.
    """
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise RuntimeError("bundle_match_scores requires numpy")
    span_hours = _np.abs(message_date - bundle_last_dates) / HOUR_SECONDS
    freshness = 1.0 / (span_hours + 1.0)
    scores = (config.url_weight * shared_urls
              + config.hashtag_weight * shared_hashtags
              + config.keyword_weight * _np.minimum(shared_keywords,
                                                    config.keyword_hit_cap)
              + config.time_weight * freshness)
    return _np.where(rt_hits, scores + config.rt_weight, scores)


def refinement_score(bundle_last_date: float, bundle_size: int,
                     current_date: float, *,
                     scale: float = HOUR_SECONDS) -> float:
    """Eq. 6 — ``G(B) = (curr − date(B)) + 1/|B|``.

    Higher means *less* likely to receive future updates, hence evicted
    first.  Age is measured in hours (``scale``) so that the ``1/|B|``
    size term acts as the intra-hour tie-break the paper intends rather
    than being crushed by raw seconds.
    """
    if bundle_size <= 0:
        raise ValueError(f"bundle_size must be positive, got {bundle_size}")
    age = (current_date - bundle_last_date) / scale
    return age + 1.0 / bundle_size
