"""Provenance operators over bundles (the paper's future-work algebra).

The conclusion of the paper proposes investigating "provenance operators
built on these provenance bundle and indexing structure".  This module
provides the bundle-level algebra that complements the per-message
traversals of :mod:`repro.core.graph`:

* :func:`merge_bundles` — union two bundles into one forest, re-aligning
  the roots of the later bundle against the earlier one,
* :func:`split_bundle_at` — cut a bundle at a point in time into a
  "before" and an "after" bundle (edges across the cut become roots),
* :func:`slice_bundle` — the sub-bundle inside a time window,
* :func:`extract_cascade` — the sub-bundle reachable from one message,
* :func:`filter_bundle` — keep only messages matching a predicate while
  re-stitching edges through removed nodes (contraction),
* :func:`bundle_difference` — messages/edges present in one bundle but
  not another (checkpoint diffing).

All operators are pure: inputs are never mutated and results are fresh
:class:`~repro.core.bundle.Bundle` objects with the requested ids.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import Connection
from repro.core.errors import BundleError
from repro.core.graph import children_map
from repro.core.message import Message

__all__ = [
    "rebuild_bundle",
    "merge_bundles",
    "split_bundle_at",
    "slice_bundle",
    "extract_cascade",
    "filter_bundle",
    "bundle_difference",
    "BundleDiff",
]


def _copy_members(
    target: Bundle,
    source: Bundle,
    msg_ids: Iterable[int],
    *,
    keep_edges: bool = True,
) -> set[int]:
    """Copy members (and optionally their internal edges) into ``target``.

    Edges whose destination is not among the copied members are dropped,
    turning their sources into roots.  Returns the copied id set.
    """
    wanted = set(msg_ids)
    kept = [msg_id for msg_id in source.message_ids() if msg_id in wanted]
    kept_set = set(kept)
    edge_by_src = {e.src_id: e for e in source.edges()}
    for msg_id in kept:
        message = source.get(msg_id)
        assert message is not None
        target._register_member(message, source.keywords_of(msg_id))
        if not keep_edges:
            continue
        edge = edge_by_src.get(msg_id)
        if edge is not None and edge.dst_id in kept_set:
            target._edges[msg_id] = edge
    return kept_set


def rebuild_bundle(bundle_id: int, source: Bundle,
                   msg_ids: Iterable[int],
                   config: IndexerConfig | None = None) -> Bundle:
    """A fresh bundle holding ``msg_ids`` from ``source`` verbatim.

    Edges internal to the selection survive; edges pointing outside the
    selection are dropped (their sources become roots).
    """
    result = Bundle(bundle_id, config or source.config)
    _copy_members(result, source, set(msg_ids))
    return result


def merge_bundles(bundle_id: int, first: Bundle, second: Bundle,
                  config: IndexerConfig | None = None) -> Bundle:
    """Union two disjoint bundles, re-aligning the second's roots.

    Members and internal edges of both bundles are preserved; every root
    of ``second`` is then re-inserted through Algorithm 2 against the
    merged membership, so the result is a single connected story where
    the evidence supports it (and a forest where it does not).

    Raises :class:`BundleError` if the bundles share a message id.
    """
    overlap = set(first.message_ids()) & set(second.message_ids())
    if overlap:
        raise BundleError(
            f"cannot merge: bundles share messages {sorted(overlap)[:5]}")
    result = Bundle(bundle_id, config or first.config)
    _copy_members(result, first, set(first.message_ids()))
    _copy_members(result, second, set(second.message_ids()))

    # Re-align the second bundle's roots against the first's members.
    first_ids = set(first.message_ids())
    for msg_id in second.message_ids():
        if second.parent_of(msg_id) is not None:
            continue
        message = second.get(msg_id)
        assert message is not None
        keywords = second.keywords_of(msg_id)
        candidates = [result.get(other) for other in first_ids
                      if _shares_indicant(message, keywords, result, other)]
        best = _best_prior(message, [c for c in candidates if c], result)
        if best is not None and best.date <= message.date:
            from repro.core.scoring import (dominant_connection_type,
                                            message_similarity)
            score = message_similarity(message, best, result.config)
            result._edges[msg_id] = Connection(
                msg_id, best.msg_id,
                dominant_connection_type(message, best), score)
    return result


def _shares_indicant(message: Message, keywords: frozenset[str],
                     bundle: Bundle, other_id: int) -> bool:
    other = bundle.get(other_id)
    if other is None:
        return False
    return bool(message.urls & other.urls
                or message.hashtags & other.hashtags
                or other.user in message.rt_users
                or keywords & bundle.keywords_of(other_id))


def _best_prior(message: Message, candidates: "list[Message]",
                bundle: Bundle) -> Message | None:
    from repro.core.scoring import message_similarity

    best, best_key = None, None
    for prior in candidates:
        if prior.date > message.date:
            continue
        key = (message_similarity(message, prior, bundle.config),
               prior.date, -prior.msg_id)
        if best_key is None or key > best_key:
            best, best_key = prior, key
    return best


def split_bundle_at(source: Bundle, cut_date: float,
                    *, before_id: int, after_id: int) -> tuple[Bundle, Bundle]:
    """Cut a bundle into (messages before ``cut_date``, the rest).

    Edges crossing the cut are severed, so early messages of the "after"
    part become roots — exactly what re-running discovery on the two
    halves independently would produce.
    """
    before_ids = {msg_id for msg_id in source.message_ids()
                  if source.get(msg_id).date < cut_date}
    after_ids = set(source.message_ids()) - before_ids
    return (rebuild_bundle(before_id, source, before_ids),
            rebuild_bundle(after_id, source, after_ids))


def slice_bundle(source: Bundle, start: float, end: float,
                 *, bundle_id: int) -> Bundle:
    """The sub-bundle whose messages fall in ``[start, end)``."""
    if end < start:
        raise BundleError(f"invalid slice window [{start}, {end})")
    ids = {msg_id for msg_id in source.message_ids()
           if start <= source.get(msg_id).date < end}
    return rebuild_bundle(bundle_id, source, ids)


def extract_cascade(source: Bundle, msg_id: int,
                    *, bundle_id: int) -> Bundle:
    """The sub-bundle rooted at ``msg_id``: itself plus all descendants."""
    if msg_id not in source:
        raise BundleError(
            f"message {msg_id} not in bundle {source.bundle_id}")
    children = children_map(source)
    ids = {msg_id}
    frontier = list(children.get(msg_id, ()))
    while frontier:
        current = frontier.pop()
        ids.add(current)
        frontier.extend(children.get(current, ()))
    return rebuild_bundle(bundle_id, source, ids)


def filter_bundle(source: Bundle, predicate: Callable[[Message], bool],
                  *, bundle_id: int) -> Bundle:
    """Keep messages satisfying ``predicate``; contract removed nodes.

    An edge through a removed message is re-stitched to the nearest kept
    ancestor, so surviving cascade structure is preserved — e.g. dropping
    noise messages keeps the re-share chain connected.
    """
    kept = {msg_id for msg_id in source.message_ids()
            if predicate(source.get(msg_id))}
    result = Bundle(bundle_id, source.config)
    edge_by_src = {e.src_id: e for e in source.edges()}
    for msg_id in source.message_ids():
        if msg_id not in kept:
            continue
        message = source.get(msg_id)
        result._register_member(message, source.keywords_of(msg_id))
        # Walk up through removed ancestors to the nearest kept one.
        ancestor = source.parent_of(msg_id)
        while ancestor is not None and ancestor not in kept:
            ancestor = source.parent_of(ancestor)
        if ancestor is not None:
            original = edge_by_src[msg_id]
            result._edges[msg_id] = Connection(
                msg_id, ancestor, original.kind, original.score)
    return result


class BundleDiff:
    """Outcome of :func:`bundle_difference`."""

    __slots__ = ("added_messages", "added_edges", "removed_messages",
                 "removed_edges")

    def __init__(self, added_messages: set[int],
                 added_edges: set[tuple[int, int]],
                 removed_messages: set[int],
                 removed_edges: set[tuple[int, int]]) -> None:
        self.added_messages = added_messages
        self.added_edges = added_edges
        self.removed_messages = removed_messages
        self.removed_edges = removed_edges

    @property
    def unchanged(self) -> bool:
        """True when the two bundles are structurally identical."""
        return not (self.added_messages or self.added_edges
                    or self.removed_messages or self.removed_edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BundleDiff(+{len(self.added_messages)}m "
                f"+{len(self.added_edges)}e "
                f"-{len(self.removed_messages)}m "
                f"-{len(self.removed_edges)}e)")


def bundle_difference(new: Bundle, old: Bundle) -> BundleDiff:
    """Structural diff ``new − old``: what discovery added since ``old``.

    Used to diff the same logical bundle across checkpoints ("what did
    this story gain in the last hour?").
    """
    new_ids = set(new.message_ids())
    old_ids = set(old.message_ids())
    return BundleDiff(
        added_messages=new_ids - old_ids,
        added_edges=new.edge_pairs() - old.edge_pairs(),
        removed_messages=old_ids - new_ids,
        removed_edges=old.edge_pairs() - new.edge_pairs(),
    )
