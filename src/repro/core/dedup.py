"""Near-duplicate message detection (shingle Jaccard + MinHash).

Micro-blog streams are full of near-copies: bare retweets, copy-pasted
breaking news, spam templates.  The paper's quality discussion ("noise
exists in micro-blog services") motivates separating genuine development
from verbatim repetition.  This module provides:

* :func:`shingles` / :func:`jaccard` — exact word-shingle similarity,
* :class:`MinHasher` — fixed-permutation MinHash signatures for cheap
  approximate Jaccard,
* :class:`DuplicateDetector` — streaming near-duplicate lookup using an
  LSH band index over signatures.

Used by the quality layer to discount repetition, and usable upstream to
collapse duplicates before indexing.
"""

from __future__ import annotations

import hashlib
import struct
from collections import defaultdict

from repro.core.message import Message, strip_entities

__all__ = ["shingles", "jaccard", "MinHasher", "DuplicateDetector"]

_MERSENNE = (1 << 61) - 1


def shingles(text: str, width: int = 3) -> frozenset[str]:
    """Word ``width``-shingles of ``text`` (entities stripped, lowered).

    Texts shorter than ``width`` words yield a single shingle with all of
    their words, so very short messages still compare.
    """
    if width <= 0:
        raise ValueError(f"shingle width must be positive, got {width}")
    words = strip_entities(text).lower().split()
    if not words:
        return frozenset()
    if len(words) < width:
        return frozenset({" ".join(words)})
    return frozenset(
        " ".join(words[i:i + width])
        for i in range(len(words) - width + 1)
    )


def jaccard(first: frozenset[str], second: frozenset[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not first and not second:
        return 1.0
    if not first or not second:
        return 0.0
    return len(first & second) / len(first | second)


def _stable_hash(value: str) -> int:
    """64-bit stable hash (process-independent, unlike ``hash``)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


class MinHasher:
    """MinHash signatures with ``num_hashes`` fixed affine permutations.

    Permutation parameters are derived deterministically from the index,
    so signatures are reproducible across processes and sessions.
    """

    def __init__(self, num_hashes: int = 64) -> None:
        if num_hashes <= 0:
            raise ValueError(
                f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self._params = [
            (_stable_hash(f"a{i}") % _MERSENNE or 1,
             _stable_hash(f"b{i}") % _MERSENNE)
            for i in range(num_hashes)
        ]

    def signature(self, items: frozenset[str]) -> tuple[int, ...]:
        """The MinHash signature of a shingle set (empty set → all-max)."""
        if not items:
            return tuple([_MERSENNE] * self.num_hashes)
        hashed = [_stable_hash(item) for item in items]
        return tuple(
            min((a * h + b) % _MERSENNE for h in hashed)
            for a, b in self._params
        )

    @staticmethod
    def estimate(first: tuple[int, ...], second: tuple[int, ...]) -> float:
        """Estimated Jaccard from two signatures (agreement fraction)."""
        if len(first) != len(second):
            raise ValueError("signatures must have equal length")
        if not first:
            return 0.0
        agree = sum(1 for a, b in zip(first, second) if a == b)
        return agree / len(first)


class DuplicateDetector:
    """Streaming near-duplicate detection with banded LSH.

    ``bands × rows`` must equal the hasher's signature length.  A message
    is a *candidate* duplicate of a prior one when any band of its
    signature collides; candidates are confirmed against the exact
    shingle Jaccard threshold.
    """

    def __init__(self, *, threshold: float = 0.7, num_hashes: int = 64,
                 bands: int = 16, shingle_width: int = 3) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if num_hashes % bands != 0:
            raise ValueError(
                f"bands ({bands}) must divide num_hashes ({num_hashes})")
        self.threshold = threshold
        self.shingle_width = shingle_width
        self.hasher = MinHasher(num_hashes)
        self.rows = num_hashes // bands
        self.bands = bands
        self._band_index: list[dict[tuple[int, ...], list[int]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._shingles: dict[int, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self._shingles)

    def _bands_of(self, signature: tuple[int, ...]):
        for band in range(self.bands):
            start = band * self.rows
            yield band, signature[start:start + self.rows]

    def check_and_add(self, message: Message) -> int | None:
        """Register ``message``; return a prior near-duplicate id or None.

        The earliest confirmed duplicate is returned — pointing to the
        probable origin of the copied content.
        """
        grams = shingles(message.text, self.shingle_width)
        signature = self.hasher.signature(grams)
        candidates: set[int] = set()
        for band, key in self._bands_of(signature):
            candidates.update(self._band_index[band][key])
        best: int | None = None
        for candidate in sorted(candidates):
            if jaccard(grams, self._shingles[candidate]) >= self.threshold:
                best = candidate
                break
        for band, key in self._bands_of(signature):
            self._band_index[band][key].append(message.msg_id)
        self._shingles[message.msg_id] = grams
        return best

    def duplicates_of(self, message: Message) -> list[int]:
        """All registered near-duplicates of ``message`` (read-only)."""
        grams = shingles(message.text, self.shingle_width)
        signature = self.hasher.signature(grams)
        candidates: set[int] = set()
        for band, key in self._bands_of(signature):
            candidates.update(self._band_index[band][key])
        return sorted(
            candidate for candidate in candidates
            if candidate != message.msg_id
            and jaccard(grams, self._shingles[candidate]) >= self.threshold
        )
