"""Near-duplicate message detection (shingle Jaccard + MinHash).

Micro-blog streams are full of near-copies: bare retweets, copy-pasted
breaking news, spam templates.  The paper's quality discussion ("noise
exists in micro-blog services") motivates separating genuine development
from verbatim repetition.  This module provides:

* :func:`shingles` / :func:`jaccard` — exact word-shingle similarity,
* :class:`MinHasher` — fixed-permutation MinHash signatures for cheap
  approximate Jaccard,
* :class:`DuplicateDetector` — streaming near-duplicate lookup using an
  LSH band index over signatures.

Used by the quality layer to discount repetition, and usable upstream to
collapse duplicates before indexing.
"""

from __future__ import annotations

import functools
import hashlib
import struct
from collections import defaultdict

from repro.core.message import Message, strip_entities

try:  # Optional: vectorizes the signature hot path ~20x.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

__all__ = ["shingles", "jaccard", "MinHasher", "DuplicateDetector"]

_MASK64 = (1 << 64) - 1


@functools.lru_cache(maxsize=1 << 14)
def _cached_shingles(normalized: str, width: int) -> frozenset[str]:
    """Shingle a normalized text (see :func:`shingles` for the contract).

    Cached on the *stripped, lowered* text: a verbatim retweet
    normalizes to the same content words as its origin, so streaming
    dedup re-shingles each piece of copied content only once.
    """
    words = normalized.split()
    if not words:
        return frozenset()
    if len(words) < width:
        return frozenset({" ".join(words)})
    return frozenset(
        " ".join(words[i:i + width])
        for i in range(len(words) - width + 1)
    )


@functools.lru_cache(maxsize=1 << 14)
def _shingles_of_raw(text: str, width: int) -> frozenset[str]:
    """Front cache keyed on the *raw* text.

    Exact copies (spam floods, verbatim reposts) skip entity stripping
    entirely; prefixed copies ("RT @user: …") miss here but still land
    on the same :func:`_cached_shingles` entry after normalizing.
    """
    return _cached_shingles(strip_entities(text).lower(), width)


def shingles(text: str, width: int = 3) -> frozenset[str]:
    """Word ``width``-shingles of ``text`` (entities stripped, lowered).

    Texts shorter than ``width`` words yield a single shingle with all of
    their words, so very short messages still compare.
    """
    if width <= 0:
        raise ValueError(f"shingle width must be positive, got {width}")
    return _shingles_of_raw(text, width)


def jaccard(first: frozenset[str], second: frozenset[str]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not first and not second:
        return 1.0
    if not first or not second:
        return 0.0
    return len(first & second) / len(first | second)


@functools.lru_cache(maxsize=1 << 16)
def _stable_hash(value: str) -> int:
    """64-bit stable hash (process-independent, unlike ``hash``)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


class MinHasher:
    """MinHash signatures with ``num_hashes`` fixed affine permutations.

    Each permutation is ``h -> (a*h + b) mod 2**64`` with an odd ``a`` —
    a bijection on the 64-bit hash space whose wraparound is native in
    both numpy uint64 and masked Python ints, so the vectorized and
    fallback paths produce identical signatures.  Parameters are derived
    deterministically from the index, so signatures are reproducible
    across processes and sessions.
    """

    def __init__(self, num_hashes: int = 64) -> None:
        if num_hashes <= 0:
            raise ValueError(
                f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self._params = [
            (_stable_hash(f"a{i}") | 1, _stable_hash(f"b{i}"))
            for i in range(num_hashes)
        ]
        # Packed-signature memo: verbatim copies (the streaming-dedup
        # common case) normalize to the identical shingle set — and
        # _cached_shingles returns the *same* frozenset instance for
        # them, so the lookup is near-free.
        self._packed: "dict[frozenset[str], bytes]" = {}
        if _np is not None:
            self._a = _np.array([a for a, _ in self._params],
                                dtype=_np.uint64)[:, None]
            self._b = _np.array([b for _, b in self._params],
                                dtype=_np.uint64)[:, None]

    def signature(self, items: frozenset[str]) -> tuple[int, ...]:
        """The MinHash signature of a shingle set (empty set → all-max)."""
        if not items:
            return tuple([_MASK64] * self.num_hashes)
        hashed = [_stable_hash(item) for item in items]
        if _np is not None:
            mins = (self._a * _np.array(hashed, dtype=_np.uint64)
                    + self._b).min(axis=1)
            return tuple(map(int, mins))
        return tuple(
            min((a * h + b) & _MASK64 for h in hashed)
            for a, b in self._params
        )

    def signature_bytes(self, items: frozenset[str]) -> bytes:
        """The signature packed as little-endian u64 — cheap band keys.

        Avoids materializing ``num_hashes`` Python ints per message on
        the streaming dedup hot path; slices of the packed form serve as
        LSH band keys directly.
        """
        if not items:
            return b"\xff" * (8 * self.num_hashes)
        packed = self._packed.get(items)
        if packed is not None:
            return packed
        hashed = [_stable_hash(item) for item in items]
        if _np is not None:
            scaled = self._a * _np.fromiter(hashed, dtype=_np.uint64,
                                            count=len(hashed))
            scaled += self._b
            packed = scaled.min(axis=1).astype("<u8",
                                               copy=False).tobytes()
        else:
            packed = struct.pack(
                f"<{self.num_hashes}Q",
                *(min((a * h + b) & _MASK64 for h in hashed)
                  for a, b in self._params))
        if len(self._packed) >= 1 << 14:
            self._packed.clear()
        self._packed[items] = packed
        return packed

    @staticmethod
    def estimate(first: tuple[int, ...], second: tuple[int, ...]) -> float:
        """Estimated Jaccard from two signatures (agreement fraction)."""
        if len(first) != len(second):
            raise ValueError("signatures must have equal length")
        if not first:
            return 0.0
        agree = sum(1 for a, b in zip(first, second) if a == b)
        return agree / len(first)


class DuplicateDetector:
    """Streaming near-duplicate detection with banded LSH.

    ``bands × rows`` must equal the hasher's signature length.  A message
    is a *candidate* duplicate of a prior one when any band of its
    signature collides; candidates are confirmed against the exact
    shingle Jaccard threshold.
    """

    def __init__(self, *, threshold: float = 0.7, num_hashes: int = 64,
                 bands: int = 16, shingle_width: int = 3) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if num_hashes % bands != 0:
            raise ValueError(
                f"bands ({bands}) must divide num_hashes ({num_hashes})")
        self.threshold = threshold
        self.shingle_width = shingle_width
        self.hasher = MinHasher(num_hashes)
        self.rows = num_hashes // bands
        self.bands = bands
        self._band_bytes = 8 * self.rows
        self._band_index: list[dict[bytes, list[int]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._shingles: dict[int, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self._shingles)

    def _bands_of(self, signature: bytes):
        width = self._band_bytes
        for band in range(self.bands):
            start = band * width
            yield band, signature[start:start + width]

    def check_and_add(self, message: Message) -> int | None:
        """Register ``message``; return a prior near-duplicate id or None.

        The earliest confirmed duplicate is returned — pointing to the
        probable origin of the copied content.
        """
        grams = shingles(message.text, self.shingle_width)
        signature = self.hasher.signature_bytes(grams)
        candidates: set[int] = set()
        width = self._band_bytes
        index = self._band_index
        msg_id = message.msg_id
        start = 0
        for band in range(self.bands):
            bucket = index[band][signature[start:start + width]]
            start += width
            if bucket:
                candidates.update(bucket)
            bucket.append(msg_id)
        best: int | None = None
        if candidates:
            threshold = self.threshold
            # The earliest candidate is usually the origin of the copied
            # content; confirming it first skips the sort on the common
            # path.
            earliest = min(candidates)
            if jaccard(grams, self._shingles[earliest]) >= threshold:
                best = earliest
            else:
                candidates.discard(earliest)
                for candidate in sorted(candidates):
                    if jaccard(grams,
                               self._shingles[candidate]) >= threshold:
                        best = candidate
                        break
        self._shingles[message.msg_id] = grams
        return best

    def duplicates_of(self, message: Message) -> list[int]:
        """All registered near-duplicates of ``message`` (read-only)."""
        grams = shingles(message.text, self.shingle_width)
        signature = self.hasher.signature_bytes(grams)
        candidates: set[int] = set()
        for band, key in self._bands_of(signature):
            candidates.update(self._band_index[band].get(key, ()))
        return sorted(
            candidate for candidate in candidates
            if candidate != message.msg_id
            and jaccard(grams, self._shingles[candidate]) >= self.threshold
        )
