"""Thread-safe facade over the provenance indexer.

The engine itself is single-threaded by design (as the paper's is); real
deployments, however, ingest from several crawler threads and answer
queries concurrently.  :class:`ConcurrentIndexer` provides the standard
coarse-grained answer: one reentrant lock around every engine operation,
with batching so lock traffic amortises, and a consistent point-in-time
query surface.

Under CPython's GIL a single coarse lock costs almost nothing relative
to the pure-Python scoring work, so this is the right granularity —
a finer scheme would buy no parallelism and plenty of bugs.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, TypeVar

from repro.api import deprecated
from repro.core.engine import (IngestResult, MemorySnapshot,
                               ProvenanceIndexer)
from repro.core.message import Message
from repro.query.bundle_search import BundleHit, BundleSearchEngine

__all__ = ["ConcurrentIndexer"]

T = TypeVar("T")


class ConcurrentIndexer:
    """Lock-guarded ingest/search facade over one engine.

    All reads and writes serialise on one ``RLock``; ``with_engine`` runs
    an arbitrary callable under the same lock for compound operations
    (e.g. snapshotting) without exposing unlocked state.
    """

    def __init__(self, indexer: ProvenanceIndexer | None = None) -> None:
        self._indexer = indexer or ProvenanceIndexer()
        self._search = BundleSearchEngine(self._indexer)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def ingest(self, message: Message) -> IngestResult:
        """Thread-safe single-message ingest."""
        with self._lock:
            return self._indexer.ingest(message)

    def ingest_batch(self, messages: Iterable[Message], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Ingest a batch under one lock acquisition.

        Batching is how multi-producer setups should feed the engine:
        the lock is taken once per batch, not once per message.  Returns
        the per-message results in input order, or — with
        ``count_only=True``, the hot path — only their count (no result
        list is accumulated).
        """
        with self._lock:
            return self._indexer.ingest_batch(messages,
                                              count_only=count_only)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def search(self, raw_query: str, k: int = 10) -> list[BundleHit]:
        """Thread-safe Eq. 7 search (point-in-time consistent)."""
        with self._lock:
            return self._search.search(raw_query, k=k)

    def snapshot(self) -> MemorySnapshot:
        """Thread-safe memory accounting."""
        with self._lock:
            return self._indexer.snapshot()

    @deprecated("snapshot()")
    def memory_snapshot(self) -> MemorySnapshot:
        """Deprecated spelling of :meth:`snapshot`."""
        return self.snapshot()

    def stats(self) -> "dict[str, int]":
        """Thread-safe unified counters (:class:`repro.api.Indexer`)."""
        with self._lock:
            return self._indexer.stats()

    @deprecated('stats()["messages_ingested"]')
    def messages_ingested(self) -> int:
        """Deprecated: read ``stats()["messages_ingested"]`` instead."""
        with self._lock:
            return self._indexer.stats.messages_ingested

    def edge_pairs(self) -> set[tuple[int, int]]:
        """Thread-safe copy of the discovered edge set."""
        with self._lock:
            return self._indexer.edge_pairs()

    def close(self) -> None:
        """Close the wrapped engine; idempotent."""
        with self._lock:
            self._indexer.close()

    def __enter__(self) -> "ConcurrentIndexer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Escape hatch
    # ------------------------------------------------------------------

    def with_engine(self, action: Callable[[ProvenanceIndexer], T]) -> T:
        """Run ``action(engine)`` while holding the lock.

        For compound operations (snapshot, validation, bulk export) that
        must observe a consistent engine.  The engine must not escape the
        callable.
        """
        with self._lock:
            return action(self._indexer)
