"""Clustering-quality metrics for bundles against event labels.

The paper evaluates provenance discovery by edge-set agreement
(Section VI-B); the synthetic stream's ground-truth ``event_id`` labels
additionally allow evaluating bundling as a *clustering* of messages:

* :func:`pairwise_scores` — pairwise precision / recall / F1: of all
  same-event message pairs, how many share a bundle, and vice versa,
* :func:`bcubed_scores` — B-cubed precision / recall (per-message
  averages; robust to cluster-size skew),
* :func:`event_fragmentation` — over how many bundles each event's
  messages are scattered (1.0 = every event in one bundle).

Noise messages (``event_id is None``) are excluded: the metrics grade
how well *events* are reassembled, not whether noise is isolated.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.core.bundle import Bundle

__all__ = [
    "ClusteringScores",
    "pairwise_scores",
    "bcubed_scores",
    "event_fragmentation",
]


@dataclass(frozen=True, slots=True)
class ClusteringScores:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return (2 * self.precision * self.recall
                / (self.precision + self.recall))


def _labelled_assignment(
    bundles: Iterable[Bundle],
) -> list[tuple[int, int]]:
    """``[(bundle_id, event_id), ...]`` for every labelled message."""
    assignment = []
    for bundle in bundles:
        for message in bundle:
            if message.event_id is not None:
                assignment.append((bundle.bundle_id, message.event_id))
    return assignment


def _pairs(count: int) -> int:
    return count * (count - 1) // 2


def pairwise_scores(bundles: Iterable[Bundle]) -> ClusteringScores:
    """Pairwise clustering precision/recall over labelled messages.

    *Precision*: of message pairs sharing a bundle, the fraction sharing
    an event.  *Recall*: of pairs sharing an event, the fraction sharing
    a bundle.  Computed from contingency counts, never enumerating pairs.
    """
    assignment = _labelled_assignment(bundles)
    if not assignment:
        return ClusteringScores(1.0, 1.0)

    cluster_sizes: Counter[int] = Counter()
    event_sizes: Counter[int] = Counter()
    cell_sizes: Counter[tuple[int, int]] = Counter()
    for bundle_id, event_id in assignment:
        cluster_sizes[bundle_id] += 1
        event_sizes[event_id] += 1
        cell_sizes[(bundle_id, event_id)] += 1

    same_both = sum(_pairs(count) for count in cell_sizes.values())
    same_cluster = sum(_pairs(count) for count in cluster_sizes.values())
    same_event = sum(_pairs(count) for count in event_sizes.values())
    precision = same_both / same_cluster if same_cluster else 1.0
    recall = same_both / same_event if same_event else 1.0
    return ClusteringScores(precision, recall)


def bcubed_scores(bundles: Iterable[Bundle]) -> ClusteringScores:
    """B-cubed precision/recall over labelled messages.

    Per message: precision = fraction of its bundle-mates (incl. itself)
    sharing its event; recall = fraction of its event-mates sharing its
    bundle; both averaged over messages.
    """
    assignment = _labelled_assignment(bundles)
    if not assignment:
        return ClusteringScores(1.0, 1.0)

    cluster_sizes: Counter[int] = Counter()
    event_sizes: Counter[int] = Counter()
    cell_sizes: Counter[tuple[int, int]] = Counter()
    for bundle_id, event_id in assignment:
        cluster_sizes[bundle_id] += 1
        event_sizes[event_id] += 1
        cell_sizes[(bundle_id, event_id)] += 1

    precision_total = 0.0
    recall_total = 0.0
    for (bundle_id, event_id), cell in cell_sizes.items():
        # Each of the `cell` messages contributes cell/cluster_size
        # precision and cell/event_size recall.
        precision_total += cell * (cell / cluster_sizes[bundle_id])
        recall_total += cell * (cell / event_sizes[event_id])
    n = len(assignment)
    return ClusteringScores(precision_total / n, recall_total / n)


def event_fragmentation(bundles: Iterable[Bundle]) -> float:
    """Mean number of bundles each event is scattered across (≥ 1.0).

    1.0 means perfect reassembly; large values mean the indexer split
    events (e.g. by an over-aggressive bundle-size limit — the mechanism
    behind Fig. 8's bundle-limit accuracy gap).
    """
    bundles_per_event: dict[int, set[int]] = defaultdict(set)
    for bundle in bundles:
        for message in bundle:
            if message.event_id is not None:
                bundles_per_event[message.event_id].add(bundle.bundle_id)
    if not bundles_per_event:
        return 1.0
    return (sum(len(ids) for ids in bundles_per_event.values())
            / len(bundles_per_event))
