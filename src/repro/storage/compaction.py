"""Segment compaction for the bundle store.

A bundle can be appended more than once (evict → reload → evict), so
segments accumulate superseded records.  Compaction rewrites the store
keeping only the latest record per bundle id, reclaiming the dead bytes.
The rewrite goes into a sibling temp directory and is swapped in with
directory renames, so a crash mid-compaction leaves the original store
intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import StorageError
from repro.storage.bundle_store import BundleStore

__all__ = ["CompactionReport", "compact_store", "dead_bytes_fraction"]


@dataclass(frozen=True, slots=True)
class CompactionReport:
    """Outcome of one compaction run."""

    bundles_kept: int
    records_dropped: int
    bytes_before: int
    bytes_after: int

    @property
    def bytes_reclaimed(self) -> int:
        """Disk space recovered."""
        return max(0, self.bytes_before - self.bytes_after)


def dead_bytes_fraction(store: BundleStore) -> float:
    """Estimated fraction of superseded records in the store.

    Record-count based (cheap); exact byte accounting would require a
    full scan, which compaction does anyway.
    """
    total = store.append_count
    if total == 0:
        return 0.0
    return 1.0 - len(store) / total


def compact_store(store: BundleStore) -> tuple[BundleStore, CompactionReport]:
    """Rewrite ``store`` keeping only the latest record per bundle.

    Returns the reopened (compacted) store and a report.  The original
    directory path is preserved; the caller must drop references to the
    old :class:`BundleStore` object and use the returned one.
    """
    directory = store.directory
    bytes_before = store.total_bytes()
    records_before = store.append_count

    fresh_dir = directory.with_name(directory.name + ".compact")
    backup_dir = directory.with_name(directory.name + ".old")
    if fresh_dir.exists() or backup_dir.exists():
        raise StorageError(
            f"leftover compaction directories next to {directory}; "
            "remove them before compacting")

    fresh = BundleStore(fresh_dir, max_segment_bytes=store.max_segment_bytes,
                        config=store.config)
    kept = 0
    for bundle in store.iter_bundles():
        fresh.append(bundle)
        kept += 1

    # Swap directories: original -> .old, compacted -> original.
    Path(directory).rename(backup_dir)
    Path(fresh_dir).rename(directory)
    _remove_tree(backup_dir)

    compacted = BundleStore(directory,
                            max_segment_bytes=store.max_segment_bytes,
                            config=store.config)
    report = CompactionReport(
        bundles_kept=kept,
        records_dropped=records_before - kept,
        bytes_before=bytes_before,
        bytes_after=compacted.total_bytes(),
    )
    return compacted, report


def _remove_tree(path: Path) -> None:
    for child in path.iterdir():
        child.unlink()
    path.rmdir()
