"""Whole-indexer snapshot and restore (an extension beyond the paper).

A snapshot freezes the full in-memory state of a
:class:`~repro.core.engine.ProvenanceIndexer` — pooled bundles, the
simulated clock, counters and the edge ledger — into one JSON file, so a
long replay can be paused and resumed, or an indexed stream shipped to
another process.  The summary index is *not* stored: it is derivable, and
rebuilding it from the pooled bundles on restore keeps the format small
and forward-compatible.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.core.errors import StorageError
from repro.reliability.fsio import filesystem
from repro.storage.serializer import bundle_from_dict, bundle_to_dict

__all__ = ["save_snapshot", "load_snapshot", "load_snapshot_with_meta"]

_FORMAT_VERSION = 1


def save_snapshot(indexer: ProvenanceIndexer,
                  path: "str | os.PathLike[str]", *,
                  applied_seq: "int | None" = None) -> int:
    """Write the indexer's in-memory state to ``path``.

    Returns the number of bundles captured.  The write is atomic
    (temp file + fsync + rename).  ``applied_seq`` lets the WAL layer
    embed the last journal sequence reflected in this state, atomically
    with the state itself — the key to surviving a crash between the
    snapshot rename and the sidecar write.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    bundles = [bundle_to_dict(bundle) for bundle in indexer.pool]
    state = {
        "v": _FORMAT_VERSION,
        "config": _config_to_dict(indexer.config),
        "current_date": indexer.current_date,
        "next_bundle_id": indexer.pool._next_bundle_id,
        "edges": sorted(indexer.edge_pairs()),
        "stats": {
            "messages_ingested": indexer.stats.messages_ingested,
            "bundles_created": indexer.stats.bundles_created,
            "bundles_matched": indexer.stats.bundles_matched,
            "edges_created": indexer.stats.edges_created,
            "refinements": indexer.stats.refinements,
            "bundles_closed": indexer.stats.bundles_closed,
        },
        "bundles": bundles,
    }
    if applied_seq is not None:
        state["applied_seq"] = applied_seq
    tmp = target.with_suffix(target.suffix + ".tmp")
    with filesystem().open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"), sort_keys=True)
        filesystem().fsync(handle)
    filesystem().replace(tmp, target)
    return len(bundles)


def load_snapshot(path: "str | os.PathLike[str]") -> ProvenanceIndexer:
    """Reconstruct an indexer from :func:`save_snapshot` output.

    The summary index is rebuilt from the restored bundles, so matching
    behaviour after restore is identical to before the snapshot.
    """
    indexer, _ = load_snapshot_with_meta(path)
    return indexer


def load_snapshot_with_meta(
    path: "str | os.PathLike[str]",
) -> "tuple[ProvenanceIndexer, dict[str, object]]":
    """Like :func:`load_snapshot`, also returning format metadata.

    The metadata dict currently carries ``applied_seq`` (the embedded WAL
    high-water mark, ``None`` on snapshots from before it existed).
    """
    source = Path(path)
    try:
        with source.open("r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read snapshot {source}: {exc}") from exc
    if not isinstance(state, dict) or state.get("v") != _FORMAT_VERSION:
        raise StorageError(f"{source}: unsupported snapshot format")

    config = _config_from_dict(state.get("config", {}))
    indexer = ProvenanceIndexer(config)
    indexer.current_date = float(state.get("current_date", 0.0))
    for pair in state.get("edges", ()):
        indexer._edge_ledger.add((int(pair[0]), int(pair[1])))
    stats = state.get("stats", {})
    for name in ("messages_ingested", "bundles_created", "bundles_matched",
                 "edges_created", "refinements", "bundles_closed"):
        setattr(indexer.stats, name, int(stats.get(name, 0)))

    for record in state.get("bundles", ()):
        bundle = bundle_from_dict(record, config)
        indexer.pool._bundles[bundle.bundle_id] = bundle
        for msg_id in bundle.message_ids():
            message = bundle.get(msg_id)
            assert message is not None
            indexer.summary_index.add_message(
                bundle.bundle_id, message, bundle.keywords_of(msg_id))
    indexer.pool._next_bundle_id = int(
        state.get("next_bundle_id",
                  max((b.bundle_id for b in indexer.pool), default=-1) + 1))
    meta: dict[str, object] = {"applied_seq": state.get("applied_seq")}
    return indexer, meta


def _config_to_dict(config: IndexerConfig) -> dict[str, object]:
    return {
        "url_weight": config.url_weight,
        "hashtag_weight": config.hashtag_weight,
        "time_weight": config.time_weight,
        "keyword_weight": config.keyword_weight,
        "rt_weight": config.rt_weight,
        "min_match_score": config.min_match_score,
        "max_pool_size": config.max_pool_size,
        "refine_trigger": config.refine_trigger,
        "refine_age": config.refine_age,
        "refine_tiny_size": config.refine_tiny_size,
        "refine_target_fraction": config.refine_target_fraction,
        "max_bundle_size": config.max_bundle_size,
        "max_candidates": config.max_candidates,
        "max_keywords": config.max_keywords,
        "keyword_hit_cap": config.keyword_hit_cap,
        "alloc_window": config.alloc_window,
        "refine_policy": config.refine_policy,
    }


def _config_from_dict(record: dict[str, object]) -> IndexerConfig:
    try:
        return IndexerConfig(**record)  # type: ignore[arg-type]
    except TypeError as exc:
        raise StorageError(f"snapshot config mismatch: {exc}") from exc
