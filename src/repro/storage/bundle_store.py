"""Append-only on-disk bundle store (the back-end of Fig. 4).

Layout: a directory of segment files ``segment-00000.log``, each holding
newline-delimited records ``<crc32:8 hex> <json>``.  Appends go to the
active segment, which rotates at ``max_segment_bytes``.  An in-memory
offset index (``bundle_id → (segment, byte offset)``) enables random
reads; it is rebuilt by scanning segments on open, so the store needs no
separate manifest and tolerates being copied around.

A bundle id may be appended more than once (a bundle can be evicted,
reloaded and evicted again); the offset index keeps the *latest* record,
which is the only one readers see.
"""

from __future__ import annotations

import os
import warnings
import zlib
from pathlib import Path
from typing import Iterator

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.errors import (BundleNotFoundError, CorruptSegmentError,
                               StorageError)
from repro.obs.registry import MetricsRegistry
from repro.reliability.fsio import filesystem
from repro.storage.serializer import bundle_from_json, bundle_to_json

__all__ = ["BundleStore"]

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".log"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"


class BundleStore:
    """Durable sink for evicted/closed bundles with random read-back.

    Satisfies the :class:`~repro.core.pool.BundleSink` protocol, so it can
    be handed straight to :class:`~repro.core.engine.ProvenanceIndexer`.

    Parameters
    ----------
    directory:
        Store root; created if missing.
    max_segment_bytes:
        Rotation threshold for the active segment.
    config:
        Config attached to bundles reconstructed by :meth:`load`.
    tolerant:
        When true, a corrupt record found while scanning on open is
        *skipped* (counted in :attr:`corrupt_records_skipped` and
        reported via :mod:`warnings`) instead of aborting the open with
        :class:`CorruptSegmentError`.  The default stays strict — silent
        data loss must be an explicit operator choice (or use
        ``repro doctor --repair``).
    """

    def __init__(self, directory: "str | os.PathLike[str]", *,
                 max_segment_bytes: int = 8 * 1024 * 1024,
                 config: IndexerConfig | None = None,
                 tolerant: bool = False) -> None:
        if max_segment_bytes <= 0:
            raise StorageError(
                f"max_segment_bytes must be positive, got {max_segment_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        self.config = config
        self.tolerant = tolerant
        self._offsets: dict[int, tuple[int, int]] = {}
        self._segments: list[int] = []
        self._appends = 0
        self._skipped_files = 0
        self._corrupt_skipped = 0
        self._recover()
        self._active = self._segments[-1] if self._segments else 0
        if not self._segments:
            self._segments.append(0)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild the offset index by scanning all segments in order."""
        names = sorted(
            p.name for p in self.directory.iterdir()
            if p.name.startswith(_SEGMENT_PREFIX)
            and p.name.endswith(_SEGMENT_SUFFIX)
        )
        for name in names:
            try:
                index = int(name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)])
            except ValueError:
                # A file wearing the segment naming but with an unparsable
                # index is not ours to read — but skipping it silently
                # would hide data loss from a misrenamed segment.
                self._skipped_files += 1
                warnings.warn(
                    f"bundle store {self.directory}: ignoring "
                    f"unparsable segment name {name!r}",
                    RuntimeWarning, stacklevel=3)
                continue
            self._segments.append(index)
            self._scan_segment(index)

    def _scan_segment(self, index: int) -> None:
        path = self._segment_path(index)
        offset = 0
        with path.open("rb") as handle:
            for line in handle:
                record = line.rstrip(b"\n")
                if record:
                    try:
                        bundle_id = self._validate_record(
                            record, path, offset)
                    except CorruptSegmentError:
                        if not self.tolerant:
                            raise
                        self._corrupt_skipped += 1
                        warnings.warn(
                            f"bundle store {self.directory}: skipping "
                            f"corrupt record in {path.name} @{offset} "
                            f"(total skipped: {self._corrupt_skipped})",
                            RuntimeWarning, stacklevel=3)
                    else:
                        self._offsets[bundle_id] = (index, offset)
                        self._appends += 1
                offset += len(line)

    def _validate_record(self, record: bytes, path: Path,
                         offset: int) -> int:
        """Check the CRC and pull the bundle id without full parsing."""
        if len(record) < 10 or record[8:9] != b" ":
            raise CorruptSegmentError(
                f"{path} @{offset}: record too short or missing separator")
        stated = record[:8].decode("ascii", errors="replace")
        payload = record[9:]
        actual = f"{zlib.crc32(payload) & 0xFFFFFFFF:08x}"
        if stated != actual:
            raise CorruptSegmentError(
                f"{path} @{offset}: CRC mismatch ({stated} != {actual})")
        # Cheap id pull: records are compact JSON with sorted keys, so the
        # id appears as "id":<n>.  Fall back to full parse if not found.
        marker = payload.find(b'"id":')
        if marker >= 0:
            end = marker + 5
            digits = []
            while end < len(payload) and payload[end:end + 1].isdigit():
                digits.append(payload[end:end + 1])
                end += 1
            if digits:
                return int(b"".join(digits))
        bundle = bundle_from_json(payload.decode("utf-8"), self.config)
        return bundle.bundle_id

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._offsets)

    def __contains__(self, bundle_id: int) -> bool:
        return bundle_id in self._offsets

    @property
    def append_count(self) -> int:
        """Total records ever appended (re-appends included)."""
        return self._appends

    @property
    def corrupt_records_skipped(self) -> int:
        """Corrupt records skipped by a tolerant open (operator-visible)."""
        return self._corrupt_skipped

    @property
    def skipped_files(self) -> int:
        """Segment-named files ignored on open for unparsable indices."""
        return self._skipped_files

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Export the store's spill counters (callback-backed views)."""
        registry.counter("repro_store_appends_total",
                         help="Bundles spilled to the on-disk store",
                         callback=lambda: self._appends)
        registry.gauge("repro_store_segments",
                       help="Segment files in the bundle store",
                       callback=self.segment_count)
        registry.gauge("repro_store_bytes", unit="bytes",
                       help="On-disk footprint of the bundle store",
                       callback=self.total_bytes)

    def bundle_ids(self) -> list[int]:
        """All stored bundle ids (latest-record view), ascending."""
        return sorted(self._offsets)

    def segment_count(self) -> int:
        """Number of segment files."""
        return len(self._segments)

    def total_bytes(self) -> int:
        """Bytes on disk across all segments."""
        return sum(self._segment_path(i).stat().st_size
                   for i in self._segments
                   if self._segment_path(i).exists())

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def append(self, bundle: Bundle) -> None:
        """Persist one bundle (BundleSink protocol)."""
        payload = bundle_to_json(bundle).encode("utf-8")
        crc = f"{zlib.crc32(payload) & 0xFFFFFFFF:08x}".encode("ascii")
        record = crc + b" " + payload + b"\n"
        path = self._segment_path(self._active)
        offset = path.stat().st_size if path.exists() else 0
        if offset > 0 and offset + len(record) > self.max_segment_bytes:
            self._active += 1
            self._segments.append(self._active)
            path = self._segment_path(self._active)
            offset = 0
        with filesystem().open(path, "ab") as handle:
            handle.write(record)
        self._offsets[bundle.bundle_id] = (self._active, offset)
        self._appends += 1

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def load(self, bundle_id: int) -> Bundle:
        """Read one bundle back (its latest stored record)."""
        location = self._offsets.get(bundle_id)
        if location is None:
            raise BundleNotFoundError(
                f"bundle {bundle_id} is not in the store")
        segment, offset = location
        path = self._segment_path(segment)
        with path.open("rb") as handle:
            handle.seek(offset)
            line = handle.readline().rstrip(b"\n")
        self._validate_record(line, path, offset)
        return bundle_from_json(line[9:].decode("utf-8"), self.config)

    def iter_bundles(self) -> Iterator[Bundle]:
        """Iterate all stored bundles (latest records), id-ascending."""
        for bundle_id in self.bundle_ids():
            yield self.load(bundle_id)

    def _segment_path(self, index: int) -> Path:
        return self.directory / _segment_name(index)
