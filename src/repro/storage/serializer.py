"""Bundle and message (de)serialization.

Bundles round-trip through plain dicts (JSON-compatible) so the on-disk
store and the snapshot module share one format.  Reconstruction rebuilds
the bundle *verbatim* — member order, edges, keyword assignments and
summary counters — rather than re-running Algorithm 2, so a reloaded
bundle is bit-identical to the evicted one.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.connection import Connection, ConnectionType
from repro.core.errors import StorageError
from repro.core.message import Message

__all__ = [
    "message_to_dict",
    "message_from_dict",
    "bundle_to_dict",
    "bundle_from_dict",
    "bundle_to_json",
    "bundle_from_json",
]

_FORMAT_VERSION = 1


def message_to_dict(message: Message) -> dict[str, Any]:
    """Plain-dict form of a message (hashtags/urls as sorted lists)."""
    record: dict[str, Any] = {
        "id": message.msg_id,
        "user": message.user,
        "date": message.date,
        "text": message.text,
        "tags": sorted(message.hashtags),
        "urls": sorted(message.urls),
        "rt": list(message.rt_users),
    }
    if message.event_id is not None:
        record["event"] = message.event_id
    if message.parent_id is not None:
        record["parent"] = message.parent_id
    return record


def message_from_dict(record: Mapping[str, Any]) -> Message:
    """Rebuild a message from :func:`message_to_dict` output."""
    try:
        return Message(
            msg_id=int(record["id"]),
            user=str(record["user"]),
            date=float(record["date"]),
            text=str(record["text"]),
            hashtags=frozenset(record.get("tags", ())),
            urls=frozenset(record.get("urls", ())),
            rt_users=tuple(record.get("rt", ())),
            event_id=record.get("event"),
            parent_id=record.get("parent"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed message record: {exc}") from exc


def bundle_to_dict(bundle: Bundle) -> dict[str, Any]:
    """Plain-dict form of a bundle (messages in arrival order)."""
    return {
        "v": _FORMAT_VERSION,
        "id": bundle.bundle_id,
        "closed": bundle.closed,
        "messages": [message_to_dict(m) for m in bundle.messages()],
        "keywords": {
            str(msg_id): sorted(bundle.keywords_of(msg_id))
            for msg_id in bundle.message_ids()
            if bundle.keywords_of(msg_id)
        },
        "edges": [
            {"src": e.src_id, "dst": e.dst_id, "kind": e.kind.value,
             "score": e.score}
            for e in bundle.edges()
        ],
        # Arrival floor, not derivable from member dates: a late
        # (out-of-order) insert raises last_update to the engine's
        # current date, and _register_member would otherwise recompute
        # the stale member maximum on restore — diverging crash
        # recovery from the uninterrupted run.
        "last_update": bundle.last_update,
    }


def bundle_from_dict(record: Mapping[str, Any],
                     config: IndexerConfig | None = None) -> Bundle:
    """Rebuild a bundle verbatim from :func:`bundle_to_dict` output."""
    try:
        version = record.get("v", _FORMAT_VERSION)
        if version != _FORMAT_VERSION:
            raise StorageError(f"unsupported bundle format version {version}")
        bundle = Bundle(int(record["id"]), config)
        keywords = {
            int(msg_id): frozenset(words)
            for msg_id, words in record.get("keywords", {}).items()
        }
        edges = {
            int(edge["src"]): Connection(
                src_id=int(edge["src"]),
                dst_id=int(edge["dst"]),
                kind=ConnectionType(edge["kind"]),
                score=float(edge["score"]),
            )
            for edge in record.get("edges", ())
        }
        for message_record in record["messages"]:
            message = message_from_dict(message_record)
            _restore_member(bundle, message,
                            keywords.get(message.msg_id, frozenset()),
                            edges.get(message.msg_id))
        if "last_update" in record:  # absent in pre-guard records
            bundle.last_update = max(bundle.last_update,
                                     float(record["last_update"]))
        if bool(record.get("closed", False)):
            bundle.close()
        return bundle
    except StorageError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed bundle record: {exc}") from exc


def _restore_member(bundle: Bundle, message: Message,
                    keywords: frozenset[str],
                    edge: Connection | None) -> None:
    """Insert a member without re-running Algorithm 2's alignment."""
    # Reuse the bundle's own bookkeeping: reconstruction must not re-derive
    # edges (weights may have changed between runs), so the recorded edge
    # is attached verbatim.
    bundle._register_member(message, keywords)
    if edge is not None:
        bundle._edges[message.msg_id] = edge


def bundle_to_json(bundle: Bundle) -> str:
    """One-line JSON form (the store's on-disk record body)."""
    return json.dumps(bundle_to_dict(bundle), separators=(",", ":"),
                      sort_keys=True)


def bundle_from_json(payload: str,
                     config: IndexerConfig | None = None) -> Bundle:
    """Parse :func:`bundle_to_json` output."""
    try:
        record = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise StorageError(f"invalid bundle JSON: {exc}") from exc
    if not isinstance(record, dict):
        raise StorageError("bundle JSON must be an object")
    return bundle_from_dict(record, config)
