"""Searchable archive over the on-disk bundle store.

The paper's framework (Fig. 4) flushes finished bundles to disk and never
looks at them again; a production platform must also answer queries about
*last week's* stories.  :class:`ArchiveIndex` maintains a compact on-disk
inverted index over archived bundles' summary indicants, updated on every
append, so retrieval can span the live pool *and* the archive without
rescanning segments.

Layout: one JSONL journal (``archive-index.log``) of per-bundle summary
records next to the store's segments.  On open the journal is replayed
into memory (latest record per bundle wins, mirroring the store's
semantics); lookups then resolve bundle ids through the store.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.core.bundle import Bundle
from repro.core.errors import StorageError
from repro.storage.bundle_store import BundleStore

__all__ = ["ArchiveIndex", "ArchiveHit", "ArchivedBundleStore"]

_JOURNAL_NAME = "archive-index.log"


@dataclass(frozen=True, slots=True)
class ArchiveHit:
    """One archived-bundle match."""

    bundle_id: int
    score: float
    size: int
    last_update: float
    summary_words: tuple[str, ...]


@dataclass(slots=True)
class _SummaryRecord:
    """In-memory digest of one archived bundle."""

    bundle_id: int
    size: int
    last_update: float
    terms: dict[str, int]  # namespaced: "t:"/"u:"/"k:" like Bundle's map
    summary_words: tuple[str, ...]


def _digest(bundle: Bundle) -> _SummaryRecord:
    terms: dict[str, int] = {}
    for tag, count in bundle.hashtag_counts.items():
        terms["t:" + tag] = count
    for url, count in bundle.url_counts.items():
        terms["u:" + url] = count
    for keyword, count in bundle.keyword_counts.items():
        terms["k:" + keyword] = count
    return _SummaryRecord(
        bundle_id=bundle.bundle_id,
        size=len(bundle),
        last_update=bundle.last_update,
        terms=terms,
        summary_words=tuple(bundle.summary_words(10)),
    )


class ArchiveIndex:
    """On-disk inverted index over archived bundle summaries."""

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._journal = self.directory / _JOURNAL_NAME
        self._records: dict[int, _SummaryRecord] = {}
        self._postings: dict[str, set[int]] = {}
        self._replay()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _replay(self) -> None:
        if not self._journal.exists():
            return
        with self._journal.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    record = _SummaryRecord(
                        bundle_id=int(raw["id"]),
                        size=int(raw["size"]),
                        last_update=float(raw["last"]),
                        terms={str(k): int(v)
                               for k, v in raw["terms"].items()},
                        summary_words=tuple(raw.get("words", ())),
                    )
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError) as exc:
                    raise StorageError(
                        f"{self._journal}:{line_no}: bad record: "
                        f"{exc}") from exc
                self._install(record)

    def _install(self, record: _SummaryRecord) -> None:
        previous = self._records.get(record.bundle_id)
        if previous is not None:
            for term in previous.terms:
                bucket = self._postings.get(term)
                if bucket is not None:
                    bucket.discard(record.bundle_id)
                    if not bucket:
                        del self._postings[term]
        self._records[record.bundle_id] = record
        for term in record.terms:
            self._postings.setdefault(term, set()).add(record.bundle_id)

    def add(self, bundle: Bundle) -> None:
        """Index one archived bundle (append to journal + memory)."""
        record = _digest(bundle)
        payload = json.dumps({
            "id": record.bundle_id,
            "size": record.size,
            "last": record.last_update,
            "terms": record.terms,
            "words": list(record.summary_words),
        }, separators=(",", ":"), sort_keys=True)
        with self._journal.open("a", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        self._install(record)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, bundle_id: int) -> bool:
        return bundle_id in self._records

    def term_count(self) -> int:
        """Distinct indexed (namespaced) terms."""
        return len(self._postings)

    def search(self, *, terms: "frozenset[str] | set[str]" = frozenset(),
               hashtags: "frozenset[str] | set[str]" = frozenset(),
               urls: "frozenset[str] | set[str]" = frozenset(),
               k: int = 10) -> list[ArchiveHit]:
        """Ranked archived bundles for keyword / hashtag / URL criteria.

        Score = matched-term count weighted by per-bundle term frequency
        (hashtags and URLs count double — they are precise indicants),
        with recency as tie-break.
        """
        wanted = ([("k:" + term, 1.0) for term in terms]
                  + [("t:" + tag, 2.0) for tag in hashtags]
                  + [("u:" + url, 2.0) for url in urls])
        if not wanted:
            return []
        scores: Counter[int] = Counter()
        for namespaced, weight in wanted:
            for bundle_id in self._postings.get(namespaced, ()):
                record = self._records[bundle_id]
                tf = record.terms.get(namespaced, 0)
                scores[bundle_id] += weight * min(tf, 5)
        ranked = sorted(
            scores.items(),
            key=lambda kv: (-kv[1], -self._records[kv[0]].last_update,
                            kv[0]))
        return [
            ArchiveHit(
                bundle_id=bundle_id,
                score=score,
                size=self._records[bundle_id].size,
                last_update=self._records[bundle_id].last_update,
                summary_words=self._records[bundle_id].summary_words,
            )
            for bundle_id, score in ranked[:k]
        ]


class ArchivedBundleStore:
    """A :class:`BundleStore` with a co-maintained :class:`ArchiveIndex`.

    Drop-in replacement sink for the engine: ``append`` persists the
    bundle *and* indexes its summary, so evicted stories stay findable.
    """

    def __init__(self, directory: "str | os.PathLike[str]", *,
                 max_segment_bytes: int = 8 * 1024 * 1024) -> None:
        self.store = BundleStore(directory,
                                 max_segment_bytes=max_segment_bytes)
        self.index = ArchiveIndex(directory)

    def __len__(self) -> int:
        return len(self.store)

    def append(self, bundle: Bundle) -> None:
        """Persist and index one bundle (BundleSink protocol)."""
        self.store.append(bundle)
        self.index.add(bundle)

    def load(self, bundle_id: int) -> Bundle:
        """Read one archived bundle back."""
        return self.store.load(bundle_id)

    def search(self, raw_query: str, *, k: int = 10) -> list[ArchiveHit]:
        """Free-text archive search (terms + #hashtags + URLs)."""
        from repro.core.message import extract_hashtags, extract_urls, \
            strip_entities
        from repro.text.analyzer import Analyzer

        analyzer = Analyzer()
        return self.index.search(
            terms=analyzer.term_set(strip_entities(raw_query)),
            hashtags=extract_hashtags(raw_query),
            urls=extract_urls(raw_query),
            k=k,
        )
