"""Write-ahead message journal: crash recovery for the indexer.

Snapshots (:mod:`repro.storage.snapshot`) capture the engine at a point;
the journal captures every message *since*, so a crash loses nothing:

    wal = MessageJournal("ingest.wal")
    journaled = JournaledIndexer(indexer, wal, snapshot_path="state.json",
                                 snapshot_every=50_000)
    for message in stream:
        journaled.ingest(message)          # append → then index

    # after a crash:
    recovered = JournaledIndexer.recover("state.json", "ingest.wal")

Correctness protocol: every journal record carries a monotonically
increasing **sequence number**; a checkpoint writes the snapshot, then a
sidecar file recording the last applied sequence, then truncates the
journal.  Recovery replays only records with ``seq > sidecar seq``, so a
crash *anywhere* — mid-append (torn tail skipped), between snapshot and
truncate (duplicate records skipped by seq), after truncate — recovers
the exact pre-crash engine.  ``tests/storage/test_wal.py`` pins this with
simulated crashes at each point.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator

from repro.core.engine import IngestResult, ProvenanceIndexer
from repro.core.errors import StorageError
from repro.core.message import Message, parse_message

__all__ = ["MessageJournal", "JournaledIndexer"]


def _escape(text: str) -> str:
    return (text.replace("\\", "\\\\").replace("\t", "\\t")
            .replace("\n", "\\n").replace("\r", "\\r"))


def _unescape(text: str) -> str:
    return (text.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\r", "\r").replace("\\\\", "\\"))


class MessageJournal:
    """Append-only sequenced message log with replay."""

    def __init__(self, path: "str | os.PathLike[str]", *,
                 sync_every: int = 64) -> None:
        if sync_every <= 0:
            raise StorageError(
                f"sync_every must be positive, got {sync_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.next_seq = self._scan_next_seq()
        self._handle = self.path.open("a", encoding="utf-8")
        self._since_sync = 0

    def _scan_next_seq(self) -> int:
        last = -1
        for seq, _ in self.replay_entries(self.path):
            last = seq
        return last + 1

    def append(self, message: Message) -> int:
        """Log one message; returns its sequence number."""
        seq = self.next_seq
        self.next_seq += 1
        event = "" if message.event_id is None else str(message.event_id)
        parent = "" if message.parent_id is None else str(message.parent_id)
        self._handle.write(
            f"{seq}\t{message.msg_id}\t{message.user}\t{message.date!r}\t"
            f"{event}\t{parent}\t{_escape(message.text)}\n")
        self._since_sync += 1
        if self._since_sync >= self.sync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Flush and fsync the journal."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_sync = 0

    def close(self) -> None:
        """Flush and close the underlying file."""
        self.sync()
        self._handle.close()

    def truncate(self) -> None:
        """Drop all journal content (sequence numbering continues)."""
        self.close()
        self.path.unlink(missing_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")

    @staticmethod
    def replay_entries(
        path: "str | os.PathLike[str]",
    ) -> Iterator[tuple[int, Message]]:
        """Yield ``(seq, message)`` in append order.

        A torn or corrupt tail (crash mid-append) ends the replay rather
        than raising — everything before it was fsync-bounded.
        """
        source = Path(path)
        if not source.exists():
            return
        with source.open("r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    return
                fields = line.rstrip("\n").split("\t", 6)
                if len(fields) != 7:
                    return
                seq, msg_id, user, date, event, parent, text = fields
                try:
                    yield int(seq), parse_message(
                        int(msg_id), user, float(date), _unescape(text),
                        event_id=int(event) if event else None,
                        parent_id=int(parent) if parent else None)
                except ValueError:
                    return


class JournaledIndexer:
    """An indexer with WAL + periodic snapshots for exact crash recovery.

    Parameters
    ----------
    indexer / journal:
        The wrapped engine and its message log.
    snapshot_path:
        Where periodic snapshots go (``None`` disables snapshotting; the
        journal then holds the entire history).
    snapshot_every:
        Snapshot-and-truncate after this many ingests.
    """

    def __init__(self, indexer: ProvenanceIndexer, journal: MessageJournal,
                 *, snapshot_path: "str | os.PathLike[str] | None" = None,
                 snapshot_every: int = 50_000) -> None:
        if snapshot_every <= 0:
            raise StorageError(
                f"snapshot_every must be positive, got {snapshot_every}")
        self.indexer = indexer
        self.journal = journal
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None
        self.snapshot_every = snapshot_every
        self._since_snapshot = 0
        # Sequence numbers must never move backwards across restarts:
        # after a checkpoint truncated the journal, the sidecar holds the
        # high-water mark a fresh journal scan cannot see.
        if self.snapshot_path is not None:
            sidecar = self._seq_sidecar()
            if sidecar.exists():
                journal.next_seq = max(
                    journal.next_seq,
                    int(sidecar.read_text().strip()) + 1)
        self.last_applied_seq = journal.next_seq - 1

    def ingest(self, message: Message) -> IngestResult:
        """Journal first, then index (write-ahead ordering)."""
        seq = self.journal.append(message)
        result = self.indexer.ingest(message)
        self.last_applied_seq = seq
        self._since_snapshot += 1
        if (self.snapshot_path is not None
                and self._since_snapshot >= self.snapshot_every):
            self.checkpoint()
        return result

    # -- checkpointing -----------------------------------------------------

    def _seq_sidecar(self) -> Path:
        assert self.snapshot_path is not None
        return self.snapshot_path.with_suffix(
            self.snapshot_path.suffix + ".seq")

    def checkpoint(self) -> None:
        """Snapshot, record the applied sequence, truncate the journal."""
        if self.snapshot_path is None:
            raise StorageError("no snapshot_path configured")
        from repro.storage.snapshot import save_snapshot

        self.journal.sync()
        save_snapshot(self.indexer, self.snapshot_path)
        sidecar = self._seq_sidecar()
        tmp = sidecar.with_suffix(sidecar.suffix + ".tmp")
        tmp.write_text(str(self.last_applied_seq), encoding="utf-8")
        tmp.replace(sidecar)
        self.journal.truncate()
        self._since_snapshot = 0

    @classmethod
    def recover(cls, snapshot_path: "str | os.PathLike[str] | None",
                journal_path: "str | os.PathLike[str]", *,
                snapshot_every: int = 50_000) -> "JournaledIndexer":
        """Rebuild the exact pre-crash state: snapshot + journal tail."""
        from repro.core.config import IndexerConfig
        from repro.storage.snapshot import load_snapshot

        snapshot_file = Path(snapshot_path) if snapshot_path else None
        applied_seq = -1
        if snapshot_file is not None and snapshot_file.exists():
            indexer = load_snapshot(snapshot_file)
            sidecar = snapshot_file.with_suffix(snapshot_file.suffix + ".seq")
            if sidecar.exists():
                applied_seq = int(sidecar.read_text().strip())
        else:
            indexer = ProvenanceIndexer(IndexerConfig())

        replayed = 0
        for seq, message in MessageJournal.replay_entries(journal_path):
            if seq <= applied_seq:
                continue  # already reflected in the snapshot
            indexer.ingest(message)
            replayed += 1
        journal = MessageJournal(journal_path)
        recovered = cls(indexer, journal, snapshot_path=snapshot_file,
                        snapshot_every=snapshot_every)
        recovered._since_snapshot = replayed
        return recovered
