"""Write-ahead message journal: crash recovery for the indexer.

Snapshots (:mod:`repro.storage.snapshot`) capture the engine at a point;
the journal captures every message *since*, so a crash loses nothing:

    wal = MessageJournal("ingest.wal")
    with JournaledIndexer(indexer, wal, snapshot_path="state.json",
                          snapshot_every=50_000) as journaled:
        for message in stream:
            journaled.ingest(message)       # append → then index

    # after a crash:
    recovered = JournaledIndexer.recover("state.json", "ingest.wal")

Correctness protocol: every journal record carries a monotonically
increasing **sequence number**; a checkpoint writes the snapshot (which
embeds the last applied sequence, atomically with the state), then a
sidecar file recording that sequence, then truncates the journal.
Recovery replays only records with ``seq > applied seq``, so a crash
*anywhere* — mid-append (torn tail skipped), between snapshot and
sidecar, between sidecar and truncate (duplicate records skipped by
seq), after truncate — recovers the exact pre-crash engine.

Record framing: each line is ``<crc32:8 hex> <payload>`` (mirroring the
bundle store's segments), where the payload is the tab-separated record.
Reads are version-tolerant: lines without the CRC prefix are parsed as
the original v0 format, so pre-CRC journals still replay.  A record that
fails its CRC or cannot be parsed is skipped; a run of bad lines at the
tail is the classic torn tail.  ``tests/storage/test_wal.py`` and
``tests/reliability/test_crash_matrix.py`` pin this with simulated
crashes at every durability boundary.

All durable I/O goes through :mod:`repro.reliability.fsio`, so the fault
injector can exercise every failure path deterministically.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.core.config import IndexerConfig
from repro.core.engine import IngestResult, ProvenanceIndexer
from repro.core.errors import (BundleError, IndexError_, MessageError,
                               StorageError)
from repro.core.message import Message, parse_message
from repro.obs.registry import NULL_COUNTER, MetricsRegistry
from repro.reliability.fsio import (escape_field, filesystem, frame_line,
                                    unescape_field)

__all__ = ["MessageJournal", "JournaledIndexer", "ReplayStats"]

_CRC_WIDTH = 8
_HEX_DIGITS = frozenset("0123456789abcdef")

# The framing and field escaping are the shared implementations in
# :mod:`repro.reliability.fsio` — the runtime's boundary/repair journals
# use the very same ones, so every durable log in the repo parses alike.
_escape = escape_field
_unescape = unescape_field
_frame = frame_line


def _parse_payload(payload: str) -> "tuple[int, Message] | None":
    """Decode one tab-separated record payload; ``None`` if malformed."""
    fields = payload.split("\t", 6)
    if len(fields) != 7:
        return None
    seq, msg_id, user, date, event, parent, text = fields
    try:
        return int(seq), parse_message(
            int(msg_id), user, float(date), _unescape(text),
            event_id=int(event) if event else None,
            parent_id=int(parent) if parent else None)
    except ValueError:
        return None


def _parse_line(line: str) -> "tuple[int, Message, bool] | None":
    """Decode one journal line (without its newline).

    Returns ``(seq, message, legacy)`` or ``None`` for a corrupt line.
    Lines carrying the ``<crc32:8 hex> `` prefix are verified against
    their checksum; anything else is tried as the v0 (pre-CRC) format.
    A v0 line can never be mistaken for a framed one: its first field is
    a decimal sequence number followed by a tab, so position 8 is never
    a space preceded by eight hex digits.
    """
    if (len(line) > _CRC_WIDTH and line[_CRC_WIDTH] == " "
            and all(c in _HEX_DIGITS for c in line[:_CRC_WIDTH])):
        payload = line[_CRC_WIDTH + 1:]
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        if f"{crc:08x}" != line[:_CRC_WIDTH]:
            return None
        parsed = _parse_payload(payload)
        return None if parsed is None else (*parsed, False)
    parsed = _parse_payload(line)
    return None if parsed is None else (*parsed, True)


@dataclass(slots=True)
class ReplayStats:
    """What a journal replay saw (filled in by :meth:`replay_entries`)."""

    records: int = 0
    legacy_records: int = 0
    skipped_corrupt: int = 0
    torn_tail: bool = False


class MessageJournal:
    """Append-only sequenced message log with CRC framing and replay."""

    def __init__(self, path: "str | os.PathLike[str]", *,
                 sync_every: int = 64) -> None:
        if sync_every <= 0:
            raise StorageError(
                f"sync_every must be positive, got {sync_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.sync_every = sync_every
        self.next_seq = self._scan_next_seq()
        self._handle = filesystem().open(self.path, "a", encoding="utf-8")
        self._since_sync = 0
        self._closed = False
        self._tail_dirty = False
        # No-op until bind_registry() wires the journal into a registry.
        self._append_counter = NULL_COUNTER
        self._sync_counter = NULL_COUNTER
        self._bytes_counter = NULL_COUNTER

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Export the journal's durability counters."""
        self._append_counter = registry.counter(
            "repro_wal_appends_total",
            help="Records appended to the write-ahead journal")
        self._sync_counter = registry.counter(
            "repro_wal_syncs_total",
            help="fsync batches flushed to the journal")
        self._bytes_counter = registry.counter(
            "repro_wal_bytes_total", unit="bytes",
            help="Payload bytes written to the journal")

    def _scan_next_seq(self) -> int:
        last = -1
        for seq, _ in self.replay_entries(self.path):
            last = seq
        return last + 1

    def append(self, message: Message) -> int:
        """Log one message; returns its sequence number.

        If a previous append failed mid-write (``ENOSPC`` leaving a
        partial line), the next append first terminates the garbage line
        so the journal stays parseable — replay skips the remnant by its
        failed CRC.
        """
        seq = self.next_seq
        self.next_seq += 1
        event = "" if message.event_id is None else str(message.event_id)
        parent = "" if message.parent_id is None else str(message.parent_id)
        payload = (f"{seq}\t{message.msg_id}\t{message.user}\t"
                   f"{message.date!r}\t{event}\t{parent}\t"
                   f"{_escape(message.text)}")
        try:
            if self._tail_dirty:
                self._handle.write("\n")
                self._tail_dirty = False
            line = _frame(payload) + "\n"
            self._handle.write(line)
        except OSError:
            self._tail_dirty = True
            raise
        self._append_counter.inc()
        self._bytes_counter.inc(len(line))
        self._since_sync += 1
        if self._since_sync >= self.sync_every:
            self.sync()
        return seq

    def sync(self) -> None:
        """Flush and fsync the journal."""
        filesystem().fsync(self._handle)
        self._since_sync = 0
        self._sync_counter.inc()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.sync()
        self._handle.close()

    def __enter__(self) -> "MessageJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def truncate(self) -> None:
        """Drop all journal content (sequence numbering continues)."""
        self.close()
        filesystem().unlink(self.path, missing_ok=True)
        self._handle = filesystem().open(self.path, "a", encoding="utf-8")
        self._closed = False
        self._tail_dirty = False

    @staticmethod
    def replay_entries(
        path: "str | os.PathLike[str]", *,
        stats: "ReplayStats | None" = None,
    ) -> Iterator[tuple[int, Message]]:
        """Yield ``(seq, message)`` in append order.

        Corrupt lines are skipped: records are CRC-framed, so a line
        that fails validation is provably damaged, and every line that
        passes is provably intact regardless of its neighbours.  A run
        of bad lines at the end of the file is the usual torn tail
        (crash mid-append) — everything before it was fsync-bounded.
        Pass ``stats`` to learn what the replay skipped.
        """
        source = Path(path)
        tally = stats if stats is not None else ReplayStats()
        if not source.exists():
            return
        pending_bad = 0
        # errors="replace": a bit-flip that breaks UTF-8 must degrade to
        # a CRC-failing line (skipped), not a UnicodeDecodeError that
        # aborts the whole replay.
        with source.open("r", encoding="utf-8", errors="replace",
                         newline="") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    pending_bad += 1
                    continue
                parsed = _parse_line(line[:-1])
                if parsed is None:
                    pending_bad += 1
                    continue
                tally.skipped_corrupt += pending_bad
                pending_bad = 0
                seq, message, legacy = parsed
                tally.records += 1
                if legacy:
                    tally.legacy_records += 1
                yield seq, message
        if pending_bad:
            tally.skipped_corrupt += pending_bad
            tally.torn_tail = True


class JournaledIndexer:
    """An indexer with WAL + periodic snapshots for exact crash recovery.

    Usable as a context manager: a clean ``with`` exit flushes the
    journal and (when snapshotting is configured) writes a final
    checkpoint; an exceptional exit only flushes, leaving the journal
    tail for recovery.

    Parameters
    ----------
    indexer / journal:
        The wrapped engine and its message log.
    snapshot_path:
        Where periodic snapshots go (``None`` disables snapshotting; the
        journal then holds the entire history).
    snapshot_every:
        Snapshot-and-truncate after this many ingests.
    """

    def __init__(self, indexer: ProvenanceIndexer, journal: MessageJournal,
                 *, snapshot_path: "str | os.PathLike[str] | None" = None,
                 snapshot_every: int = 50_000) -> None:
        if snapshot_every <= 0:
            raise StorageError(
                f"snapshot_every must be positive, got {snapshot_every}")
        self.indexer = indexer
        self.journal = journal
        self.snapshot_path = Path(snapshot_path) if snapshot_path else None
        self.snapshot_every = snapshot_every
        self._since_snapshot = 0
        self._closed = False
        self.last_result: "IngestResult | None" = None
        # One registry per stack: the engine's registry also carries the
        # durability signals of its journal and checkpoints.
        registry = indexer.obs.registry
        journal.bind_registry(registry)
        self._checkpoint_counter = registry.counter(
            "repro_checkpoints_total",
            help="Snapshot-and-truncate checkpoints completed")
        # Sequence numbers must never move backwards across restarts:
        # after a checkpoint truncated the journal, the sidecar holds the
        # high-water mark a fresh journal scan cannot see.
        if self.snapshot_path is not None:
            sidecar = self._seq_sidecar()
            if sidecar.exists():
                journal.next_seq = max(
                    journal.next_seq,
                    int(sidecar.read_text().strip()) + 1)
        self.last_applied_seq = journal.next_seq - 1

    def ingest(self, message: Message) -> IngestResult:
        """Journal first, then index (write-ahead ordering)."""
        seq = self.journal.append(message)
        result = self.indexer.ingest(message)
        self.last_applied_seq = seq
        self.last_result = result
        self._since_snapshot += 1
        if (self.snapshot_path is not None
                and self._since_snapshot >= self.snapshot_every):
            self.checkpoint()
        return result

    def ingest_folded(self, message: Message, bundle_id: int,
                      duplicate_of: "int | None" = None) -> IngestResult:
        """Journal first, then fold-place into an already-known bundle.

        The WAL record is the standard one — the fold *hint* lives in
        the guard's fold log, written before this append, so replay can
        reproduce the same placement (see
        :meth:`recover`'s ``fold_hints``).
        """
        seq = self.journal.append(message)
        result = self.indexer.ingest_folded(message, bundle_id,
                                            duplicate_of)
        self.last_applied_seq = seq
        self.last_result = result
        self._since_snapshot += 1
        if (self.snapshot_path is not None
                and self._since_snapshot >= self.snapshot_every):
            self.checkpoint()
        return result

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Checkpoint (if configured) and close the journal (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.snapshot_path is not None:
            self.checkpoint()
        self.journal.close()

    def __enter__(self) -> "JournaledIndexer":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.close()
        else:
            # Crashing out: keep the journal tail for recovery, just make
            # sure everything appended so far is durable.
            self._closed = True
            self.journal.close()

    # -- checkpointing -----------------------------------------------------

    def _seq_sidecar(self) -> Path:
        assert self.snapshot_path is not None
        return self.snapshot_path.with_suffix(
            self.snapshot_path.suffix + ".seq")

    def checkpoint(self) -> None:
        """Snapshot, record the applied sequence, truncate the journal."""
        if self.snapshot_path is None:
            raise StorageError("no snapshot_path configured")
        from repro.storage.snapshot import save_snapshot

        self.journal.sync()
        save_snapshot(self.indexer, self.snapshot_path,
                      applied_seq=self.last_applied_seq)
        sidecar = self._seq_sidecar()
        tmp = sidecar.with_suffix(sidecar.suffix + ".tmp")
        with filesystem().open(tmp, "w", encoding="utf-8") as handle:
            handle.write(str(self.last_applied_seq))
            filesystem().fsync(handle)
        filesystem().replace(tmp, sidecar)
        self.journal.truncate()
        self._since_snapshot = 0
        self._checkpoint_counter.inc()

    @classmethod
    def recover(cls, snapshot_path: "str | os.PathLike[str] | None",
                journal_path: "str | os.PathLike[str]", *,
                snapshot_every: int = 50_000,
                config: "IndexerConfig | None" = None,
                fold_hints: "Mapping[int, tuple[int, int]] | None" = None,
                ) -> "JournaledIndexer":
        """Rebuild the exact pre-crash state: snapshot + journal tail.

        ``config`` seeds the fresh engine when no snapshot exists yet
        (a snapshot carries its own config); without it the defaults
        apply, as before.  ``fold_hints`` maps msg_id to a
        ``(bundle_id, duplicate_of)`` pair for
        messages the ingest guard fold-placed (from its fold log);
        replay routes those through :meth:`ingest_folded` so recovery
        reproduces the live placements byte-for-byte.  A hint whose
        bundle has since left the pool degrades deterministically to a
        full ingest, exactly as the live path did.
        """
        from repro.storage.snapshot import load_snapshot_with_meta

        snapshot_file = Path(snapshot_path) if snapshot_path else None
        applied_seq = -1
        if snapshot_file is not None and snapshot_file.exists():
            indexer, meta = load_snapshot_with_meta(snapshot_file)
            # The snapshot's embedded sequence is atomic with its state;
            # the sidecar is the pre-CRC fallback (and may lag by one
            # checkpoint if the crash hit between the two writes).
            embedded = meta.get("applied_seq")
            if embedded is not None:
                applied_seq = int(embedded)
            sidecar = snapshot_file.with_suffix(snapshot_file.suffix + ".seq")
            if sidecar.exists():
                applied_seq = max(applied_seq,
                                  int(sidecar.read_text().strip()))
        else:
            indexer = ProvenanceIndexer(config or IndexerConfig())

        replayed = 0
        for seq, message in MessageJournal.replay_entries(journal_path):
            if seq <= applied_seq:
                continue  # already reflected in the snapshot
            try:
                target = (fold_hints.get(message.msg_id)
                          if fold_hints else None)
                if target is not None:
                    indexer.ingest_folded(message, *target)
                else:
                    indexer.ingest(message)
            except (MessageError, BundleError, IndexError_, ValueError,
                    TypeError, KeyError):
                # A journaled record the engine rejects (e.g. a duplicate
                # msg_id that slipped past a crashed supervisor before it
                # could dead-letter) must not make recovery itself
                # unrecoverable; skip it, exactly as the live supervisor
                # would have quarantined it.
                continue
            replayed += 1
        journal = MessageJournal(journal_path)
        recovered = cls(indexer, journal, snapshot_path=snapshot_file,
                        snapshot_every=snapshot_every)
        recovered._since_snapshot = replayed
        return recovered
