"""On-disk storage back-end (the bottom half of Fig. 4).

* :class:`~repro.storage.bundle_store.BundleStore` — segmented append-only
  store for evicted/closed bundles,
* :mod:`repro.storage.serializer` — bundle/message (de)serialization,
* :mod:`repro.storage.snapshot` — whole-indexer snapshot/restore.
"""

from repro.storage.archive_index import (ArchiveHit, ArchiveIndex,
                                         ArchivedBundleStore)
from repro.storage.bundle_store import BundleStore
from repro.storage.compaction import (CompactionReport, compact_store,
                                      dead_bytes_fraction)
from repro.storage.serializer import (bundle_from_dict, bundle_from_json,
                                      bundle_to_dict, bundle_to_json,
                                      message_from_dict, message_to_dict)
from repro.storage.snapshot import (load_snapshot, load_snapshot_with_meta,
                                    save_snapshot)
from repro.storage.wal import JournaledIndexer, MessageJournal, ReplayStats

__all__ = [
    "ArchiveHit",
    "ArchiveIndex",
    "ArchivedBundleStore",
    "BundleStore",
    "CompactionReport",
    "compact_store",
    "dead_bytes_fraction",
    "bundle_from_dict",
    "bundle_from_json",
    "bundle_to_dict",
    "bundle_to_json",
    "message_from_dict",
    "message_to_dict",
    "load_snapshot",
    "load_snapshot_with_meta",
    "JournaledIndexer",
    "MessageJournal",
    "ReplayStats",
    "save_snapshot",
]
