"""Reliability engineering for the always-on indexer.

Three cooperating pieces (all new layers over :mod:`repro.storage` and
:mod:`repro.core`):

* :mod:`repro.reliability.faults`     — deterministic fault injection
  (torn writes, ``ENOSPC``, crash-before/after-fsync, crash-mid-rename)
  through the pluggable filesystem of :mod:`repro.reliability.fsio`;
* :mod:`repro.reliability.supervisor` — :class:`ResilientIndexer`, a
  supervisor around the journaled engine with bounded retry + backoff,
  a dead-letter queue for poison messages and watermark-driven load
  shedding;
* :mod:`repro.reliability.doctor`     — offline integrity scanning and
  repair of WAL / snapshot / bundle store (the ``repro doctor`` command);
* :mod:`repro.reliability.overload`   — load regulation: token-bucket
  admission control, the NORMAL → REDUCED → SKELETON → SHED_ONLY
  degradation ladder, and the circuit breaker guarding spill I/O (the
  ``repro health`` command);
* :mod:`repro.reliability.guard`      — adversarial ingest hardening:
  LSH near-dup folding, spam quarantine to a crash-safe custody log,
  and a bounded reordering buffer for out-of-order arrivals.

The submodules that depend on :mod:`repro.storage` are loaded lazily so
that the storage layer itself can import :mod:`repro.reliability.fsio`
without a cycle.
"""

from __future__ import annotations

from repro.reliability.faults import (Fault, FaultInjector, FaultyFile,
                                      FaultyFileSystem, SimulatedCrash)
from repro.reliability.fsio import (FileSystem, RealFileSystem, filesystem,
                                    reset_filesystem, set_filesystem)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultyFile",
    "FaultyFileSystem",
    "SimulatedCrash",
    "FileSystem",
    "RealFileSystem",
    "filesystem",
    "set_filesystem",
    "reset_filesystem",
    # lazy (see __getattr__):
    "ResilientIndexer",
    "ResilientStats",
    "DeadLetterQueue",
    "DeadLetter",
    "Admission",
    "AdmissionController",
    "AdmissionStats",
    "CircuitBreaker",
    "DegradationLadder",
    "GuardedSink",
    "HealthReport",
    "HealthState",
    "OverloadConfig",
    "OverloadController",
    "Transition",
    "FoldLog",
    "GuardAction",
    "GuardConfig",
    "GuardStats",
    "IngestGuard",
    "QuarantineLog",
    "Screened",
    "WalScan",
    "SnapshotScan",
    "StoreScan",
    "RepairResult",
    "scan_wal",
    "scan_snapshot",
    "scan_store",
    "repair_wal",
    "repair_store",
    "quarantine_snapshot",
]

_LAZY = {
    "ResilientIndexer": "repro.reliability.supervisor",
    "ResilientStats": "repro.reliability.supervisor",
    "DeadLetterQueue": "repro.reliability.supervisor",
    "DeadLetter": "repro.reliability.supervisor",
    "Admission": "repro.reliability.overload",
    "AdmissionController": "repro.reliability.overload",
    "AdmissionStats": "repro.reliability.overload",
    "CircuitBreaker": "repro.reliability.overload",
    "DegradationLadder": "repro.reliability.overload",
    "GuardedSink": "repro.reliability.overload",
    "HealthReport": "repro.reliability.overload",
    "HealthState": "repro.reliability.overload",
    "OverloadConfig": "repro.reliability.overload",
    "OverloadController": "repro.reliability.overload",
    "Transition": "repro.reliability.overload",
    "FoldLog": "repro.reliability.guard",
    "GuardAction": "repro.reliability.guard",
    "GuardConfig": "repro.reliability.guard",
    "GuardStats": "repro.reliability.guard",
    "IngestGuard": "repro.reliability.guard",
    "QuarantineLog": "repro.reliability.guard",
    "Screened": "repro.reliability.guard",
    "WalScan": "repro.reliability.doctor",
    "SnapshotScan": "repro.reliability.doctor",
    "StoreScan": "repro.reliability.doctor",
    "RepairResult": "repro.reliability.doctor",
    "scan_wal": "repro.reliability.doctor",
    "scan_snapshot": "repro.reliability.doctor",
    "scan_store": "repro.reliability.doctor",
    "repair_wal": "repro.reliability.doctor",
    "repair_store": "repro.reliability.doctor",
    "quarantine_snapshot": "repro.reliability.doctor",
}


def __getattr__(name: str):  # noqa: ANN202 - module __getattr__
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
