"""Resilient ingestion: supervision around the journaled indexer.

Real micro-blog ingest runs unattended against a firehose, so the hot
path needs three defenses the core algorithms don't provide:

* **bounded retry with exponential backoff** on transient storage
  failures (``ENOSPC``, flaky fsync) — a blip must not kill the stream,
  but a persistent fault must surface as
  :class:`~repro.core.errors.RetryExhaustedError` rather than spin;
* **a dead-letter queue** that quarantines poison messages (malformed
  records, engine-rejected tuples) with a reason, instead of aborting
  the whole replay on one bad crawl line;
* **degraded mode**: when the pool's memory estimate crosses a high
  watermark, the supervisor force-closes and spills the
  lowest-priority bundles (Eq. 6 ``G(B)`` order, via
  :meth:`repro.core.pool.BundlePool.shed`) until usage is back under
  the low watermark, counting everything it shed;
* **load regulation** (optional): an
  :class:`~repro.reliability.overload.OverloadController` in front of
  the hot path — token-bucket admission with a bounded backlog, the
  NORMAL → REDUCED → SKELETON → SHED_ONLY degradation ladder applied to
  the engine around every ingest, and a circuit breaker that turns a
  sick spill disk into memory-only operation instead of a stalled
  stream.

The supervisor is deliberately *outside* :class:`JournaledIndexer`: the
WAL layer stays a pure correctness protocol, and policy (how often to
retry, what to quarantine, when to shed, what to degrade) lives here.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.engine import IngestResult
from repro.core.errors import (BundleError, IndexError_, MessageError,
                               RetryExhaustedError, StorageError)
from repro.core.message import Message, parse_message
from repro.obs import IngestOutcome, NULL_HISTOGRAM, TelemetryFlusher
from repro.reliability.fsio import filesystem
from repro.reliability.guard import (FoldLog, GuardAction, GuardConfig,
                                     IngestGuard, Screened)
from repro.reliability.overload import (Admission, HealthReport,
                                        OverloadConfig, OverloadController)
from repro.storage.wal import JournaledIndexer

__all__ = ["DeadLetter", "DeadLetterQueue", "ResilientIndexer",
           "ResilientStats"]

#: Per-message errors that mean the *message* is bad, not the system.
_POISON_ERRORS = (MessageError, BundleError, IndexError_, ValueError,
                  TypeError, KeyError)
#: Failures worth retrying: the storage layer or the OS said "not now".
_TRANSIENT_ERRORS = (StorageError, OSError)


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One quarantined message."""

    reason: str
    error: str
    payload: str

    def to_dict(self) -> dict[str, str]:
        return {"reason": self.reason, "error": self.error,
                "payload": self.payload}


class DeadLetterQueue:
    """Quarantine for poison messages, optionally persisted as JSONL.

    With a ``path``, every entry is appended to the file as one JSON
    line (and existing entries are loaded on open), so an operator can
    inspect and replay quarantined input after the stream finishes —
    see ``docs/operations.md``.
    """

    def __init__(self, path: "str | os.PathLike[str] | None" = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: list[DeadLetter] = []
        if self.path is not None and self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        self._entries.append(DeadLetter(
                            reason=str(record.get("reason", "?")),
                            error=str(record.get("error", "")),
                            payload=str(record.get("payload", ""))))
                    except (ValueError, AttributeError):
                        continue  # a torn DLQ line loses one dead letter
        elif self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, reason: str, error: BaseException | str,
               payload: object) -> DeadLetter:
        """Quarantine one message with a human-readable reason."""
        letter = DeadLetter(reason=reason, error=str(error),
                            payload=repr(payload))
        self._entries.append(letter)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(letter.to_dict(),
                                        sort_keys=True) + "\n")
        return letter

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def entries(self) -> list[DeadLetter]:
        """A copy of the quarantined entries, oldest first."""
        return list(self._entries)

    def drain(self) -> list[DeadLetter]:
        """Return all entries and clear the queue (file included).

        The on-disk truncation is crash-safe: an empty replacement file
        is written and fsynced beside the queue, then atomically renamed
        over it through the fsio shim.  A crash anywhere mid-drain
        leaves either the complete old queue or the empty new one on
        disk — never a torn file that silently loses quarantined
        records.
        """
        if self.path is not None and self.path.exists():
            # Disk first: if truncation fails, nothing was drained.
            fs = filesystem()
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with fs.open(tmp, "w", encoding="utf-8") as handle:
                fs.fsync(handle)
            fs.replace(tmp, self.path)
        drained, self._entries = self._entries, []
        return drained


@dataclass(slots=True)
class ResilientStats:
    """What the supervisor did on behalf of the stream.

    Calling the instance returns the wrapped *engine's* unified counter
    mapping (``repro.api.STATS_KEYS``), so ``resilient.stats()`` means
    the same thing on every backend while
    ``resilient.stats.dead_lettered`` keeps its supervision counters.
    The supervisor binds :attr:`unified` at construction.
    """

    ingested: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    dead_lettered: int = 0
    deferred_checkpoints: int = 0
    degraded_entries: int = 0
    shed_bundles: int = 0
    shed_bytes: int = 0
    unified: "Callable[[], dict[str, int]] | None" = field(
        default=None, repr=False, compare=False)

    def __call__(self) -> "dict[str, int]":
        if self.unified is None:
            raise TypeError(
                "ResilientStats is only callable once bound to a "
                "supervisor (repro.api unified stats)")
        return self.unified()


class ResilientIndexer:
    """Supervisor wrapping :class:`JournaledIndexer` for unattended runs.

    Parameters
    ----------
    journaled:
        The WAL-protected engine to supervise.
    max_retries:
        Transient-failure retries per message before giving up.
    backoff_base / backoff_factor:
        Exponential backoff: attempt *n* sleeps
        ``backoff_base * backoff_factor ** (n - 1)`` seconds.
    sleep:
        Injectable sleeper (tests pass a recorder; default
        :func:`time.sleep`).
    dead_letters:
        A :class:`DeadLetterQueue`, a path for a persistent one, or
        ``None`` for an in-memory queue.
    high_watermark_bytes / low_watermark_bytes:
        Degraded-mode bounds on ``pool.approximate_memory_bytes()``.
        Crossing the high watermark sheds down to the low one (defaults
        to half the high watermark).  ``None`` disables shedding.
    overload:
        An :class:`~repro.reliability.overload.OverloadConfig` (or a
        pre-built :class:`~repro.reliability.overload.OverloadController`)
        enabling load regulation: admission control in front of
        :meth:`ingest`, the degradation ladder applied to the engine
        around every ingest, and the circuit breaker guarding the
        engine's spill store.  ``None`` (the default) leaves the hot
        path exactly as before.
    guard:
        An :class:`~repro.reliability.guard.IngestGuard` (or a
        :class:`~repro.reliability.guard.GuardConfig` / ``True`` to
        build one) enabling the adversarial screen in front of
        :meth:`ingest`: LSH near-duplicate folding, per-user spam
        quarantine (crash-safe quarantine log), and the bounded
        reordering buffer for out-of-order arrivals.  ``None`` (the
        default) leaves the hot path exactly as before.
    telemetry:
        A :class:`~repro.obs.TelemetryFlusher`, or a JSONL path to build
        one on (flushing every ``telemetry_every`` ingests): the
        long-run flight recorder described in ``docs/observability.md``.
        ``None`` (the default) records nothing.
    """

    def __init__(self, journaled: JournaledIndexer, *,
                 max_retries: int = 4,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 sleep: "Callable[[float], None] | None" = None,
                 dead_letters: "DeadLetterQueue | str | os.PathLike[str] | None" = None,
                 high_watermark_bytes: "int | None" = None,
                 low_watermark_bytes: "int | None" = None,
                 overload: "OverloadConfig | OverloadController | None" = None,
                 guard: "IngestGuard | GuardConfig | bool | None" = None,
                 telemetry: "TelemetryFlusher | str | os.PathLike[str] | None" = None,
                 telemetry_every: int = 512) -> None:
        if max_retries < 0:
            raise StorageError(
                f"max_retries must be non-negative, got {max_retries}")
        if (high_watermark_bytes is not None
                and low_watermark_bytes is not None
                and low_watermark_bytes > high_watermark_bytes):
            raise StorageError(
                "low watermark must not exceed the high watermark")
        self.journaled = journaled
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self._sleep = sleep if sleep is not None else time.sleep
        if isinstance(dead_letters, DeadLetterQueue):
            self.dead_letters = dead_letters
        else:
            self.dead_letters = DeadLetterQueue(dead_letters)
        self.high_watermark_bytes = high_watermark_bytes
        if high_watermark_bytes is not None and low_watermark_bytes is None:
            low_watermark_bytes = high_watermark_bytes // 2
        self.low_watermark_bytes = low_watermark_bytes
        self.stats = ResilientStats()
        self.stats.unified = lambda: self.journaled.indexer.stats()
        self._searcher = None
        if overload is None:
            self.overload: "OverloadController | None" = None
        elif isinstance(overload, OverloadController):
            self.overload = overload
        else:
            self.overload = OverloadController(overload)
        if self.overload is not None:
            self.overload.attach(self.journaled.indexer)
        if guard is None or guard is False:
            self.guard: "IngestGuard | None" = None
        elif isinstance(guard, IngestGuard):
            self.guard = guard
        else:
            self.guard = IngestGuard(
                guard if isinstance(guard, GuardConfig) else None)
        if self.guard is not None and self.overload is not None:
            self.overload.attach_guard(self.guard)
        registry = self.journaled.indexer.obs.registry
        stats = self.stats
        for name, field_name, help_text in (
                ("repro_supervisor_ingested_total", "ingested",
                 "Messages successfully indexed under supervision"),
                ("repro_retries_total", "retries",
                 "Transient-failure retries performed"),
                ("repro_dead_letters_total", "dead_lettered",
                 "Messages quarantined to the dead-letter queue"),
                ("repro_deferred_checkpoints_total", "deferred_checkpoints",
                 "Checkpoints deferred after a post-ingest failure"),
                ("repro_degraded_entries_total", "degraded_entries",
                 "Entries into watermark-driven degraded mode"),
        ):
            registry.counter(
                name, help=help_text,
                callback=(lambda f=field_name: getattr(stats, f)))
        registry.gauge("repro_dlq_depth",
                       help="Messages currently held in the DLQ",
                       callback=lambda: len(self.dead_letters))
        if self.guard is not None:
            gstats = self.guard.stats
            for name, field_name, help_text in (
                    ("repro_guard_screened_total", "screened",
                     "Arrivals screened by the ingest guard"),
                    ("repro_guard_passed_total", "passed",
                     "Arrivals passed clean through the guard"),
                    ("repro_guard_folded_total", "folded",
                     "Near-duplicates folded into their origin bundle"),
                    ("repro_guard_quarantined_total", "quarantined",
                     "Messages quarantined to the guard log "
                     "(spam / clock-skew)"),
                    ("repro_guard_late_total", "late",
                     "Arrivals routed through the deterministic "
                     "late-path"),
                    ("repro_guard_reordered_total", "released",
                     "Buffered out-of-order arrivals re-emitted in "
                     "date order"),
            ):
                registry.counter(
                    name, help=help_text,
                    callback=(lambda f=field_name: getattr(gstats, f)))
            registry.gauge(
                "repro_guard_buffer_depth",
                help="Messages held in the guard's reordering buffer",
                callback=lambda: (self.guard.buffer_depth
                                  if self.guard else 0))
            registry.gauge(
                "repro_guard_toxicity",
                help="Hostile fraction of recently screened arrivals",
                callback=lambda: (self.guard.toxicity()
                                  if self.guard else 0.0))
        self._latency_hist = (registry.histogram(
            "repro_ingest_latency_seconds", unit="seconds",
            help="Whole supervised ingest latency, message arrival "
                 "to indexed (retries and backoff included)")
            if registry.enabled else NULL_HISTOGRAM)
        # The guard screen is a pipeline stage of its own (LSH probe +
        # reorder bookkeeping before Algorithm 1 runs); give it a child
        # in the same repro_stage_seconds family the engine's stages
        # live in so trace hops, flamegraph stages and stage histograms
        # all speak the same stage vocabulary.
        self._screen_hist = (registry.histogram(
            "repro_stage_seconds", unit="seconds",
            help="Per-stage maintenance latency (Fig. 13's signals)",
            labels={"stage": "guard_screen"})
            if registry.enabled and self.guard is not None
            else NULL_HISTOGRAM)
        #: Guard-screen seconds of the most recent :meth:`ingest` call
        #: (0.0 without a guard) — the runtime worker turns this into
        #: the stitched trace's ``guard_screen`` hop.
        self.last_screen_seconds = 0.0
        if isinstance(telemetry, TelemetryFlusher) or telemetry is None:
            self.telemetry = telemetry
        else:
            self.telemetry = TelemetryFlusher(
                registry, telemetry, every_ticks=telemetry_every)
        audit = self.journaled.indexer.obs.audit
        if self.telemetry is not None and audit is not None:
            # The audit JSONL sink rides the flight recorder's cadence.
            self.telemetry.companions.append(audit.flush)

    # -- construction -------------------------------------------------------

    @classmethod
    def open(cls, root: "str | os.PathLike[str]", *,
             config: "Any | None" = None,
             sync_every: int = 64,
             snapshot_every: int = 50_000,
             store: bool = True,
             **options: Any) -> "ResilientIndexer":
        """Open (or recover) a full resilient stack rooted at ``root``.

        The directory layout is fixed — ``ingest.wal`` (journal),
        ``state.snapshot`` (+ ``.seq`` sidecar), ``bundles/`` (spill
        store) and ``dead_letters.jsonl`` — so a process that died at
        any point is rebuilt exactly by calling :meth:`open` on the same
        root: snapshot load + journal-tail replay, then the same sinks
        reattached.  This is the factory behind
        ``repro.api.open_indexer("resilient")`` and each
        :mod:`repro.runtime` worker process.

        ``options`` are forwarded to the constructor (``overload=``,
        ``telemetry=``, ``guard=``, watermarks, …).  A truthy ``guard``
        option gets its durable logs at the fixed layout paths —
        ``quarantine.log`` and ``folds.log`` next to the DLQ — and the
        fold log's hints steer WAL replay so recovered fold placements
        match the live ones.
        """
        from repro.storage.bundle_store import BundleStore
        from repro.storage.wal import MessageJournal

        root_dir = Path(root)
        root_dir.mkdir(parents=True, exist_ok=True)
        journal_path = root_dir / "ingest.wal"
        snapshot_path = root_dir / "state.snapshot"
        guard_opt = options.get("guard")
        fold_hints: "dict[int, tuple[int, int]] | None" = None
        if isinstance(guard_opt, IngestGuard):
            if guard_opt.folds.path is not None:
                fold_hints = FoldLog.load(guard_opt.folds.path)
        elif guard_opt:  # True or a GuardConfig: build at fixed paths
            fold_path = root_dir / "folds.log"
            fold_hints = FoldLog.load(fold_path)
            options["guard"] = IngestGuard(
                guard_opt if isinstance(guard_opt, GuardConfig) else None,
                quarantine_path=root_dir / "quarantine.log",
                fold_path=fold_path)
        if snapshot_path.exists() or journal_path.exists():
            journaled = JournaledIndexer.recover(
                snapshot_path, journal_path,
                snapshot_every=snapshot_every, config=config,
                fold_hints=fold_hints)
            journaled.journal.sync_every = sync_every
        else:
            from repro.core.engine import ProvenanceIndexer

            journaled = JournaledIndexer(
                ProvenanceIndexer(config),
                MessageJournal(journal_path, sync_every=sync_every),
                snapshot_path=snapshot_path,
                snapshot_every=snapshot_every)
        if store:
            sink = BundleStore(root_dir / "bundles")
            journaled.indexer.store = sink
            sink.bind_registry(journaled.indexer.obs.registry)
        options.setdefault("dead_letters", root_dir / "dead_letters.jsonl")
        return cls(journaled, **options)

    # -- convenience passthroughs ------------------------------------------

    @property
    def indexer(self):
        """The wrapped engine (for queries and inspection)."""
        return self.journaled.indexer

    # -- ingestion ----------------------------------------------------------

    def ingest(self, message: Message, *,
               now: "float | None" = None) -> "IngestResult | None":
        """Ingest one message, surviving transient faults and poison.

        Returns the engine's :class:`IngestResult`, or ``None`` when the
        message was quarantined to the dead-letter queue — or, with load
        regulation enabled, deferred to the backlog or dropped (both
        fully accounted in the overload controller's stats).

        ``now`` is the arrival time fed to the admission controller's
        token bucket (defaults to the controller's clock); pass the
        stream's own timestamps to regulate in simulated time.

        With a guard attached the arrival is screened first: it may be
        quarantined (``None`` returned, message durably logged), folded
        into a near-duplicate's bundle, buffered for reordering
        (``None`` now, ingested when the watermark passes), or release
        older buffered messages ahead of itself.
        """
        if self.guard is None:
            self.last_screen_seconds = 0.0
            return self._ingest_admitted(message, now)
        result: "IngestResult | None" = None
        screen_started = time.perf_counter()
        entries = self.guard.admit(message)
        screened = time.perf_counter() - screen_started
        self.last_screen_seconds = screened
        self._screen_hist.observe(screened)
        for entry in entries:
            outcome = self._ingest_screened(entry, now)
            if entry.message is message:
                result = outcome
        return result

    def _ingest_screened(self, entry: Screened,
                         now: "float | None") -> "IngestResult | None":
        """Apply one guard verdict (the guard-enabled hot path)."""
        message = entry.message
        action = entry.action
        obs = self.indexer.obs
        rung = (int(self.overload.state) if self.overload is not None
                else self.indexer.current_rung)
        if action is GuardAction.QUARANTINE:
            # Custody is already durable (the guard fsynced the
            # quarantine log before returning the verdict); account the
            # refusal exactly like a shed for quality purposes.
            if obs.tracer is not None:
                obs.tracer.event(message.msg_id,
                                 IngestOutcome.QUARANTINED.value,
                                 rung=rung, reason=entry.reason)
            if obs.audit is not None:
                obs.audit.record_refusal(
                    message.msg_id, IngestOutcome.QUARANTINED, rung)
            if obs.quality is not None:
                obs.quality.note_shed(message)
            return None
        if action is GuardAction.BUFFERED:
            # Held for reordering — not refused, so no audit record;
            # the eventual release produces the real decision.
            if obs.tracer is not None:
                obs.tracer.event(message.msg_id, "buffered", rung=rung)
            return None
        if action is GuardAction.LATE:
            # The deterministic late-path: record the verdict (the
            # placement record supersedes it with late_arrival=True),
            # then ingest immediately — the engine's arrival floor
            # keeps pool eviction ordering intact.
            if obs.tracer is not None:
                obs.tracer.event(message.msg_id,
                                 IngestOutcome.LATE.value, rung=rung)
            if obs.audit is not None:
                obs.audit.record_refusal(
                    message.msg_id, IngestOutcome.LATE, rung)
            return self._ingest_admitted(message, now)
        fold_hint = ((entry.bundle_id, entry.duplicate_of)
                     if action is GuardAction.FOLD else None)
        return self._ingest_admitted(message, now, fold_hint=fold_hint)

    def _ingest_admitted(self, message: Message, now: "float | None", *,
                         fold_hint: "tuple[int, int] | None" = None,
                         ) -> "IngestResult | None":
        if self.overload is not None:
            return self._ingest_regulated_arrival(message, now, fold_hint)
        return self._ingest_supervised(message, fold_hint)

    def _ingest_regulated_arrival(
            self, message: Message,
            now: "float | None",
            fold_hint: "tuple[int, int] | None" = None,
            ) -> "IngestResult | None":
        ctl = self.overload
        assert ctl is not None
        arrival = ctl.now(now)
        # Backlog first: deferred messages whose tokens have accrued are
        # ingested before the new arrival, preserving stream order.
        # (A deferred message loses its fold hint by design: the target
        # bundle may be gone by release time, so it degrades to a full
        # ingest rather than a stale fold.)
        for queued in ctl.release(arrival):
            self._ingest_in_mode(queued)
        verdict = ctl.offer(message, arrival)
        if verdict is Admission.ADMITTED:
            return self._ingest_in_mode(message, fold_hint)
        # A refused arrival never reaches the pipeline, so a sampled
        # trace of it is a span-less outcome record; the audit log keeps
        # the refusal with the rung that refused it.
        obs = self.indexer.obs
        outcome = (IngestOutcome.SHED if verdict is Admission.DROPPED
                   else IngestOutcome.DEFERRED)
        rung = int(ctl.state)
        if obs.tracer is not None:
            obs.tracer.event(message.msg_id, outcome.value, rung=rung)
        if obs.audit is not None:
            obs.audit.record_refusal(message.msg_id, outcome, rung)
        if obs.quality is not None and verdict is Admission.DROPPED:
            # A dropped arrival can never yield an edge; its ground
            # truth still counts against ret.
            obs.quality.note_shed(message)
        return None

    def _ingest_in_mode(self, message: Message,
                        fold_hint: "tuple[int, int] | None" = None,
                        ) -> "IngestResult | None":
        """One regulated ingest: apply the rung's knobs, time it."""
        ctl = self.overload
        assert ctl is not None
        state = ctl.apply_mode(self.indexer)
        started = time.perf_counter()
        result = self._ingest_supervised(message, fold_hint)
        ctl.note_ingest(state, time.perf_counter() - started,
                        indexed=result is not None)
        return result

    def _ingest_supervised(self, message: Message,
                           fold_hint: "tuple[int, int] | None" = None,
                           ) -> "IngestResult | None":
        """The retry/poison loop shared by both ingest paths."""
        attempt = 0
        started = time.perf_counter()
        try:
            return self._ingest_with_retries(message, attempt, fold_hint)
        finally:
            self._latency_hist.observe(time.perf_counter() - started)
            if self.telemetry is not None:
                self.telemetry.tick()

    def _ingest_with_retries(self, message: Message, attempt: int,
                             fold_hint: "tuple[int, int] | None" = None,
                             ) -> "IngestResult | None":
        while True:
            seq_before = self.journaled.last_applied_seq
            try:
                if fold_hint is not None:
                    # The fold hint must be on disk before the WAL
                    # record it explains: a crash between the two leaves
                    # a hint without a record (harmless) but never a
                    # record without its hint (replay divergence).
                    assert self.guard is not None
                    bundle_id, duplicate_of = fold_hint
                    self.guard.record_fold(message.msg_id, bundle_id,
                                           duplicate_of)
                    result = self.journaled.ingest_folded(
                        message, bundle_id, duplicate_of)
                else:
                    result = self.journaled.ingest(message)
                break
            except _POISON_ERRORS as exc:
                self.stats.dead_lettered += 1
                self.dead_letters.append("index-rejected", exc, message)
                return None
            except _TRANSIENT_ERRORS as exc:
                if self.journaled.last_applied_seq > seq_before:
                    # The message itself was journaled and indexed; only
                    # the trailing checkpoint failed.  Retrying the ingest
                    # would double-apply — defer the checkpoint instead
                    # (the next ingest past the threshold re-triggers it).
                    self.stats.deferred_checkpoints += 1
                    result = self.journaled.last_result
                    break
                attempt += 1
                if attempt > self.max_retries:
                    raise RetryExhaustedError(
                        f"ingest of message {message.msg_id} failed after "
                        f"{self.max_retries} retries: {exc}") from exc
                delay = self.backoff_base * (
                    self.backoff_factor ** (attempt - 1))
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                self._sleep(delay)
        self.stats.ingested += 1
        if self.guard is not None:
            # Teach the guard where this message landed so future
            # near-duplicates of it fold into the same bundle.
            self.guard.note_result(message, result.bundle_id)
        self._maybe_shed()
        return result

    def ingest_raw(self, msg_id: object, user: object, date: object,
                   text: object, *, event_id: object = None,
                   parent_id: object = None) -> "IngestResult | None":
        """Parse an untrusted raw record, then ingest it.

        Malformed fields (the poison a real crawl feed produces) land in
        the dead-letter queue with a reason instead of raising.  Raw
        ``bytes`` text is decoded strictly as UTF-8, so mojibake from a
        broken crawler dead-letters instead of being indexed as its
        ``repr``.
        """
        try:
            if isinstance(text, (bytes, bytearray)):
                text = bytes(text).decode("utf-8")
            message = parse_message(
                int(msg_id),  # type: ignore[arg-type]
                str(user),
                float(date),  # type: ignore[arg-type]
                str(text),
                event_id=int(event_id) if event_id not in (None, "") else None,
                parent_id=(int(parent_id)
                           if parent_id not in (None, "") else None))
        except _POISON_ERRORS as exc:
            self.stats.dead_lettered += 1
            self.dead_letters.append(
                "parse-failed", exc,
                (msg_id, user, date, text, event_id, parent_id))
            return None
        return self.ingest(message)

    def ingest_stream(self, records: Iterable[Any], *,
                      drain_backlog: bool = True) -> int:
        """Drive a mixed stream of :class:`Message` / raw tuples to the end.

        Returns the number of messages actually indexed; everything else
        is accounted for in :attr:`stats`, the dead-letter queue and
        (with load regulation) the overload controller's admission
        stats.  With regulation enabled the deferred backlog is drained
        at end of stream unless ``drain_backlog=False``.
        """
        before = self.stats.ingested
        for record in records:
            if isinstance(record, Message):
                self.ingest(record)
            elif isinstance(record, (tuple, list)) and len(record) >= 4:
                self.ingest_raw(*record[:4])
            else:
                self.stats.dead_lettered += 1
                self.dead_letters.append(
                    "unrecognized-record",
                    f"expected Message or >=4-tuple, got {type(record).__name__}",
                    record)
        if drain_backlog:
            self.flush_guard()
            self.drain_backlog()
        return self.stats.ingested - before

    def flush_guard(self) -> int:
        """Ingest everything still held in the guard's reorder buffer.

        Returns how many buffered messages were actually indexed.  A
        no-op without a guard.
        """
        if self.guard is None:
            return 0
        indexed = 0
        for entry in self.guard.flush():
            if self._ingest_screened(entry, None) is not None:
                indexed += 1
        return indexed

    def drain_backlog(self) -> int:
        """Ingest everything still deferred in the admission backlog.

        Returns how many backlog messages were actually indexed.  A
        no-op without load regulation.
        """
        if self.overload is None:
            return 0
        indexed = 0
        for queued in self.overload.drain():
            if self._ingest_in_mode(queued) is not None:
                indexed += 1
        return indexed

    def ingest_batch(self, messages: Iterable[Message], *,
                     count_only: bool = False,
                     ) -> "list[IngestResult] | int":
        """Ingest a date-ordered batch (:class:`repro.api.Indexer`).

        Shed, deferred and dead-lettered messages yield no result, so
        the returned list may be shorter than the input; with
        ``count_only=True`` only the indexed count comes back.
        """
        if count_only:
            count = 0
            for message in messages:
                if self.ingest(message) is not None:
                    count += 1
            return count
        results = []
        for message in messages:
            result = self.ingest(message)
            if result is not None:
                results.append(result)
        return results

    # -- retrieval ----------------------------------------------------------

    def search(self, raw_query: str, k: int = 10):
        """Ranked Eq. 7 retrieval over the supervised engine's pool."""
        if self._searcher is None:
            from repro.query.bundle_search import BundleSearchEngine
            self._searcher = BundleSearchEngine(self.indexer)
        return self._searcher.search(raw_query, k=k)

    def snapshot(self):
        """The supervised engine's memory accounting."""
        return self.indexer.snapshot()

    def edge_pairs(self) -> set[tuple[int, int]]:
        """The supervised engine's cumulative edge ledger."""
        return self.indexer.edge_pairs()

    def health_report(self) -> "HealthReport | None":
        """The overload controller's snapshot (``None`` unregulated)."""
        if self.overload is None:
            return None
        return self.overload.health_report()

    # -- degraded mode -------------------------------------------------------

    def _maybe_shed(self) -> None:
        if self.high_watermark_bytes is None:
            return
        engine = self.journaled.indexer
        usage = engine.pool.approximate_memory_bytes()
        if usage < self.high_watermark_bytes:
            return
        self.stats.degraded_entries += 1
        target = self.low_watermark_bytes
        assert target is not None
        audit = engine.obs.audit
        events = [] if audit is not None else None
        shed, bytes_shed = engine.pool.shed(
            engine.current_date, target_bytes=target,
            summary_index=engine.summary_index, sink=engine.store,
            collect=events)
        if audit is not None and events:
            audit.record_evictions(events, rung=engine.current_rung)
        self.stats.shed_bundles += shed
        self.stats.shed_bytes += bytes_shed

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the supervised indexer (final checkpoint included)."""
        self.flush_guard()
        if self.guard is not None:
            self.guard.close()
        if self.telemetry is not None:
            self.telemetry.close()
        self._close_audit()
        self.journaled.close()

    def _close_audit(self) -> None:
        audit = self.journaled.indexer.obs.audit
        if audit is not None:
            audit.close()

    def __enter__(self) -> "ResilientIndexer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        exc_type = exc_info[0] if exc_info else None
        if self.guard is not None:
            if exc_type is None:
                self.flush_guard()
            # Crashing out: keep the reorder buffer for recovery (its
            # members are unacknowledged); just make the logs durable.
            self.guard.close()
        if self.telemetry is not None:
            self.telemetry.close()
        self._close_audit()
        self.journaled.__exit__(exc_type, *exc_info[1:])
