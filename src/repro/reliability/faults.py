"""Deterministic fault injection for the storage layer.

A :class:`FaultInjector` installs a :class:`FaultyFileSystem` (see
:mod:`repro.reliability.fsio`) for the duration of a ``with`` block, so
every durable operation the storage layer performs — WAL appends, fsyncs,
snapshot renames, journal unlinks — passes a checkpoint where a scheduled
:class:`Fault` can fire:

* ``kind="error"``        — raise ``OSError`` (``ENOSPC`` by default), the
  transient failure a supervisor is allowed to retry;
* ``kind="torn"``         — write only the first ``keep_bytes`` bytes of the
  record to disk, then crash (a torn tail);
* ``kind="crash_before"`` — simulated process death *before* the operation
  takes effect (an un-fsynced buffer is lost);
* ``kind="crash_after"``  — the operation completes durably, *then* the
  process dies.

A simulated crash raises :class:`SimulatedCrash` and latches the injector:
every subsequent faulty-filesystem operation also raises, exactly like a
dead process, until the ``with`` block exits.  Files opened for writing
under the injector buffer in memory and reach the OS only on
flush/fsync/clean close, so data that was never synced really is lost at a
crash — the property crash-recovery tests need to be honest.

Faults are matched by operation name (``write`` / ``fsync`` / ``replace``
/ ``unlink`` / ``open``), an optional path substring, and a 1-based
occurrence count, giving fully deterministic schedules::

    plan = [Fault(op="write", nth=3, kind="torn", keep_bytes=7,
                  path_part=".wal")]
    with FaultInjector(plan):
        ...   # the third WAL write tears mid-record and "crashes"
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.reliability.fsio import (FileSystem, filesystem, set_filesystem)

__all__ = ["Fault", "FaultInjector", "FaultyFile", "FaultyFileSystem",
           "SimulatedCrash"]

_KINDS = frozenset({"error", "torn", "crash_before", "crash_after"})


class SimulatedCrash(BaseException):
    """The injected process death.

    Derives from :class:`BaseException` so no ``except Exception`` retry or
    cleanup path in the code under test can accidentally swallow it — a real
    ``kill -9`` cannot be caught either.
    """


@dataclass
class Fault:
    """One scheduled failure.

    Parameters
    ----------
    op:
        Operation to intercept: ``"write"``, ``"fsync"``, ``"replace"``,
        ``"unlink"`` or ``"open"``.
    nth:
        Fire on the nth matching occurrence (1-based).
    kind:
        ``"error"``, ``"torn"``, ``"crash_before"`` or ``"crash_after"``.
    path_part:
        Only occurrences whose path contains this substring are counted
        (``None`` matches every path).
    keep_bytes:
        For ``"torn"``: how many bytes of the attempted write reach disk.
    errno_code:
        For ``"error"``: the ``OSError`` errno raised (default ``ENOSPC``).
    """

    op: str
    nth: int = 1
    kind: str = "error"
    path_part: "str | None" = None
    keep_bytes: int = 0
    errno_code: int = errno.ENOSPC
    seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1, got {self.nth}")

    def matches(self, op: str, path: "str | os.PathLike[str]") -> bool:
        """Whether this occurrence should be counted against the fault."""
        if self.fired or op != self.op:
            return False
        return self.path_part is None or self.path_part in str(path)


class FaultInjector:
    """Schedules faults and swaps the faulty filesystem in and out."""

    def __init__(self, faults: "list[Fault] | None" = None) -> None:
        self.faults = list(faults or [])
        self.crashed = False
        self.fired: list[Fault] = []
        self._previous: "FileSystem | None" = None

    # -- context management -------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        self._previous = set_filesystem(FaultyFileSystem(self))
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._previous is not None:
            set_filesystem(self._previous)
            self._previous = None

    # -- fault matching -----------------------------------------------------

    def check(self, op: str, path: "str | os.PathLike[str]") -> "Fault | None":
        """Count one occurrence of ``op`` on ``path``; maybe fail.

        Raises for ``error`` / ``crash_before`` faults; returns the fault
        for ``torn`` / ``crash_after`` so the caller can complete (part of)
        the operation first.  After a crash every call raises.
        """
        if self.crashed:
            raise SimulatedCrash(f"{op} on dead process")
        for fault in self.faults:
            if not fault.matches(op, path):
                continue
            fault.seen += 1
            if fault.seen < fault.nth:
                continue
            fault.fired = True
            self.fired.append(fault)
            if fault.kind == "error":
                raise OSError(fault.errno_code,
                              f"injected {errno.errorcode.get(fault.errno_code, '?')}",
                              str(path))
            if fault.kind == "crash_before":
                self.crash(f"before {op} {path}")
            return fault  # torn / crash_after: caller finishes the job
        return None

    def crash(self, reason: str = "injected crash") -> None:
        """Latch the crashed state and raise :class:`SimulatedCrash`."""
        self.crashed = True
        raise SimulatedCrash(reason)


class FaultyFile:
    """A write handle that buffers until flush and can tear or die.

    Wraps an *unbuffered* binary file so nothing hidden gets flushed at
    garbage collection after a simulated crash — un-synced data stays lost.
    Implements the small file surface the storage layer uses: ``write``,
    ``flush``, ``fileno``, ``close`` and context management.
    """

    def __init__(self, path: "str | os.PathLike[str]", mode: str,
                 encoding: "str | None", injector: FaultInjector) -> None:
        self.path = Path(path)
        self._injector = injector
        self._text = "b" not in mode
        self._encoding = encoding or "utf-8"
        raw_mode = mode.replace("b", "") + "b"
        self._raw = open(self.path, raw_mode, buffering=0)
        self._pending: list[bytes] = []
        self._closed = False

    # -- helpers ------------------------------------------------------------

    def _encode(self, data: "str | bytes") -> bytes:
        if isinstance(data, str):
            return data.encode(self._encoding)
        return bytes(data)

    def _drain(self) -> None:
        """Push the in-memory buffer down to the OS."""
        for chunk in self._pending:
            self._raw.write(chunk)
        self._pending.clear()

    # -- file protocol ------------------------------------------------------

    def write(self, data: "str | bytes") -> int:
        payload = self._encode(data)
        fault = self._injector.check("write", self.path)
        if fault is not None and fault.kind == "torn":
            self._drain()
            self._raw.write(payload[:fault.keep_bytes])
            self._injector.crash(f"torn write on {self.path}")
        self._pending.append(payload)
        if fault is not None:  # crash_after: data durable, then death
            self._drain()
            self._injector.crash(f"after write on {self.path}")
        return len(data)

    def flush(self) -> None:
        if self._injector.crashed:
            raise SimulatedCrash(f"flush on dead {self.path}")
        self._drain()

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._injector.crashed:
            self._pending.clear()  # the crash already lost this data
            self._raw.close()
            return
        self._drain()
        self._raw.close()

    def __enter__(self) -> "FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            if self._injector.crashed:
                self._pending.clear()
            if not self._raw.closed:
                self._raw.close()
        except Exception:
            pass


class FaultyFileSystem(FileSystem):
    """Routes every durable operation through a :class:`FaultInjector`."""

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def open(self, path: "str | os.PathLike[str]", mode: str = "r", *,
             encoding: "str | None" = None) -> IO[Any]:
        if "r" in mode and "+" not in mode:
            # Reads are not fault targets (recovery happens post-crash),
            # but a dead process cannot read either.
            if self.injector.crashed:
                raise SimulatedCrash(f"open {path} on dead process")
            return Path(path).open(mode, encoding=encoding)
        self.injector.check("open", path)
        return FaultyFile(path, mode, encoding, self.injector)  # type: ignore[return-value]

    def fsync(self, handle: IO[Any]) -> None:
        path = getattr(handle, "path", getattr(handle, "name", "?"))
        fault = self.injector.check("fsync", path)
        handle.flush()
        os.fsync(handle.fileno())
        if fault is not None:  # crash_after (torn is write-only)
            self.injector.crash(f"after fsync {path}")

    def replace(self, src: "str | os.PathLike[str]",
                dst: "str | os.PathLike[str]") -> None:
        fault = self.injector.check("replace", dst)
        os.replace(src, dst)
        if fault is not None:
            self.injector.crash(f"after replace {dst}")

    def unlink(self, path: "str | os.PathLike[str]", *,
               missing_ok: bool = False) -> None:
        fault = self.injector.check("unlink", path)
        Path(path).unlink(missing_ok=missing_ok)
        if fault is not None:
            self.injector.crash(f"after unlink {path}")
