"""Offline integrity scanning and repair (the ``repro doctor`` command).

The storage layer's readers are deliberately conservative at runtime —
replay skips what it can prove is damaged, the bundle store refuses to
open over corruption unless told to tolerate it.  The doctor is the
operator-facing complement: it *inventories* damage across all three
durable artifacts (WAL, snapshot, bundle-store segments) without
mutating anything, and with ``repair=True`` rewrites each damaged file
down to its provably-valid records (atomically, via temp file + rename)
so the engine can load again.  See ``docs/operations.md`` for the
runbook.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import StorageError
from repro.reliability.fsio import filesystem
from repro.storage.wal import _parse_line

__all__ = [
    "WalScan",
    "SnapshotScan",
    "SegmentScan",
    "StoreScan",
    "QuarantineScan",
    "RepairResult",
    "scan_wal",
    "scan_snapshot",
    "scan_store",
    "scan_quarantine",
    "repair_wal",
    "repair_store",
    "repair_quarantine",
    "quarantine_snapshot",
]

_SEGMENT_GLOB = "segment-*.log"


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class WalScan:
    """Findings for one journal file."""

    path: Path
    exists: bool = True
    total_lines: int = 0
    valid_records: int = 0
    legacy_records: int = 0
    corrupt_lines: list[int] = field(default_factory=list)  # 1-based
    torn_tail: bool = False

    @property
    def healthy(self) -> bool:
        return not self.corrupt_lines

    def describe(self) -> str:
        if not self.exists:
            return "missing (nothing to recover — fine after a checkpoint)"
        if self.healthy:
            legacy = (f", {self.legacy_records} legacy(v0)"
                      if self.legacy_records else "")
            return f"ok — {self.valid_records} records{legacy}"
        kind = "torn tail" if self.torn_tail else "corrupt records"
        return (f"{kind}: {len(self.corrupt_lines)} bad line(s) at "
                f"{self.corrupt_lines[:5]}, {self.valid_records} recoverable")


@dataclass(slots=True)
class SnapshotScan:
    """Findings for one snapshot file."""

    path: Path
    exists: bool = True
    ok: bool = False
    error: str = ""
    bundles: int = 0
    applied_seq: "int | None" = None

    @property
    def healthy(self) -> bool:
        return self.ok or not self.exists

    def describe(self) -> str:
        if not self.exists:
            return "missing (recovery will replay the journal from scratch)"
        if self.ok:
            seq = ("" if self.applied_seq is None
                   else f", applied_seq={self.applied_seq}")
            return f"ok — {self.bundles} bundles{seq}"
        return f"unloadable: {self.error}"


@dataclass(slots=True)
class SegmentScan:
    """Findings for one bundle-store segment."""

    path: Path
    valid_records: int = 0
    corrupt_lines: list[int] = field(default_factory=list)  # 1-based

    @property
    def healthy(self) -> bool:
        return not self.corrupt_lines


@dataclass(slots=True)
class StoreScan:
    """Findings for a bundle-store directory."""

    directory: Path
    exists: bool = True
    segments: list[SegmentScan] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return all(segment.healthy for segment in self.segments)

    @property
    def valid_records(self) -> int:
        return sum(segment.valid_records for segment in self.segments)

    @property
    def corrupt_records(self) -> int:
        return sum(len(segment.corrupt_lines) for segment in self.segments)

    def describe(self) -> str:
        if not self.exists:
            return "missing"
        if self.healthy:
            return (f"ok — {self.valid_records} records in "
                    f"{len(self.segments)} segment(s)")
        bad = [s.path.name for s in self.segments if not s.healthy]
        return (f"{self.corrupt_records} corrupt record(s) in "
                f"{', '.join(bad)}, {self.valid_records} recoverable")


@dataclass(slots=True)
class QuarantineScan:
    """Findings for one ingest-guard quarantine log."""

    path: Path
    exists: bool = True
    total_lines: int = 0
    valid_records: int = 0
    corrupt_lines: list[int] = field(default_factory=list)  # 1-based
    torn_tail: bool = False

    @property
    def healthy(self) -> bool:
        return not self.corrupt_lines

    def describe(self) -> str:
        if not self.exists:
            return "missing (nothing quarantined — fine)"
        if self.healthy:
            return f"ok — {self.valid_records} quarantined message(s)"
        kind = "torn tail" if self.torn_tail else "corrupt records"
        return (f"{kind}: {len(self.corrupt_lines)} bad line(s) at "
                f"{self.corrupt_lines[:5]}, {self.valid_records} recoverable")


@dataclass(slots=True)
class RepairResult:
    """Outcome of one repair pass over a file."""

    path: Path
    kept_records: int
    dropped_lines: int
    bytes_before: int
    bytes_after: int


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------


def _wal_line_ok(line: str) -> "tuple[bool, bool]":
    """``(valid, legacy)`` for one newline-stripped journal line."""
    parsed = _parse_line(line)
    if parsed is None:
        return False, False
    return True, parsed[2]


def scan_wal(path: "str | os.PathLike[str]") -> WalScan:
    """Inventory a journal file without mutating it."""
    source = Path(path)
    report = WalScan(path=source)
    if not source.exists():
        report.exists = False
        return report
    last_bad_run = 0
    with source.open("r", encoding="utf-8", errors="replace",
                     newline="") as handle:
        for number, line in enumerate(handle, start=1):
            report.total_lines += 1
            if not line.endswith("\n"):
                report.corrupt_lines.append(number)
                last_bad_run += 1
                continue
            valid, legacy = _wal_line_ok(line[:-1])
            if not valid:
                report.corrupt_lines.append(number)
                last_bad_run += 1
                continue
            last_bad_run = 0
            report.valid_records += 1
            if legacy:
                report.legacy_records += 1
    report.torn_tail = last_bad_run > 0
    return report


def scan_snapshot(path: "str | os.PathLike[str]") -> SnapshotScan:
    """Check that a snapshot (plus metadata) still loads."""
    from repro.storage.snapshot import load_snapshot_with_meta

    source = Path(path)
    report = SnapshotScan(path=source)
    if not source.exists():
        report.exists = False
        return report
    try:
        indexer, meta = load_snapshot_with_meta(source)
    except StorageError as exc:
        report.error = str(exc)
        return report
    report.ok = True
    report.bundles = len(indexer.pool)
    applied = meta.get("applied_seq")
    report.applied_seq = int(applied) if applied is not None else None
    return report


def _store_record_ok(record: bytes) -> bool:
    """CRC check for one bundle-store record (``<crc:8 hex> <json>``)."""
    if len(record) < 10 or record[8:9] != b" ":
        return False
    stated = record[:8].decode("ascii", errors="replace")
    actual = f"{zlib.crc32(record[9:]) & 0xFFFFFFFF:08x}"
    return stated == actual


def scan_store(directory: "str | os.PathLike[str]") -> StoreScan:
    """Inventory every segment of a bundle-store directory."""
    root = Path(directory)
    report = StoreScan(directory=root)
    if not root.is_dir():
        report.exists = False
        return report
    for segment_path in sorted(root.glob(_SEGMENT_GLOB)):
        segment = SegmentScan(path=segment_path)
        with segment_path.open("rb") as handle:
            for number, line in enumerate(handle, start=1):
                if not line.endswith(b"\n"):
                    segment.corrupt_lines.append(number)
                    continue
                record = line[:-1]
                if not record:
                    continue  # blank line: harmless padding
                if _store_record_ok(record):
                    segment.valid_records += 1
                else:
                    segment.corrupt_lines.append(number)
        report.segments.append(segment)
    return report


def _quarantine_line_ok(line: str) -> bool:
    """Validate one newline-stripped quarantine-log line end to end."""
    from repro.reliability.guard import parse_quarantine_payload
    from repro.reliability.fsio import check_frame

    payload = check_frame(line)
    if payload is None:
        return False
    return parse_quarantine_payload(payload) is not None


def scan_quarantine(path: "str | os.PathLike[str]") -> QuarantineScan:
    """Inventory an ingest-guard quarantine log without mutating it."""
    source = Path(path)
    report = QuarantineScan(path=source)
    if not source.exists():
        report.exists = False
        return report
    last_bad_run = 0
    with source.open("r", encoding="utf-8", errors="replace",
                     newline="") as handle:
        for number, line in enumerate(handle, start=1):
            report.total_lines += 1
            if not line.endswith("\n") or not _quarantine_line_ok(line[:-1]):
                report.corrupt_lines.append(number)
                last_bad_run += 1
                continue
            last_bad_run = 0
            report.valid_records += 1
    report.torn_tail = last_bad_run > 0
    return report


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------


def _rewrite_keeping(path: Path, keep: "list[bytes]",
                     kept_records: int, dropped: int) -> RepairResult:
    """Atomically rewrite ``path`` with only the lines in ``keep``."""
    before = path.stat().st_size
    tmp = path.with_suffix(path.suffix + ".repair")
    with filesystem().open(tmp, "wb") as handle:
        for line in keep:
            handle.write(line)
        filesystem().fsync(handle)
    filesystem().replace(tmp, path)
    return RepairResult(path=path, kept_records=kept_records,
                        dropped_lines=dropped, bytes_before=before,
                        bytes_after=path.stat().st_size)


def repair_wal(path: "str | os.PathLike[str]") -> RepairResult:
    """Drop every unprovable journal line, keeping all valid records.

    A pure torn tail is thereby truncated to the last valid record;
    interior damage (a bit-flipped archive) is compacted out.  Valid
    records keep their original bytes, so legacy (v0) lines survive
    untouched.
    """
    source = Path(path)
    keep: list[bytes] = []
    kept = dropped = 0
    with source.open("rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                dropped += 1
                continue
            try:
                text = line[:-1].decode("utf-8")
            except UnicodeDecodeError:
                dropped += 1
                continue
            valid, _ = _wal_line_ok(text)
            if valid:
                keep.append(line)
                kept += 1
            else:
                dropped += 1
    return _rewrite_keeping(source, keep, kept, dropped)


def repair_quarantine(path: "str | os.PathLike[str]") -> RepairResult:
    """Truncate a torn quarantine-log tail down to its valid records.

    Every surviving record keeps its original bytes, so the restored
    log replays byte-identically; only unprovable lines (torn tail,
    bit-flips) are dropped.
    """
    source = Path(path)
    keep: list[bytes] = []
    kept = dropped = 0
    with source.open("rb") as handle:
        for line in handle:
            if not line.endswith(b"\n"):
                dropped += 1
                continue
            try:
                text = line[:-1].decode("utf-8")
            except UnicodeDecodeError:
                dropped += 1
                continue
            if _quarantine_line_ok(text):
                keep.append(line)
                kept += 1
            else:
                dropped += 1
    return _rewrite_keeping(source, keep, kept, dropped)


def repair_store(directory: "str | os.PathLike[str]") -> list[RepairResult]:
    """Compact every damaged segment down to its CRC-valid records."""
    results: list[RepairResult] = []
    for segment_path in sorted(Path(directory).glob(_SEGMENT_GLOB)):
        keep: list[bytes] = []
        kept = dropped = 0
        with segment_path.open("rb") as handle:
            for line in handle:
                record = line.rstrip(b"\n")
                if line.endswith(b"\n") and (not record
                                             or _store_record_ok(record)):
                    keep.append(line)
                    if record:
                        kept += 1
                else:
                    dropped += 1
        if dropped:
            results.append(
                _rewrite_keeping(segment_path, keep, kept, dropped))
    return results


def quarantine_snapshot(path: "str | os.PathLike[str]") -> Path:
    """Move an unloadable snapshot (and its sidecar) out of the way.

    Recovery then falls back to a fresh engine plus full journal replay.
    Returns the quarantine path holding the damaged file.
    """
    source = Path(path)
    quarantined = source.with_suffix(source.suffix + ".corrupt")
    filesystem().replace(source, quarantined)
    sidecar = source.with_suffix(source.suffix + ".seq")
    if sidecar.exists():
        filesystem().replace(
            sidecar, sidecar.with_suffix(sidecar.suffix + ".corrupt"))
    return quarantined
