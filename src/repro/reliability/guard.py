"""Adversarial ingest hardening: the guard stage in front of the indexer.

Production micro-blog ingest faces hostile traffic the paper's organic
cascades never model: spam floods, near-duplicate storms, hashtag
hijacking, and clock-skewed / out-of-order arrivals.  The
:class:`IngestGuard` screens every arrival *before* it reaches the
resilient indexer and returns one verdict per message:

``PASS``
    Clean, in-order traffic — full Algorithm 1 ingest.
``FOLD``
    An undeclared near-duplicate (MinHash/LSH screen, confirmed by
    exact Jaccard).  Folded straight into the bundle holding its
    original — no candidate scoring, and the decision is journaled in a
    CRC-framed *fold log* so WAL replay reproduces the placement.
``QUARANTINE``
    Probable spam (per-user duplicate-heavy behaviour with decayed
    priors) or an impossible future timestamp.  Quarantine is *not*
    drop: the full message is appended — fsynced before the verdict is
    returned — to a crash-safe, CRC-framed quarantine log next to the
    DLQ, replayable by ``repro doctor``.
``LATE``
    Dated before the reorder watermark.  Ingested immediately through a
    deterministic late-path (the engine floors the receiving bundle's
    ``last_update`` at the stream clock) instead of corrupting pool
    eviction order.
``BUFFERED``
    Out of order but within the reorder window: held in a bounded
    min-heap and released in ``(date, msg_id)`` order once the
    watermark passes (or the buffer overflows / flushes).

The guard is O(1)-ish per message — one MinHash signature, a band-dict
probe and two counter updates — so it survives on the hot path (cf.
Asadi & Lin's real-time search budgets).  The per-user spam score decays
periodically so reformed users drift back to neutral, and the whole
screen exposes a *toxicity* fraction the overload controller feeds into
its degradation ladder: REDUCED mode tightens the guard thresholds
before honest traffic is shed.
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import IO, Any, Iterator, NamedTuple

from repro.core.credibility import CredibilityTracker
from repro.core.dedup import DuplicateDetector
from repro.core.message import Message, parse_message
from repro.reliability.fsio import (check_frame, escape_field, filesystem,
                                    frame_line, unescape_field)

__all__ = [
    "GuardAction",
    "GuardConfig",
    "GuardStats",
    "Screened",
    "QuarantineLog",
    "FoldLog",
    "IngestGuard",
    "parse_quarantine_payload",
]


class GuardAction(str, Enum):
    """The guard's verdict vocabulary (mirrors audit outcomes)."""

    PASS = "pass"
    FOLD = "fold"
    QUARANTINE = "quarantine"
    LATE = "late"
    BUFFERED = "buffered"


class Screened(NamedTuple):
    """One screened arrival: the message plus its verdict.

    ``bundle_id`` is the fold target and ``duplicate_of`` the member it
    near-duplicates (``FOLD`` only — the fold path reuses the origin's
    keywords instead of re-analyzing copied text); ``reason`` names the
    quarantine cause (``"spam"`` / ``"clock-skew"``).
    """

    message: Message
    action: GuardAction
    bundle_id: "int | None" = None
    reason: "str | None" = None
    duplicate_of: "int | None" = None


@dataclass(frozen=True, slots=True)
class GuardConfig:
    """Tuning knobs for the ingest guard.

    The ``tightened_*`` thresholds replace their normal counterparts
    while the overload ladder sits at REDUCED or worse — the guard gets
    *more* suspicious exactly when capacity is scarce, so hostile
    traffic is folded/quarantined before honest traffic is shed.
    """

    #: Exact-Jaccard confirmation threshold for the near-dup screen.
    dedup_threshold: float = 0.8
    #: 32 hashes in 8 bands of 4 rows: candidate recall at the 0.8
    #: threshold is still ≈0.985 per registered near-copy (and every
    #: candidate is confirmed against exact Jaccard anyway), at half
    #: the per-message signature cost of the classic 64/16 layout —
    #: the guard screens *every* arrival, so this is the hot path.
    dedup_num_hashes: int = 32
    dedup_bands: int = 8
    shingle_width: int = 3
    #: Quarantine a user's messages once their spam score passes this …
    spam_threshold: float = 0.6
    #: … but only after this much observed message mass (cold users are
    #: at the neutral 0.5 and must not be judged on nothing).
    spam_min_messages: float = 8.0
    spam_prior: float = 4.0
    #: Decay the per-user counters every N screens by this factor.
    decay_every: int = 1024
    decay_factor: float = 0.5
    #: Reordering window in stream seconds: arrivals dated within
    #: ``max_seen - reorder_window`` are buffered and re-emitted in
    #: date order; older ones take the deterministic late-path.
    reorder_window: float = 900.0
    reorder_capacity: int = 2048
    #: A date further than this *ahead* of the stream clock is a clock
    #: bomb (it would drag ``current_date`` forward and mass-evict
    #: honest bundles) — quarantined, and the watermark never advances.
    max_future_skew: float = 6 * 3600.0
    tightened_dedup_threshold: float = 0.65
    tightened_spam_threshold: float = 0.45
    #: Sliding window (messages) for the toxicity fraction.
    toxicity_window: int = 256

    def __post_init__(self) -> None:
        for name in ("dedup_threshold", "spam_threshold",
                     "tightened_dedup_threshold",
                     "tightened_spam_threshold"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        if self.tightened_dedup_threshold > self.dedup_threshold:
            raise ValueError("tightened_dedup_threshold must not exceed "
                             "dedup_threshold (tightening means catching "
                             "more duplicates)")
        if self.tightened_spam_threshold > self.spam_threshold:
            raise ValueError("tightened_spam_threshold must not exceed "
                             "spam_threshold")
        for name in ("dedup_num_hashes", "dedup_bands", "shingle_width",
                     "decay_every", "reorder_capacity", "toxicity_window"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("spam_min_messages", "spam_prior", "reorder_window",
                     "max_future_skew"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if not 0.0 < self.decay_factor <= 1.0:
            raise ValueError(f"decay_factor must be in (0, 1], "
                             f"got {self.decay_factor}")


@dataclass(slots=True)
class GuardStats:
    """Verdict counters; conservation is checked by :meth:`reconciles`."""

    screened: int = 0
    passed: int = 0
    folded: int = 0
    quarantined: int = 0
    late: int = 0
    buffered: int = 0      # ever entered the reorder buffer
    released: int = 0      # left the buffer (reordered into the stream)
    decays: int = 0

    def reconciles(self, buffer_depth: int) -> bool:
        """Every screened arrival is accounted for exactly once."""
        return self.screened == (self.passed + self.folded
                                 + self.quarantined + self.late
                                 + buffer_depth)


def parse_quarantine_payload(payload: str) -> "tuple[Message, str] | None":
    """Decode one quarantine-log payload; ``None`` if malformed.

    Shared with ``repro doctor``'s quarantine scan so the CLI and the
    guard can never disagree about what a valid record is.
    """
    fields = payload.split("\t", 6)
    if len(fields) != 7:
        return None
    msg_id, user, date, event, parent, text, reason = fields
    try:
        message = parse_message(
            int(msg_id), user, float(date), unescape_field(text),
            event_id=int(event) if event else None,
            parent_id=int(parent) if parent else None)
    except ValueError:
        return None
    return message, unescape_field(reason)


class _FramedLog:
    """Shared append-only CRC-framed log plumbing (quarantine + folds).

    ``path=None`` keeps the log memory-only (tests, ephemeral stacks).
    Appends go through the pluggable :func:`filesystem` so the fault
    injector can tear them; a failed append marks the tail dirty and the
    next append terminates the garbage line first, exactly like the WAL.
    """

    def __init__(self, path: "str | os.PathLike[str] | None") -> None:
        self.path = Path(path) if path is not None else None
        self._handle: "IO[Any] | None" = None
        self._tail_dirty = False
        self._dirty_since_sync = False
        self.appends = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = filesystem().open(self.path, "a",
                                             encoding="utf-8")

    def _append_payload(self, payload: str) -> None:
        self.appends += 1
        if self._handle is None:
            return
        try:
            if self._tail_dirty:
                self._handle.write("\n")
                self._tail_dirty = False
            self._handle.write(frame_line(payload) + "\n")
        except OSError:
            self._tail_dirty = True
            raise
        self._dirty_since_sync = True

    def sync(self) -> None:
        """Flush and fsync (no-op when memory-only or already clean)."""
        if self._handle is None or not self._dirty_since_sync:
            return
        filesystem().fsync(self._handle)
        self._dirty_since_sync = False

    def close(self) -> None:
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None


class QuarantineLog(_FramedLog):
    """Crash-safe custody log for quarantined messages.

    Quarantine is not drop: every verdict appends the *full* message —
    and is fsynced before :meth:`append` returns, because the verdict is
    the caller's acknowledgement and an acknowledged message must never
    be lost.  ``repro doctor`` replays the log to restore every
    quarantined id.
    """

    def append(self, message: Message, reason: str) -> None:
        event = "" if message.event_id is None else str(message.event_id)
        parent = ("" if message.parent_id is None
                  else str(message.parent_id))
        payload = (f"{message.msg_id}\t{message.user}\t{message.date!r}\t"
                   f"{event}\t{parent}\t{escape_field(message.text)}\t"
                   f"{escape_field(reason)}")
        self._append_payload(payload)
        self.sync()

    @staticmethod
    def replay(path: "str | os.PathLike[str]",
               ) -> "Iterator[tuple[Message, str]]":
        """Yield ``(message, reason)`` in append order, skipping damage."""
        source = Path(path)
        if not source.exists():
            return
        with source.open("r", encoding="utf-8", errors="replace",
                         newline="") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    continue  # torn tail
                payload = check_frame(line[:-1])
                if payload is None:
                    continue
                parsed = parse_quarantine_payload(payload)
                if parsed is not None:
                    yield parsed


class FoldLog(_FramedLog):
    """Durable ``msg_id → (bundle_id, duplicate_of)`` fold decisions.

    A hint is appended (and pushed to the OS) immediately *before* the
    message's WAL append, so after a process crash every WAL record that
    was live-folded has its hint on disk; a hint without a WAL record is
    harmless (the replay lookup simply never fires).  fsync piggybacks
    on the supervisor's durability boundaries rather than per-append —
    process-crash ordering only needs the write-before-write.
    """

    def append(self, msg_id: int, bundle_id: int,
               duplicate_of: int) -> None:
        self._append_payload(f"{msg_id}\t{bundle_id}\t{duplicate_of}")
        if self._handle is not None:
            self._handle.flush()

    @staticmethod
    def load(path: "str | os.PathLike[str]",
             ) -> "dict[int, tuple[int, int]]":
        """All intact hints (later entries win), skipping damage."""
        hints: "dict[int, tuple[int, int]]" = {}
        source = Path(path)
        if not source.exists():
            return hints
        with source.open("r", encoding="utf-8", errors="replace",
                         newline="") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    continue
                payload = check_frame(line[:-1])
                if payload is None:
                    continue
                fields = payload.split("\t")
                if len(fields) != 3:
                    continue
                try:
                    hints[int(fields[0])] = (int(fields[1]),
                                             int(fields[2]))
                except ValueError:
                    continue
        return hints


class IngestGuard:
    """The adversarial screen in front of :class:`ResilientIndexer`.

    :meth:`admit` turns one arrival into zero-or-more :class:`Screened`
    entries ready for ingestion *now* (reordering may release buffered
    messages ahead of it, or hold the arrival itself back).  The caller
    ingests entries in the returned order; after each successful ingest
    it reports the placement back via :meth:`note_result` so the guard
    learns which bundle future near-duplicates fold into.
    """

    def __init__(self, config: "GuardConfig | None" = None, *,
                 quarantine_path: "str | os.PathLike[str] | None" = None,
                 fold_path: "str | os.PathLike[str] | None" = None,
                 tracker: "CredibilityTracker | None" = None) -> None:
        self.config = config or GuardConfig()
        cfg = self.config
        self.detector = DuplicateDetector(
            threshold=cfg.dedup_threshold,
            num_hashes=cfg.dedup_num_hashes,
            bands=cfg.dedup_bands,
            shingle_width=cfg.shingle_width)
        self.tracker = tracker or CredibilityTracker(prior=cfg.spam_prior)
        self.quarantine = QuarantineLog(quarantine_path)
        self.folds = FoldLog(fold_path)
        self.stats = GuardStats()
        self.tightened = False
        self._buffer: "list[tuple[float, int, Message]]" = []
        self._max_seen = float("-inf")
        self._bundle_of: "dict[int, int]" = {}
        self._hostile: "deque[bool]" = deque(maxlen=cfg.toxicity_window)
        self._since_decay = 0

    # -- observability ------------------------------------------------------

    @property
    def buffer_depth(self) -> int:
        return len(self._buffer)

    def toxicity(self) -> float:
        """Hostile fraction of the last ``toxicity_window`` screens."""
        if not self._hostile:
            return 0.0
        return sum(self._hostile) / len(self._hostile)

    @property
    def watermark(self) -> float:
        return self._max_seen - self.config.reorder_window

    # -- admission ----------------------------------------------------------

    def admit(self, message: Message) -> "list[Screened]":
        """Screen one arrival; returns entries ready for ingestion now."""
        self.stats.screened += 1
        cfg = self.config
        date = message.date
        ready: "list[Screened]" = []
        if (self._max_seen != float("-inf")
                and date > self._max_seen + cfg.max_future_skew):
            ready.append(self._quarantine(message, "clock-skew"))
            return ready
        if date >= self._max_seen:
            # In order: advance the stream clock, release everything the
            # new watermark now covers (oldest first), then this one.
            self._max_seen = date
            ready.extend(self._release(self.watermark))
            ready.append(self._screen(message, late=False))
            return ready
        if date < self.watermark:
            # Too old to reorder — the deterministic late-path.
            ready.append(self._screen(message, late=True))
            return ready
        # Out of order but within the window: hold for reordering.
        heapq.heappush(self._buffer, (date, message.msg_id, message))
        self.stats.buffered += 1
        while len(self._buffer) > cfg.reorder_capacity:
            ready.append(self._pop_buffered())
        ready.append(Screened(message, GuardAction.BUFFERED))
        return ready

    def flush(self) -> "list[Screened]":
        """Release every buffered message (drain / shutdown path)."""
        ready = []
        while self._buffer:
            ready.append(self._pop_buffered())
        return ready

    def note_result(self, message: Message, bundle_id: "int | None",
                    ) -> None:
        """Learn where ``message`` landed (fold target for future dups)."""
        if bundle_id is not None:
            self._bundle_of[message.msg_id] = bundle_id

    def record_fold(self, msg_id: int, bundle_id: int,
                    duplicate_of: int) -> None:
        """Journal one fold decision (call *before* the WAL append)."""
        self.folds.append(msg_id, bundle_id, duplicate_of)

    def set_tightened(self, tightened: bool) -> None:
        """Swap normal/tightened thresholds (REDUCED-mode wiring)."""
        if tightened == self.tightened:
            return
        self.tightened = tightened
        cfg = self.config
        self.detector.threshold = (cfg.tightened_dedup_threshold
                                   if tightened else cfg.dedup_threshold)

    def sync(self) -> None:
        """Durability barrier: fsync both guard logs."""
        self.quarantine.sync()
        self.folds.sync()

    def close(self) -> None:
        self.quarantine.close()
        self.folds.close()

    # -- internals ----------------------------------------------------------

    def _release(self, watermark: float) -> "list[Screened]":
        ready = []
        while self._buffer and self._buffer[0][0] <= watermark:
            ready.append(self._pop_buffered())
        return ready

    def _pop_buffered(self) -> Screened:
        _, _, message = heapq.heappop(self._buffer)
        self.stats.released += 1
        return self._screen(message, late=False)

    def _screen(self, message: Message, *, late: bool) -> Screened:
        cfg = self.config
        self._since_decay += 1
        if self._since_decay >= cfg.decay_every:
            self.tracker.decay(cfg.decay_factor)
            self.stats.decays += 1
            self._since_decay = 0
        duplicate_of = self.detector.check_and_add(message)
        declared_rt = bool(message.rt_users)
        # An undeclared near-copy is the spam signal.  Declared RTs are
        # legitimate provenance and never count against a user.
        exposure, spam_score = self.tracker.observe_screen(
            message.user,
            duplicate=duplicate_of is not None and not declared_rt)
        spam_threshold = (cfg.tightened_spam_threshold if self.tightened
                          else cfg.spam_threshold)
        if (exposure >= cfg.spam_min_messages
                and spam_score >= spam_threshold):
            return self._quarantine(message, "spam")
        if duplicate_of is not None:
            target = self._bundle_of.get(duplicate_of)
            if target is not None:
                self.stats.folded += 1
                self._note(hostile=not declared_rt)
                return Screened(message, GuardAction.FOLD, target,
                                None, duplicate_of)
        self._note(hostile=False)
        if late:
            self.stats.late += 1
            return Screened(message, GuardAction.LATE)
        self.stats.passed += 1
        return Screened(message, GuardAction.PASS)

    def _quarantine(self, message: Message, reason: str) -> Screened:
        self.stats.quarantined += 1
        self._note(hostile=True)
        self.quarantine.append(message, reason)
        return Screened(message, GuardAction.QUARANTINE, None, reason)

    def _note(self, *, hostile: bool) -> None:
        self._hostile.append(hostile)
