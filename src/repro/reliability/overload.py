"""Overload resilience: admission control, degradation ladder, breaker.

A micro-blog indexer that falls over under a flash crowd is worse than
one that degrades: the paper's whole point (Sec. V) is keeping provenance
maintenance cheap enough to sustain stream rates, and when a surge outruns
the hardware the system must *choose* what to give up.  This module makes
that choice explicit with four cooperating pieces:

* :class:`AdmissionController` — a token-bucket rate limiter plus a
  bounded backlog queue in front of ingestion, with full accounting of
  everything admitted, deferred or dropped (no silent loss);
* :class:`DegradationLadder` — a health state machine
  ``NORMAL → REDUCED → SKELETON → SHED_ONLY`` driven by observed ingest
  latency (EWMA over :class:`~repro.core.engine.StageTimers` wall time),
  backlog depth and pool memory.  REDUCED tightens the candidate-bundle
  fan-in of Algorithm 1; SKELETON skips keyword-similarity scoring
  entirely and matches on the exact indicants only (RT ancestry / URL /
  hashtag — the cheap Eq. 1 components); SHED_ONLY stops admitting new
  messages while the backlog drains.  Escalation and recovery both
  require a *streak* of consistent observations (hysteresis), so the
  ladder cannot flap on a single noisy sample;
* :class:`CircuitBreaker` + :class:`GuardedSink` — spill I/O to the
  on-disk bundle store trips open after consecutive failures, after
  which evicted bundles are *parked in memory* instead of stalling
  ingest on a sick disk; half-open probes resume spilling (and flush
  the parked backlog) once the disk recovers;
* :class:`OverloadController` — the façade the
  :class:`~repro.reliability.supervisor.ResilientIndexer` owns: it wires
  the pieces to an engine, applies the current mode's knobs before each
  ingest, feeds the ladder after it, and renders ``repro health``'s
  report.

Everything takes an injectable clock and explicit ``now`` values, so the
surge/chaos suite is fully deterministic.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.errors import ConfigurationError, StorageError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.bundle import Bundle
    from repro.core.engine import ProvenanceIndexer
    from repro.core.message import Message
    from repro.obs.registry import Gauge
    from repro.reliability.guard import IngestGuard

__all__ = [
    "Admission",
    "AdmissionController",
    "AdmissionStats",
    "CircuitBreaker",
    "DegradationLadder",
    "FleetBackpressure",
    "GuardedSink",
    "HealthReport",
    "HealthState",
    "OverloadConfig",
    "OverloadController",
    "Transition",
]


class HealthState(enum.IntEnum):
    """The degradation ladder, cheapest-to-run last."""

    NORMAL = 0      #: full Eq. 1 matching, no caps
    REDUCED = 1     #: candidate-bundle fan-in capped
    SKELETON = 2    #: exact indicants only — no keyword similarity
    SHED_ONLY = 3   #: new arrivals dropped; backlog drains

    @property
    def label(self) -> str:
        """Lower-case name for reports."""
        return self.name.lower()


class Admission(enum.Enum):
    """Verdict of the admission controller for one arrival."""

    ADMITTED = "admitted"
    DEFERRED = "deferred"
    DROPPED = "dropped"


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Knobs of the load-regulation layer.

    Parameters
    ----------
    rate_limit / burst:
        Token-bucket admission: sustainable messages per second and the
        bucket capacity absorbing short spikes.  ``rate_limit=None``
        disables rate limiting (every arrival is admitted immediately
        and the queue stays empty).
    max_queue:
        Bound on the backlog of deferred messages; arrivals beyond it
        are dropped (and counted).
    latency_target:
        Per-message ingest wall-time budget in seconds; the EWMA of
        observed latencies is compared against it.
    queue_high_fraction:
        Backlog fill fraction treated as full pressure (1.0 on the
        pressure scale).
    memory_high_bytes:
        Pool memory treated as full pressure; ``None`` disables the
        memory signal (the supervisor's watermark shedding still
        applies independently).
    recover_pressure:
        Hysteresis band: pressure must fall below this (not merely
        below 1.0) to count as a healthy observation.
    escalate_after / recover_after:
        Consecutive overloaded / healthy observations required to move
        one rung up / down the ladder.
    reduced_candidate_cap:
        Candidate-bundle fan-in cap applied from REDUCED mode onward.
    ewma_alpha:
        Smoothing factor of the latency EWMA.
    breaker_failures / breaker_reset_after / breaker_half_open_probes:
        Circuit breaker: consecutive spill failures that trip it open,
        seconds before a half-open probe, and how many probes the
        half-open state allows.
    """

    rate_limit: "float | None" = None
    burst: int = 64
    max_queue: int = 512
    latency_target: float = 0.005
    queue_high_fraction: float = 0.5
    memory_high_bytes: "int | None" = None
    recover_pressure: float = 0.7
    escalate_after: int = 3
    recover_after: int = 8
    reduced_candidate_cap: int = 8
    ewma_alpha: float = 0.2
    breaker_failures: int = 5
    breaker_reset_after: float = 30.0
    breaker_half_open_probes: int = 1
    #: Ingest-guard toxicity (hostile fraction of recent screens)
    #: treated as full pressure; ``None`` disables the signal.  With an
    #: attached guard this makes the ladder react to *hostility*, not
    #: just volume — REDUCED mode then tightens the guard's thresholds
    #: so attack traffic is folded/quarantined before honest traffic
    #: is shed.
    toxicity_high: "float | None" = None

    def __post_init__(self) -> None:
        if self.rate_limit is not None and self.rate_limit <= 0:
            raise ConfigurationError(
                f"rate_limit must be positive, got {self.rate_limit}")
        if self.burst < 1:
            raise ConfigurationError(f"burst must be >= 1, got {self.burst}")
        if self.max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0, got {self.max_queue}")
        if self.latency_target <= 0:
            raise ConfigurationError(
                f"latency_target must be positive, got {self.latency_target}")
        if not 0.0 < self.queue_high_fraction <= 1.0:
            raise ConfigurationError(
                "queue_high_fraction must be in (0, 1], got "
                f"{self.queue_high_fraction}")
        if not 0.0 < self.recover_pressure < 1.0:
            raise ConfigurationError(
                "recover_pressure must be in (0, 1), got "
                f"{self.recover_pressure}")
        if self.escalate_after < 1 or self.recover_after < 1:
            raise ConfigurationError(
                "escalate_after and recover_after must be >= 1")
        if self.reduced_candidate_cap < 1:
            raise ConfigurationError(
                "reduced_candidate_cap must be >= 1, got "
                f"{self.reduced_candidate_cap}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.breaker_failures < 1:
            raise ConfigurationError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}")
        if self.breaker_reset_after < 0:
            raise ConfigurationError(
                "breaker_reset_after must be >= 0, got "
                f"{self.breaker_reset_after}")
        if self.breaker_half_open_probes < 1:
            raise ConfigurationError(
                "breaker_half_open_probes must be >= 1, got "
                f"{self.breaker_half_open_probes}")
        if (self.toxicity_high is not None
                and not 0.0 < self.toxicity_high <= 1.0):
            raise ConfigurationError(
                "toxicity_high must be in (0, 1], got "
                f"{self.toxicity_high}")


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class _TokenBucket:
    """Classic token bucket; ``rate=None`` means unlimited."""

    def __init__(self, rate: "float | None", capacity: int) -> None:
        self.rate = rate
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self._last = None  # type: float | None

    def refill(self, now: float) -> None:
        if self.rate is None:
            return
        if self._last is None:
            self._last = now
            return
        elapsed = now - self._last
        if elapsed > 0:
            self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self._last = now

    def try_take(self, now: float) -> bool:
        if self.rate is None:
            return True
        self.refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(slots=True)
class AdmissionStats:
    """Every arrival ends up in exactly one of these buckets."""

    offered: int = 0
    admitted: int = 0             # passed straight through
    deferred: int = 0             # parked in the backlog queue
    released: int = 0             # later admitted from the backlog
    dropped_queue_full: int = 0
    dropped_shed_only: int = 0
    queue_peak: int = 0

    @property
    def dropped(self) -> int:
        """Total arrivals refused outright."""
        return self.dropped_queue_full + self.dropped_shed_only

    def reconciles(self, queue_depth: int) -> bool:
        """Conservation law: nothing vanished unaccounted."""
        return (self.offered
                == self.admitted + self.deferred + self.dropped
                and self.deferred == self.released + queue_depth)


class AdmissionController:
    """Token-bucket rate limiting with a bounded backlog queue.

    The controller never ingests anything itself: :meth:`offer` issues a
    verdict for one arrival, :meth:`release` hands back queued messages
    whose tokens have since accrued, and :meth:`drain` empties the
    backlog at end of stream.  Every path is counted in :attr:`stats`.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.bucket = _TokenBucket(config.rate_limit, config.burst)
        self.queue: "deque[Message]" = deque()
        self.stats = AdmissionStats()

    @property
    def queue_depth(self) -> int:
        """Messages currently parked in the backlog."""
        return len(self.queue)

    @property
    def queue_fraction(self) -> float:
        """Backlog fill level in [0, 1]."""
        if self.config.max_queue <= 0:
            return 0.0
        return len(self.queue) / self.config.max_queue

    def offer(self, message: "Message", now: float, *,
              shed_only: bool = False) -> Admission:
        """Issue a verdict for one arrival at time ``now``."""
        self.stats.offered += 1
        if shed_only:
            self.stats.dropped_shed_only += 1
            return Admission.DROPPED
        # The backlog keeps arrival order: nothing overtakes the queue.
        if not self.queue and self.bucket.try_take(now):
            self.stats.admitted += 1
            return Admission.ADMITTED
        if len(self.queue) < self.config.max_queue:
            self.queue.append(message)
            self.stats.deferred += 1
            self.stats.queue_peak = max(self.stats.queue_peak,
                                        len(self.queue))
            return Admission.DEFERRED
        self.stats.dropped_queue_full += 1
        return Admission.DROPPED

    def release(self, now: float) -> "list[Message]":
        """Queued messages whose tokens have accrued, oldest first."""
        released: "list[Message]" = []
        while self.queue and self.bucket.try_take(now):
            released.append(self.queue.popleft())
        self.stats.released += len(released)
        return released

    def drain(self) -> "list[Message]":
        """Empty the backlog unconditionally (end of stream)."""
        drained = list(self.queue)
        self.queue.clear()
        self.stats.released += len(drained)
        return drained


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Transition:
    """One ladder move, for the health report and the chaos tests."""

    observation: int
    previous: HealthState
    state: HealthState
    pressure: float
    signal: str


class DegradationLadder:
    """Hysteresis state machine over latency / backlog / memory pressure.

    Pressure is the max of the normalised signals (1.0 = at the
    configured limit).  ``escalate_after`` consecutive observations at
    pressure ≥ 1.0 move one rung up; ``recover_after`` consecutive
    observations below ``recover_pressure`` move one rung down.  The
    dead band between the two thresholds resets neither streak outright
    but counts toward neither, which is what keeps the ladder stable
    around the boundary.
    """

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.state = HealthState.NORMAL
        self.transitions: "list[Transition]" = []
        self.observations = 0
        self.latency_ewma = 0.0
        self.last_pressure = 0.0
        self.last_signal = "idle"
        self._overloaded_streak = 0
        self._healthy_streak = 0

    def note_latency(self, seconds: float) -> None:
        """Feed one observed per-message ingest latency into the EWMA."""
        alpha = self.config.ewma_alpha
        self.latency_ewma += alpha * (seconds - self.latency_ewma)

    def pressure(self, *, queue_fraction: float,
                 memory_bytes: "int | None" = None,
                 toxicity: "float | None" = None) -> tuple[float, str]:
        """Normalised pressure and the name of the dominant signal."""
        config = self.config
        signals = {
            "latency": self.latency_ewma / config.latency_target,
            "queue": queue_fraction / config.queue_high_fraction,
        }
        if config.memory_high_bytes is not None and memory_bytes is not None:
            signals["memory"] = memory_bytes / config.memory_high_bytes
        if config.toxicity_high is not None and toxicity is not None:
            signals["toxicity"] = toxicity / config.toxicity_high
        signal = max(signals, key=lambda name: signals[name])
        return signals[signal], signal

    def observe(self, *, queue_fraction: float,
                memory_bytes: "int | None" = None,
                toxicity: "float | None" = None) -> HealthState:
        """Record one observation; maybe move one rung. Returns the state."""
        self.observations += 1
        value, signal = self.pressure(queue_fraction=queue_fraction,
                                      memory_bytes=memory_bytes,
                                      toxicity=toxicity)
        self.last_pressure = value
        self.last_signal = signal
        if value >= 1.0:
            self._overloaded_streak += 1
            self._healthy_streak = 0
            if (self._overloaded_streak >= self.config.escalate_after
                    and self.state < HealthState.SHED_ONLY):
                self._move(HealthState(self.state + 1), value, signal)
                self._overloaded_streak = 0
        elif value <= self.config.recover_pressure:
            self._healthy_streak += 1
            self._overloaded_streak = 0
            if (self._healthy_streak >= self.config.recover_after
                    and self.state > HealthState.NORMAL):
                self._move(HealthState(self.state - 1), value, signal)
                self._healthy_streak = 0
        return self.state

    def _move(self, to: HealthState, pressure: float, signal: str) -> None:
        self.transitions.append(Transition(
            observation=self.observations, previous=self.state,
            state=to, pressure=pressure, signal=signal))
        self.state = to


# ---------------------------------------------------------------------------
# Circuit breaker + guarded spill sink
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Closed → open after N consecutive failures; half-open probes.

    The breaker is policy only — it neither performs nor retries the
    guarded operation.  :class:`GuardedSink` consults it around every
    spill append.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, *, failure_threshold: int = 5,
                 reset_after: float = 30.0, half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self.half_open_probes = half_open_probes
        self.clock = clock
        self._state = self.CLOSED
        self._opened_at = 0.0
        self._probes_left = 0
        self.consecutive_failures = 0
        self.failures_total = 0
        self.successes_total = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """Current state; an expired open period surfaces as half-open."""
        if (self._state == self.OPEN
                and self.clock() - self._opened_at >= self.reset_after):
            self._state = self.HALF_OPEN
            self._probes_left = self.half_open_probes
        return self._state

    def allow(self) -> bool:
        """Whether the next guarded operation may be attempted."""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self) -> None:
        """A guarded operation succeeded; half-open closes the breaker."""
        self.successes_total += 1
        self.consecutive_failures = 0
        if self._state != self.CLOSED:
            self._state = self.CLOSED

    def record_failure(self) -> None:
        """A guarded operation failed; maybe trip open."""
        self.failures_total += 1
        self.consecutive_failures += 1
        tripped = (self._state == self.HALF_OPEN
                   or (self._state == self.CLOSED
                       and self.consecutive_failures
                       >= self.failure_threshold))
        if tripped:
            self._state = self.OPEN
            self._opened_at = self.clock()
            self.opens += 1
            self.consecutive_failures = 0


class GuardedSink:
    """A :class:`~repro.core.pool.BundleSink` that survives a sick disk.

    Wraps the real store: while the breaker allows, appends pass
    through; on failure the bundle is *parked in memory* (never lost)
    and the failure is recorded; while the breaker is open every append
    parks immediately, so refinement/shedding keep running memory-only
    instead of stalling ingest.  A successful append (e.g. a half-open
    probe) flushes the parked backlog back to disk.
    """

    def __init__(self, sink, breaker: CircuitBreaker) -> None:
        self.sink = sink
        self.breaker = breaker
        self.parked: "list[Bundle]" = []
        self.spilled = 0
        self.parked_total = 0
        self.flushed = 0
        self.parked_peak = 0

    # -- BundleSink protocol ------------------------------------------------

    def append(self, bundle: "Bundle") -> None:
        """Spill one bundle, parking it if the disk is sick."""
        if not self.breaker.allow():
            self._park(bundle)
            return
        if self._try_append(bundle):
            self.flush()

    # -- plumbing -----------------------------------------------------------

    def _park(self, bundle: "Bundle") -> None:
        self.parked.append(bundle)
        self.parked_total += 1
        self.parked_peak = max(self.parked_peak, len(self.parked))

    def _try_append(self, bundle: "Bundle") -> bool:
        try:
            self.sink.append(bundle)
        except (OSError, StorageError):
            self.breaker.record_failure()
            self._park(bundle)
            return False
        self.breaker.record_success()
        self.spilled += 1
        return True

    def flush(self) -> int:
        """Try to re-spill parked bundles; returns how many made it."""
        flushed = 0
        while self.parked and self.breaker.allow():
            bundle = self.parked.pop(0)
            if not self._try_append(bundle):
                break
            flushed += 1
        self.flushed += flushed
        return flushed

    @property
    def parked_count(self) -> int:
        """Bundles currently held in memory awaiting a healthy disk."""
        return len(self.parked)

    def parked_bytes(self) -> int:
        """Approximate memory held by parked bundles."""
        return sum(bundle.approximate_memory_bytes()
                   for bundle in self.parked)


# ---------------------------------------------------------------------------
# The controller façade
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HealthReport:
    """Point-in-time snapshot of the load-regulation layer."""

    state: HealthState
    observations: int
    pressure: float
    signal: str
    latency_ewma: float
    transitions: tuple[Transition, ...]
    mode_ingests: "dict[str, int]"
    admission: AdmissionStats
    queue_depth: int
    breaker_state: str
    breaker_opens: int
    spilled: int
    parked: int
    flushed: int

    @property
    def reconciles(self) -> bool:
        """Whether the admission accounting conserves every arrival."""
        return self.admission.reconciles(self.queue_depth)

    def rows(self) -> "list[list[str]]":
        """``[property, value]`` rows for table rendering."""
        admission = self.admission
        modes = ", ".join(f"{name}={count}"
                          for name, count in self.mode_ingests.items()
                          if count) or "none yet"
        ladder = " → ".join(
            f"{t.previous.label}→{t.state.label}@{t.observation}"
            for t in self.transitions[-6:]) or "none"
        return [
            ["health state", self.state.label],
            ["pressure", f"{self.pressure:.2f} ({self.signal})"],
            ["latency ewma", f"{self.latency_ewma * 1000:.2f} ms"],
            ["observations", str(self.observations)],
            ["transitions", ladder],
            ["ingests by mode", modes],
            ["admitted / deferred / dropped",
             f"{admission.admitted + admission.released} / "
             f"{admission.deferred} / {admission.dropped}"],
            ["queue depth (peak)",
             f"{self.queue_depth} ({admission.queue_peak})"],
            ["breaker", f"{self.breaker_state} "
                        f"({self.breaker_opens} open(s))"],
            ["spilled / parked / flushed",
             f"{self.spilled} / {self.parked} / {self.flushed}"],
            ["accounting", "reconciles" if self.reconciles
             else "DOES NOT RECONCILE"],
        ]


class OverloadController:
    """Owns the ladder, admission control and the spill breaker.

    The :class:`~repro.reliability.supervisor.ResilientIndexer` drives
    it: :meth:`attach` wires the breaker into the engine's store,
    :meth:`offer`/:meth:`release`/:meth:`drain` regulate arrivals, and
    :meth:`apply_mode`/:meth:`note_ingest` bracket each actual ingest.
    """

    def __init__(self, config: "OverloadConfig | None" = None, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or OverloadConfig()
        self.clock = clock
        self.ladder = DegradationLadder(self.config)
        self.admission = AdmissionController(self.config)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_after=self.config.breaker_reset_after,
            half_open_probes=self.config.breaker_half_open_probes,
            clock=clock)
        self.guarded: "GuardedSink | None" = None
        self.ingest_guard: "IngestGuard | None" = None
        self._engine: "ProvenanceIndexer | None" = None
        self._memory_gauge: "Gauge | None" = None
        self.mode_ingests: "dict[HealthState, int]" = {
            state: 0 for state in HealthState}

    # -- wiring -------------------------------------------------------------

    def attach(self, engine: "ProvenanceIndexer") -> None:
        """Bind to ``engine``; guard its spill store with the breaker."""
        self._engine = engine
        if engine.store is not None and not isinstance(engine.store,
                                                       GuardedSink):
            self.guarded = GuardedSink(engine.store, self.breaker)
            engine.store = self.guarded
        elif isinstance(engine.store, GuardedSink):
            self.guarded = engine.store
        self._register_metrics(engine)

    def attach_guard(self, guard: "IngestGuard") -> None:
        """Wire the ingest guard's toxicity into the pressure signals.

        From then on :meth:`apply_mode` also pushes the rung into the
        guard: REDUCED and worse swap in the tightened thresholds.
        """
        self.ingest_guard = guard

    def _register_metrics(self, engine: "ProvenanceIndexer") -> None:
        """Export the regulation signals through the engine's registry.

        All gauges are callback-backed views over the authoritative
        state, and gauges stay live even on a disabled registry — the
        ladder's pressure inputs must work with telemetry off.  The
        pool-memory signal is *read back* through the same
        ``repro_pool_memory_bytes`` gauge the engine registered, so the
        ladder, the dashboard and ``repro health`` share one number.
        """
        registry = engine.obs.registry
        self._memory_gauge = registry.gauge(
            "repro_pool_memory_bytes",
            callback=engine.pool.approximate_memory_bytes)
        ladder = self.ladder
        registry.gauge("repro_overload_rung",
                       help="Degradation ladder rung "
                            "(0=normal 1=reduced 2=skeleton 3=shed_only)",
                       callback=lambda: int(ladder.state))
        registry.gauge("repro_overload_pressure",
                       help="Last observed pressure (1.0 = at the limit)",
                       callback=lambda: ladder.last_pressure)
        registry.gauge("repro_latency_ewma_seconds", unit="seconds",
                       help="EWMA of observed per-ingest latency",
                       callback=lambda: ladder.latency_ewma)
        registry.gauge("repro_backlog_depth",
                       help="Messages parked in the admission backlog",
                       callback=lambda: self.admission.queue_depth)
        stats = self.admission.stats
        for verdict, field_name in (("admitted", "admitted"),
                                    ("deferred", "deferred"),
                                    ("released", "released"),
                                    ("dropped", "dropped")):
            registry.counter(
                "repro_admission_total",
                help="Admission verdicts issued, by kind",
                labels={"verdict": verdict},
                callback=(lambda f=field_name: getattr(stats, f)))
        registry.counter("repro_breaker_opens_total",
                         help="Times the spill circuit breaker tripped",
                         callback=lambda: self.breaker.opens)
        registry.gauge("repro_spill_parked",
                       help="Bundles parked in memory behind a sick disk",
                       callback=lambda: (self.guarded.parked_count
                                         if self.guarded else 0))
        registry.counter("repro_spill_flushed_total",
                         help="Parked bundles re-spilled after recovery",
                         callback=lambda: (self.guarded.flushed
                                           if self.guarded else 0))

    @property
    def state(self) -> HealthState:
        """The ladder's current rung."""
        return self.ladder.state

    def now(self, now: "float | None" = None) -> float:
        """Resolve an explicit arrival time or fall back to the clock."""
        return self.clock() if now is None else now

    # -- arrival regulation -------------------------------------------------

    def offer(self, message: "Message", now: float) -> Admission:
        """Observe pressure, maybe move the ladder, and admit or not."""
        memory = (int(self._memory_gauge.value)
                  if self._memory_gauge is not None else None)
        toxicity = (self.ingest_guard.toxicity()
                    if self.ingest_guard is not None else None)
        state = self.ladder.observe(
            queue_fraction=self.admission.queue_fraction,
            memory_bytes=memory,
            toxicity=toxicity)
        return self.admission.offer(
            message, now, shed_only=state is HealthState.SHED_ONLY)

    def release(self, now: float) -> "list[Message]":
        """Backlog messages whose tokens have accrued."""
        return self.admission.release(now)

    def drain(self) -> "list[Message]":
        """The whole backlog (end of stream)."""
        return self.admission.drain()

    # -- per-ingest bracketing ----------------------------------------------

    def apply_mode(self, engine: "ProvenanceIndexer") -> HealthState:
        """Push the current rung's knobs into the engine; returns it."""
        state = self.ladder.state
        # Stamp the rung on the engine so audit records carry the mode
        # each decision was made under.
        engine.current_rung = int(state)
        if state is HealthState.NORMAL:
            engine.candidate_cap = None
            engine.skeleton_matching = False
        elif state is HealthState.REDUCED:
            engine.candidate_cap = self.config.reduced_candidate_cap
            engine.skeleton_matching = False
        else:  # SKELETON, and SHED_ONLY's backlog drain
            engine.candidate_cap = self.config.reduced_candidate_cap
            engine.skeleton_matching = True
        if self.ingest_guard is not None:
            self.ingest_guard.set_tightened(state >= HealthState.REDUCED)
        return state

    def note_ingest(self, state: HealthState, latency: float, *,
                    indexed: bool = True) -> None:
        """Count one completed ingest and feed its latency to the EWMA.

        ``indexed=False`` (a dead-lettered message) still contributes
        its latency — a poison storm is load too — without inflating
        the per-mode ingest counters.
        """
        if indexed:
            self.mode_ingests[state] += 1
        self.ladder.note_latency(latency)

    # -- reporting ----------------------------------------------------------

    def health_report(self) -> HealthReport:
        """Snapshot everything ``repro health`` shows."""
        guarded = self.guarded
        return HealthReport(
            state=self.ladder.state,
            observations=self.ladder.observations,
            pressure=self.ladder.last_pressure,
            signal=self.ladder.last_signal,
            latency_ewma=self.ladder.latency_ewma,
            transitions=tuple(self.ladder.transitions),
            mode_ingests={state.label: count
                          for state, count in self.mode_ingests.items()},
            admission=self.admission.stats,
            queue_depth=self.admission.queue_depth,
            breaker_state=self.breaker.state,
            breaker_opens=self.breaker.opens,
            spilled=guarded.spilled if guarded else 0,
            parked=guarded.parked_count if guarded else 0,
            flushed=guarded.flushed if guarded else 0,
        )


class FleetBackpressure:
    """Fleet-level ingest gate over per-shard admission queue fill.

    The multiprocess runtime (:mod:`repro.runtime`) regulates each
    worker locally with its own :class:`AdmissionController`; this class
    is the *coordinator-side* complement: every ingest acknowledgment
    carries the worker's ``queue_fraction``, and the gate engages when
    **any** shard's backlog passes the high watermark.  While engaged
    the coordinator stops pipelining new batches (it drains outstanding
    acknowledgments instead), releasing only when *every* shard is back
    under the low watermark — classic hysteresis, so one oscillating
    shard cannot flap the whole fleet.

    One hot shard gating the fleet is deliberate: routers are sticky
    (a topic lives on its shard forever), so outrunning the hottest
    shard only grows its backlog until its local controller sheds —
    turning a temporary skew into permanent accuracy loss.
    """

    def __init__(self, *, high_watermark: float = 0.8,
                 low_watermark: float = 0.5) -> None:
        if not 0.0 < high_watermark <= 1.0:
            raise ConfigurationError(
                f"high_watermark must be in (0, 1], got {high_watermark}")
        if not 0.0 <= low_watermark <= high_watermark:
            raise ConfigurationError(
                "low_watermark must be in [0, high_watermark], got "
                f"{low_watermark}")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.engaged = False
        self.engagements = 0
        self.gated_batches = 0
        self._fractions: "dict[int, float]" = {}

    def note(self, shard: int, queue_fraction: float) -> bool:
        """Record one shard's backlog fill; returns the gate state."""
        self._fractions[shard] = queue_fraction
        if self.engaged:
            if all(f <= self.low_watermark
                   for f in self._fractions.values()):
                self.engaged = False
        elif queue_fraction >= self.high_watermark:
            self.engaged = True
            self.engagements += 1
        return self.engaged

    def note_gated(self) -> None:
        """Count one batch held back while the gate was engaged."""
        self.gated_batches += 1

    @property
    def worst(self) -> "tuple[int, float]":
        """``(shard, fraction)`` of the fullest known backlog."""
        if not self._fractions:
            return (-1, 0.0)
        shard = max(self._fractions, key=lambda s: self._fractions[s])
        return (shard, self._fractions[shard])

    def snapshot(self) -> "dict[int, float]":
        """Per-shard backlog fractions last reported."""
        return dict(self._fractions)
