"""Pluggable filesystem indirection for the storage layer.

The durable paths of :mod:`repro.storage` (WAL appends, snapshot
temp-file-plus-rename, bundle-store segment appends) do all their writes,
fsyncs, renames and unlinks through the process-wide :class:`FileSystem`
returned by :func:`filesystem`.  By default that is a
:class:`RealFileSystem` — a thin passthrough to :mod:`os` / :mod:`pathlib`
with no behaviour change — but :class:`repro.reliability.faults.FaultInjector`
can swap in a faulty implementation to deterministically inject torn
writes, ``ENOSPC`` and simulated crashes at every durability boundary.

This module deliberately imports nothing from :mod:`repro.storage`, so the
storage layer can import it without a cycle.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from typing import IO, Any

__all__ = [
    "FileSystem",
    "RealFileSystem",
    "filesystem",
    "set_filesystem",
    "reset_filesystem",
    "frame_line",
    "check_frame",
    "escape_field",
    "unescape_field",
]

# ---------------------------------------------------------------------------
# Shared CRC32 record framing
#
# Every append-only log in the repo (the message WAL, the bundle store's
# segments, the runtime's boundary and repair journals) frames records the
# same way: ``<crc32:8 hex> <payload>`` per line, free-text fields escaped
# so payloads stay single-line.  Keeping the framing here — next to the
# filesystem indirection all of those logs write through — lets each log
# share one implementation without the storage and runtime layers importing
# each other.
# ---------------------------------------------------------------------------

CRC_WIDTH = 8
_HEX_DIGITS = frozenset("0123456789abcdef")


def frame_line(payload: str) -> str:
    """CRC-frame one record payload into a log line (no newline)."""
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {payload}"


def check_frame(line: str) -> "str | None":
    """The payload of one framed line, or ``None``.

    ``None`` means the line does not carry the ``<crc32:8 hex> `` prefix
    at all — callers with a legacy fallback (the WAL's v0 records) can
    then try other formats.  A line that *does* carry the prefix but
    fails its checksum returns ``None`` too: a torn or corrupt record is
    indistinguishable from garbage and must be skipped either way.
    """
    if not (len(line) > CRC_WIDTH and line[CRC_WIDTH] == " "
            and all(c in _HEX_DIGITS for c in line[:CRC_WIDTH])):
        return None
    payload = line[CRC_WIDTH + 1:]
    crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
    return payload if f"{crc:08x}" == line[:CRC_WIDTH] else None


def escape_field(text: str) -> str:
    """Escape a free-text field so it survives tab-separated framing."""
    return (text.replace("\\", "\\\\").replace("\t", "\\t")
            .replace("\n", "\\n").replace("\r", "\\r"))


_UNESCAPE_MAP = {"n": "\n", "t": "\t", "r": "\r", "\\": "\\"}


def unescape_field(text: str) -> str:
    """Invert :func:`escape_field` with a single left-to-right scan.

    Naive chained ``str.replace`` mis-decodes sequences like ``\\\\n``
    (escaped backslash followed by a literal ``n``).
    """
    if "\\" not in text:
        return text
    out: list[str] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char == "\\" and i + 1 < length:
            mapped = _UNESCAPE_MAP.get(text[i + 1])
            if mapped is not None:
                out.append(mapped)
                i += 2
                continue
        out.append(char)
        i += 1
    return "".join(out)


class FileSystem:
    """The durability operations storage writes route through.

    Subclasses override individual operations; the base class is the real
    thing, so a partial override still behaves sanely.
    """

    def open(self, path: "str | os.PathLike[str]", mode: str = "r", *,
             encoding: "str | None" = None) -> IO[Any]:
        """Open ``path``; mirrors :meth:`pathlib.Path.open`."""
        return Path(path).open(mode, encoding=encoding)

    def fsync(self, handle: IO[Any]) -> None:
        """Flush ``handle``'s buffers and fsync it to stable storage."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: "str | os.PathLike[str]",
                dst: "str | os.PathLike[str]") -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def unlink(self, path: "str | os.PathLike[str]", *,
               missing_ok: bool = False) -> None:
        """Remove ``path``."""
        Path(path).unlink(missing_ok=missing_ok)


class RealFileSystem(FileSystem):
    """The default passthrough filesystem (explicit alias for clarity)."""


_DEFAULT = RealFileSystem()
_active: FileSystem = _DEFAULT


def filesystem() -> FileSystem:
    """The currently installed filesystem (real unless faults are active)."""
    return _active


def set_filesystem(fs: FileSystem) -> FileSystem:
    """Install ``fs`` process-wide; returns the previously active one."""
    global _active
    previous = _active
    _active = fs
    return previous


def reset_filesystem() -> None:
    """Restore the default real filesystem."""
    set_filesystem(_DEFAULT)
