"""Pluggable filesystem indirection for the storage layer.

The durable paths of :mod:`repro.storage` (WAL appends, snapshot
temp-file-plus-rename, bundle-store segment appends) do all their writes,
fsyncs, renames and unlinks through the process-wide :class:`FileSystem`
returned by :func:`filesystem`.  By default that is a
:class:`RealFileSystem` — a thin passthrough to :mod:`os` / :mod:`pathlib`
with no behaviour change — but :class:`repro.reliability.faults.FaultInjector`
can swap in a faulty implementation to deterministically inject torn
writes, ``ENOSPC`` and simulated crashes at every durability boundary.

This module deliberately imports nothing from :mod:`repro.storage`, so the
storage layer can import it without a cycle.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import IO, Any

__all__ = [
    "FileSystem",
    "RealFileSystem",
    "filesystem",
    "set_filesystem",
    "reset_filesystem",
]


class FileSystem:
    """The durability operations storage writes route through.

    Subclasses override individual operations; the base class is the real
    thing, so a partial override still behaves sanely.
    """

    def open(self, path: "str | os.PathLike[str]", mode: str = "r", *,
             encoding: "str | None" = None) -> IO[Any]:
        """Open ``path``; mirrors :meth:`pathlib.Path.open`."""
        return Path(path).open(mode, encoding=encoding)

    def fsync(self, handle: IO[Any]) -> None:
        """Flush ``handle``'s buffers and fsync it to stable storage."""
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: "str | os.PathLike[str]",
                dst: "str | os.PathLike[str]") -> None:
        """Atomically rename ``src`` over ``dst``."""
        os.replace(src, dst)

    def unlink(self, path: "str | os.PathLike[str]", *,
               missing_ok: bool = False) -> None:
        """Remove ``path``."""
        Path(path).unlink(missing_ok=missing_ok)


class RealFileSystem(FileSystem):
    """The default passthrough filesystem (explicit alias for clarity)."""


_DEFAULT = RealFileSystem()
_active: FileSystem = _DEFAULT


def filesystem() -> FileSystem:
    """The currently installed filesystem (real unless faults are active)."""
    return _active


def set_filesystem(fs: FileSystem) -> FileSystem:
    """Install ``fs`` process-wide; returns the previously active one."""
    global _active
    previous = _active
    _active = fs
    return previous


def reset_filesystem() -> None:
    """Restore the default real filesystem."""
    set_filesystem(_DEFAULT)
