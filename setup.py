"""Setuptools shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim lets the legacy develop path work instead::

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
