#!/usr/bin/env python
"""Search comparison — Fig. 1 (message search) vs Fig. 2 (bundle search).

Reproduces the paper's motivating contrast side by side on one stream:
the traditional keyword search returns a flat list of isolated, often
noisy messages; the provenance-backed bundle search returns grouped,
summarised, time-spanning result items.

Usage::

    python examples/search_comparison.py [query]
"""

from __future__ import annotations

import sys
from datetime import datetime, timezone

from repro import IndexerConfig, ProvenanceIndexer
from repro.bench.reporting import ascii_table
from repro.query import BundleSearchEngine
from repro.stream import StreamConfig, StreamGenerator
from repro.text.search import SearchEngine


def stamp(epoch: float) -> str:
    return datetime.fromtimestamp(epoch, tz=timezone.utc).strftime(
        "%Y-%m-%d %H:%M")


def main() -> None:
    messages = StreamGenerator(
        StreamConfig(days=3.0, messages_per_day=4000, seed=17)
    ).generate_list()

    # Index twice: the Fig. 1 baseline and the provenance engine.
    keyword_engine = SearchEngine()
    keyword_engine.add_all(messages)
    indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=600))
    for message in messages:
        indexer.ingest(message)
    bundle_engine = BundleSearchEngine(indexer)

    query = " ".join(sys.argv[1:]) or "yankees stadium game"
    if not bundle_engine.search(query, k=1):
        busiest = max(indexer.pool, key=len)
        query = " ".join(busiest.summary_words(2))
    print(f"query: {query!r} over {len(messages)} messages\n")

    # -- Fig. 1: flat message search. --------------------------------------
    hits = keyword_engine.search(query, k=7)
    print(ascii_table(
        ["user", "post time", "content"],
        [[f"@{hit.message.user}", stamp(hit.message.date),
          hit.message.text[:64]] for hit in hits],
        title="Fig. 1 style — common micro-blog message search"))

    # -- Fig. 2: provenance bundle search. ---------------------------------
    bundle_hits = bundle_engine.search(query, k=4)
    print()
    print(ascii_table(
        ["bundle id", "summary words", "size", "last post"],
        [[hit.bundle_id, ", ".join(hit.summary_words[:6]), hit.size,
          stamp(hit.last_post)] for hit in bundle_hits],
        title="Fig. 2 style — provenance-supported bundle search"))

    # What the grouping buys: context per result item.
    if hits and bundle_hits:
        flat_info = 1  # one message per Fig. 1 row
        grouped_info = sum(h.size for h in bundle_hits) / len(bundle_hits)
        print(f"\ncontext per result item: {flat_info} message (flat) vs "
              f"{grouped_info:.1f} messages with connections (bundles)")


if __name__ == "__main__":
    main()
