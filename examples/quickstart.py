#!/usr/bin/env python
"""Quickstart — index a synthetic micro-blog stream and explore bundles.

Runs the full pipeline end to end in under a minute:

1. generate a deterministic two-day synthetic tweet stream,
2. feed it through the provenance indexer (partial index variant),
3. search it with the bundle-based retrieval of Eq. 7,
4. render one discovered provenance tree (the Fig. 2b view).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import IndexerConfig, ProvenanceIndexer
from repro.bench.reporting import ascii_table, human_count
from repro.core.graph import render_tree
from repro.query import BundleSearchEngine, quality_score
from repro.stream import StreamConfig, StreamGenerator, describe_stream


def main() -> None:
    # -- 1. A deterministic synthetic stream (seeded). --------------------
    stream_config = StreamConfig(days=2.0, messages_per_day=4000, seed=7)
    messages = StreamGenerator(stream_config).generate_list()
    stats = describe_stream(messages)
    print(f"stream: {human_count(stats.message_count)} messages, "
          f"{human_count(stats.user_count)} users, "
          f"{stats.retweet_fraction:.0%} retweets, "
          f"top tags: {[tag for tag, _ in stats.top_hashtags[:5]]}")

    # -- 2. Provenance indexing (bounded pool, Algorithm 1-3). ------------
    indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=400))
    started = time.perf_counter()
    for message in messages:
        indexer.ingest(message)
    elapsed = time.perf_counter() - started
    print(f"indexed in {elapsed:.1f}s "
          f"({len(messages) / elapsed:,.0f} msg/s); "
          f"{len(indexer.pool)} bundles in pool, "
          f"{human_count(indexer.stats.edges_created)} connections, "
          f"{indexer.stats.refinements} refinement scans")

    # -- 3. Bundle-based search (the Fig. 2a experience). -----------------
    search = BundleSearchEngine(indexer)
    query = "tsunami warning coast"
    hits = search.search(query, k=3)
    if not hits:
        # Theme presence depends on the seed's event draw; fall back to
        # whatever the busiest bundle is about.
        busiest = max(indexer.pool, key=len)
        query = " ".join(busiest.summary_words(2))
        hits = search.search(query, k=3)
    print(f"\nsearch: {query!r}")
    print(ascii_table(
        ["bundle", "size", "score", "quality", "summary words"],
        [[hit.bundle_id, hit.size, f"{hit.score:.3f}",
          f"{quality_score(hit.bundle):.2f}",
          ", ".join(hit.summary_words[:6])]
         for hit in hits]))

    # -- 4. Provenance visualization (the Fig. 2b tree). ------------------
    top = hits[0].bundle
    print("\nprovenance tree of the top hit:")
    tree = render_tree(top, max_text=60)
    lines = tree.splitlines()
    print("\n".join(lines[:25]))
    if len(lines) > 25:
        print(f"... ({len(lines) - 25} more messages)")


if __name__ == "__main__":
    main()
