#!/usr/bin/env python
"""Provenance operators — the algebra the paper proposes as future work.

Demonstrates the operator layer on an indexed stream: diffing a story
across time, slicing and splitting bundles, filtering noise out of a
cascade, collapsing near-duplicates, scoring user credibility, and
exporting a bundle for external visualization.

Usage::

    python examples/provenance_operators.py
"""

from __future__ import annotations

from repro import IndexerConfig, ProvenanceIndexer
from repro.core.credibility import CredibilityTracker
from repro.core.dedup import DuplicateDetector
from repro.core.graph import cascade_stats
from repro.core.operators import (bundle_difference, filter_bundle,
                                  slice_bundle, split_bundle_at)
from repro.query.export import to_dot
from repro.query.timeline import extract_storyline
from repro.stream import StreamConfig, StreamGenerator


def main() -> None:
    messages = StreamGenerator(
        StreamConfig(days=2.0, messages_per_day=3000, seed=31)
    ).generate_list()

    # Index with a mid-stream checkpoint so we can diff.
    indexer = ProvenanceIndexer(IndexerConfig.full_index())
    half = len(messages) // 2
    for message in messages[:half]:
        indexer.ingest(message)
    biggest_id = max(indexer.pool, key=len).bundle_id
    from repro.core.operators import rebuild_bundle
    halfway = rebuild_bundle(
        biggest_id, indexer.bundle(biggest_id),
        indexer.bundle(biggest_id).message_ids())
    for message in messages[half:]:
        indexer.ingest(message)
    final = indexer.bundle(biggest_id)

    # 1. Checkpoint diff: what did the story gain in the second half?
    diff = bundle_difference(final, halfway)
    print(f"bundle {biggest_id}: {len(halfway)} -> {len(final)} messages; "
          f"diff: +{len(diff.added_messages)} messages, "
          f"+{len(diff.added_edges)} connections")

    # 2. Temporal operators: slice the first six hours, split at midpoint.
    first_hours = slice_bundle(final, final.start_time,
                               final.start_time + 6 * 3600.0, bundle_id=9001)
    early, late = split_bundle_at(
        final, (final.start_time + final.end_time) / 2,
        before_id=9002, after_id=9003)
    print(f"slice[first 6h]: {len(first_hours)} messages; "
          f"split: {len(early)} early / {len(late)} late")

    # 3. Noise filtering with edge contraction.
    cleaned = filter_bundle(final, lambda m: len(m.plain_text()) > 15,
                            bundle_id=9004)
    before_stats = cascade_stats(final)
    after_stats = cascade_stats(cleaned)
    print(f"noise filter: {len(final)} -> {len(cleaned)} messages, "
          f"max depth {before_stats.max_depth} -> {after_stats.max_depth} "
          "(chains contracted, not broken)")

    # 4. Near-duplicate collapse across the whole stream.
    detector = DuplicateDetector(threshold=0.6)
    duplicates = sum(
        1 for message in messages
        if detector.check_and_add(message) is not None)
    print(f"dedup: {duplicates}/{len(messages)} messages are near-copies "
          "of an earlier one (RTs and templates)")

    # 5. Credibility from provenance feedback.
    tracker = CredibilityTracker()
    tracker.observe_pool(indexer.bundles())
    top = tracker.top_users(3, min_messages=5)
    noise = tracker.noise_users(3, min_messages=5)
    print("credible sources:",
          ", ".join(f"@{user}({score:.2f})" for user, score in top))
    print("noise accounts:  ",
          ", ".join(f"@{user}({score:.2f})" for user, score in noise))

    # 6. Storyline and export.
    print()
    print(extract_storyline(final, max_phases=4).render(max_text=48))
    dot = to_dot(first_hours, max_text=24)
    print(f"\nDOT export of the 6h slice: {len(dot.splitlines())} lines "
          f"(pipe to `dot -Tsvg`); first three:")
    print("\n".join(dot.splitlines()[:3]))


if __name__ == "__main__":
    main()
