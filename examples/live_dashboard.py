#!/usr/bin/env python
"""Live dashboard — what a platform operator sees above the indexer.

Replays a stream hour by hour and renders, at each tick, the views the
other modules provide on top of the provenance index:

* hashtag burst alarms (sliding-window monitor),
* trending bundles by growth velocity,
* continuous-feed deltas for a standing query,
* credible-source and noise-account boards at the end.

Usage::

    python examples/live_dashboard.py
"""

from __future__ import annotations

from repro import IndexerConfig, ProvenanceIndexer
from repro.bench.reporting import ascii_table
from repro.core.credibility import CredibilityTracker
from repro.query import FeedRegistry, trending_bundles
from repro.stream import (SlidingWindowMonitor, StreamConfig,
                          StreamGenerator)

HOUR = 3600.0


def main() -> None:
    messages = StreamGenerator(
        StreamConfig(days=1.5, messages_per_day=4000, seed=47,
                     events_per_day=18.0)
    ).generate_list()

    indexer = ProvenanceIndexer(IndexerConfig.partial_index(pool_size=400))
    monitor = SlidingWindowMonitor(short_window=0.5 * HOUR,
                                   long_window=6 * HOUR,
                                   burst_ratio=3.0, min_count=8)
    feeds = FeedRegistry(indexer)
    feeds.subscribe("health", "flu OR vaccine OR outbreak h1n1")

    next_tick = messages[0].date + 6 * HOUR
    for message in messages:
        indexer.ingest(message)
        for alarm in monitor.observe(message):
            print(f"[{(alarm.date - messages[0].date) / HOUR:5.1f}h] "
                  f"BURST #{alarm.hashtag}: {alarm.short_count} msgs in "
                  f"30min ({alarm.ratio:.0f}x baseline)")
        if message.date >= next_tick:
            next_tick += 6 * HOUR
            hours = (message.date - messages[0].date) / HOUR
            trending = trending_bundles(indexer, k=3, window=6 * HOUR)
            summary = "; ".join(
                f"b{entry.bundle_id} {entry.velocity:.0f}/h "
                f"({', '.join(entry.summary_words[:3])})"
                for entry in trending)
            print(f"[{hours:5.1f}h] trending: {summary or '(quiet)'}")
            for update in feeds.poll_all():
                grown = [f"b{hit.bundle_id}+{hit.size}"
                         for hit in update.grown_bundles]
                fresh = [f"b{hit.bundle_id}(new)"
                         for hit in update.new_bundles]
                print(f"[{hours:5.1f}h] feed {update.feed_name!r}: "
                      f"{' '.join(fresh + grown)}")

    print(f"\nend of stream: {indexer.stats.messages_ingested} messages, "
          f"{len(indexer.pool)} live bundles, "
          f"{indexer.stats.refinements} refinement scans")

    tracker = CredibilityTracker()
    tracker.observe_pool(indexer.bundles())
    print(ascii_table(
        ["rank", "credible source", "score", "noise account", "score"],
        [[position + 1, f"@{top[0]}", f"{top[1]:.2f}",
          f"@{bottom[0]}", f"{bottom[1]:.2f}"]
         for position, (top, bottom) in enumerate(zip(
             tracker.top_users(5, min_messages=5),
             tracker.noise_users(5, min_messages=5)))],
        title="source quality board (provenance feedback)"))


if __name__ == "__main__":
    main()
