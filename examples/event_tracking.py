#!/usr/bin/env python
"""Event tracking — follow a breaking event's propagation trail.

The paper's motivating scenario (Section I): users repeatedly re-search
breaking events on micro-blogs and struggle to grasp their development.
This example injects a named breaking event (a tsunami, mirroring the
Fig. 10 case study) into a noisy background stream, indexes everything,
and then answers the questions provenance makes possible:

* Where did the story start (source finding)?
* How did it spread (cascade depth / fan-out)?
* What did each re-share add (comment trail)?

Usage::

    python examples/event_tracking.py
"""

from __future__ import annotations

import random

from repro import IndexerConfig, ProvenanceIndexer
from repro.core.graph import (cascade_stats, descendants, path_to_root,
                              render_tree, roots)
from repro.core.metrics import label_purity
from repro.stream import StreamConfig, StreamGenerator, UserPool
from repro.stream.generator import make_event_spec
from repro.stream.vocab import ShortUrlFactory

START = 1254268800.0  # 2009-09-30 00:00 UTC, the real Samoa tsunami window
EVENT_ID = 7001


def build_stream():
    rng = random.Random(2009)
    users = UserPool.generate(500, rng)
    urls = ShortUrlFactory(rng)
    tsunami = make_event_spec(
        event_id=EVENT_ID, theme="tsunami", name="samoa-tsunami",
        start=START + 4 * 3600.0, duration_hours=12.0, volume=120,
        rng=rng, users=users, url_factory=urls, rt_prob=0.55)
    config = StreamConfig(
        seed=2009, start_date=START, days=1.5, messages_per_day=4000,
        user_count=500, events_per_day=8.0, extra_events=(tsunami,),
        themes=("baseball", "finance", "football", "election"))
    return StreamGenerator(config).generate_list()


def main() -> None:
    messages = build_stream()
    indexer = ProvenanceIndexer(IndexerConfig.full_index())
    for message in messages:
        indexer.ingest(message)
    print(f"indexed {len(messages)} messages into "
          f"{len(indexer.pool)} bundles")

    # Locate the bundle that captured the tsunami event.
    bundle = max(
        indexer.pool,
        key=lambda b: sum(1 for m in b if m.event_id == EVENT_ID))
    captured = sum(1 for m in bundle if m.event_id == EVENT_ID)
    print(f"\ntsunami bundle: id={bundle.bundle_id}, size={len(bundle)}, "
          f"captured {captured}/120 event messages, "
          f"purity={label_purity(bundle.messages()):.2f}")

    # Source finding: the earliest root is where the story started.
    stats = cascade_stats(bundle)
    source_ids = roots(bundle)
    first_source = min(source_ids,
                       key=lambda mid: bundle.get(mid).date)
    source = bundle.get(first_source)
    print(f"\nsources: {len(source_ids)} root messages; earliest:")
    print(f"  @{source.user}: {source.text[:90]}")
    reach = descendants(bundle, first_source)
    print(f"  direct+transitive reach: {len(reach)} messages, "
          f"max cascade depth in bundle: {stats.max_depth}, "
          f"max fan-out: {stats.max_fanout}")

    # Development trail: the deepest propagation path, bottom-up.
    deepest = max(bundle.message_ids(),
                  key=lambda mid: len(path_to_root(bundle, mid)))
    trail = path_to_root(bundle, deepest)
    print(f"\ndeepest trail ({len(trail)} hops, newest first):")
    for msg_id in trail:
        message = bundle.get(msg_id)
        print(f"  @{message.user}: {message.text[:80]}")

    # The full Fig. 10 style tree (truncated for the terminal).
    print("\npropagation tree (first 20 lines):")
    print("\n".join(render_tree(bundle, max_text=56).splitlines()[:20]))


if __name__ == "__main__":
    main()
