#!/usr/bin/env python
"""Stream monitoring — bounded-memory indexing with on-disk backup.

Demonstrates the production deployment shape of Fig. 4: a bounded
in-memory pool, periodic Algorithm 3 refinement, evicted/closed bundles
flushed to the segmented on-disk store, and a snapshot for restart.
Checkpoints print the operational metrics an operator would watch.

Usage::

    python examples/stream_monitoring.py [workdir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import IndexerConfig, ProvenanceIndexer
from repro.bench.reporting import ascii_table, human_bytes, human_count
from repro.storage import BundleStore, load_snapshot, save_snapshot
from repro.stream import Checkpoint, StreamConfig, StreamGenerator, replay


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-monitor-"))
    store = BundleStore(workdir / "bundles")
    config = IndexerConfig.bundle_limit(pool_size=300, bundle_size=150)
    indexer = ProvenanceIndexer(config, store=store)

    messages = StreamGenerator(
        StreamConfig(days=4.0, messages_per_day=3500, seed=23)
    ).generate_list()

    rows: list[list[object]] = []

    def record(point: Checkpoint) -> None:
        rows.append([
            human_count(point.messages_seen),
            point.bundle_count,
            human_count(point.message_count_in_memory),
            human_bytes(point.memory_bytes),
            len(store),
            f"{point.total_time:.1f}s",
        ])

    replay(messages, indexer, checkpoint_every=2000, on_checkpoint=record)

    print(ascii_table(
        ["messages", "pool bundles", "msgs in mem", "memory",
         "bundles on disk", "cpu time"],
        rows,
        title=f"monitoring a {len(messages)}-message stream "
              f"(pool<=300, bundle<=150)"))
    print(f"\nstore: {len(store)} bundles across {store.segment_count()} "
          f"segments, {human_bytes(store.total_bytes())} on disk at "
          f"{store.directory}")

    # Operational restart: snapshot, reload, keep going.
    snapshot_path = workdir / "indexer.snapshot.json"
    saved = save_snapshot(indexer, snapshot_path)
    resumed = load_snapshot(snapshot_path)
    print(f"snapshot: {saved} live bundles -> {snapshot_path.name}; "
          f"restored engine resumes at "
          f"{human_count(resumed.stats.messages_ingested)} messages "
          f"ingested, clock intact: "
          f"{resumed.current_date == indexer.current_date}")

    # Reload one archived bundle to show disk round-trip.
    if len(store):
        bundle = store.load(store.bundle_ids()[0])
        print(f"reloaded archived bundle {bundle.bundle_id}: "
              f"{len(bundle)} messages, "
              f"summary: {', '.join(bundle.summary_words(5))}")

    # Crash safety: write-ahead journal + snapshot = exact recovery.
    from repro.storage import JournaledIndexer, MessageJournal

    journal = MessageJournal(workdir / "ingest.wal", sync_every=64)
    journaled = JournaledIndexer(
        ProvenanceIndexer(config), journal,
        snapshot_path=workdir / "wal-state.json", snapshot_every=5000)
    for message in messages[:6000]:
        journaled.ingest(message)
    journal.sync()  # a real crash loses at most sync_every-1 messages
    recovered = JournaledIndexer.recover(
        workdir / "wal-state.json", workdir / "ingest.wal")
    identical = (recovered.indexer.edge_pairs()
                 == journaled.indexer.edge_pairs())
    print(f"\nWAL recovery drill: replayed journal tail after simulated "
          f"crash at 6k messages — state identical: {identical}")


if __name__ == "__main__":
    main()
