"""Tests for trending-bundle ranking."""

from __future__ import annotations

import pytest

from repro.core.bundle import Bundle
from repro.core.config import IndexerConfig
from repro.core.engine import ProvenanceIndexer
from repro.query.trending import growth_velocity, trending_bundles
from tests.conftest import BASE_DATE, make_message

HOUR = 3600.0


class TestGrowthVelocity:
    def test_counts_recent_members(self):
        bundle = Bundle(0)
        for index in range(4):
            bundle.insert(make_message(index, f"#t {index}",
                                       user=f"u{index}", hours=index))
        now = BASE_DATE + 3 * HOUR
        velocity, recent = growth_velocity(bundle, now=now, window=2 * HOUR)
        assert recent == 3  # hours 1, 2, 3
        assert velocity == pytest.approx(1.5)

    def test_empty_window(self):
        bundle = Bundle(0)
        bundle.insert(make_message(0, "old"))
        now = BASE_DATE + 100 * HOUR
        velocity, recent = growth_velocity(bundle, now=now, window=HOUR)
        assert recent == 0 and velocity == 0.0

    def test_invalid_window(self):
        bundle = Bundle(0)
        with pytest.raises(ValueError):
            growth_velocity(bundle, now=0.0, window=0.0)


class TestTrendingBundles:
    def _indexer(self) -> ProvenanceIndexer:
        indexer = ProvenanceIndexer(IndexerConfig())
        # An old story (hours 0-1) and a fresh explosive one (hours 47-48).
        for index in range(5):
            indexer.ingest(make_message(index, "#oldnews detail",
                                        user=f"a{index}", hours=index * 0.2))
        for index in range(10):
            indexer.ingest(make_message(
                100 + index, "#breaking explosion of chatter",
                user=f"b{index}", hours=47 + index * 0.1))
        return indexer

    def test_fresh_burst_ranks_first(self):
        indexer = self._indexer()
        trending = trending_bundles(indexer, k=5, window=6 * HOUR)
        assert trending
        top = trending[0]
        assert "breaking" in top.bundle.hashtag_counts

    def test_old_story_excluded(self):
        indexer = self._indexer()
        trending = trending_bundles(indexer, k=5, window=6 * HOUR)
        for entry in trending:
            assert "oldnews" not in entry.bundle.hashtag_counts

    def test_min_recent_filters(self):
        indexer = self._indexer()
        trending = trending_bundles(indexer, k=5, window=6 * HOUR,
                                    min_recent=50)
        assert trending == []

    def test_velocity_descending(self):
        indexer = self._indexer()
        # add a second, slower fresh story
        for index in range(4):
            indexer.ingest(make_message(
                200 + index, "#simmering slow build", user=f"c{index}",
                hours=43 + index))
        trending = trending_bundles(indexer, k=5, window=6 * HOUR)
        velocities = [entry.velocity for entry in trending]
        assert velocities == sorted(velocities, reverse=True)

    def test_k_limits(self):
        indexer = self._indexer()
        assert len(trending_bundles(indexer, k=1, window=100 * HOUR)) == 1

    def test_entry_fields(self):
        indexer = self._indexer()
        entry = trending_bundles(indexer, k=1, window=6 * HOUR)[0]
        assert entry.bundle_id == entry.bundle.bundle_id
        assert entry.recent_messages >= 3
        assert entry.window_hours == pytest.approx(6.0)
        assert entry.summary_words
